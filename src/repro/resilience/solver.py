"""The graceful-degradation solver chain.

:class:`ResilientSolver` wraps the fast numpy
:class:`~repro.plr.solver.PLRSolver` (or the fault-injectable
:class:`~repro.gpusim.executor.SimulatedPLR`) with a policy-driven
fallback chain whose contract is *correct output or typed error, never
silent corruption*:

* **numerical faults** (a factor table predicted to overflow via its
  spectral radius, NaN/Inf in the output) trigger dtype promotion
  (float32 -> float64) and then chunk-size reduction;
* **simulation faults** (protocol violations, deadlocks — i.e. the
  failure modes injected by :class:`~repro.gpusim.faults.FaultPlan`)
  and **verification mismatches** (silent corruption caught by the
  paired redundant solve) trigger bounded retry with backoff under a
  fresh scheduler seed;
* **deadline overruns** and exhausted retries fall back to the serial
  reference (:func:`repro.core.reference.serial_full`), which is slow
  but definitionally correct.

Every solve returns a typed :class:`SolveReport` recording each
attempt, what degraded, and why — so a service can alert on degraded
solves instead of discovering corrupt data downstream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.errors import (
    BackendError,
    DeadlockError,
    NumericalError,
    ReproError,
    SimulationError,
    ValidationError,
    WorkerError,
)
from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype, serial_full
from repro.core.signature import Signature
from repro.core.validation import compare_results
from repro.gpusim.executor import SimulatedPLR
from repro.gpusim.faults import FaultEvent, FaultPlan
from repro.gpusim.spec import MachineSpec
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TracePid, coerce_tracer
from repro.plr.phase1 import check_integer_coefficients
from repro.plr.planner import ExecutionPlan
from repro.plr.solver import PLRSolver

__all__ = [
    "AttemptRecord",
    "FallbackPolicy",
    "ResilientSolver",
    "SolveReport",
    "solve_request",
]


@dataclass(frozen=True)
class FallbackPolicy:
    """Knobs of the degradation chain; defaults suit a service's hot path.

    Attributes
    ----------
    max_retries:
        Retries (with a fresh scheduler seed) after a simulation fault
        or a verification mismatch, before falling back to serial.
    promote_dtype:
        Allow float32 -> float64 promotion on numerical faults.
    shrink_chunk:
        Allow halving the chunk size when promotion is unavailable or
        insufficient (smaller m keeps rho^m inside the dtype's range).
    min_chunk_size:
        Floor for chunk-size reduction.
    serial_fallback:
        Whether the chain may end at the serial reference.  When False,
        an exhausted chain reports (and :meth:`ResilientSolver.solve`
        raises) the last typed error instead.
    verify:
        ``"auto"`` — paired verification only for the simulator engine
        (the fault-injectable one); ``"paired"`` — always cross-check
        against an independent second engine; ``"none"`` — trust the
        primary engine.
    deadline_s:
        Wall-clock budget; once exceeded the chain stops degrading
        gradually and jumps straight to the serial fallback.
    backoff_base_s:
        Sleep ``backoff_base_s * 2**retry`` between retries (0 in
        tests; nonzero for a service sharing a contended accelerator).
    max_attempts:
        Hard cap on total attempts, bounding pathological policies.
    """

    max_retries: int = 2
    promote_dtype: bool = True
    shrink_chunk: bool = True
    min_chunk_size: int = 64
    serial_fallback: bool = True
    verify: str = "auto"
    deadline_s: float | None = None
    backoff_base_s: float = 0.0
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.verify not in ("auto", "paired", "none"):
            raise ValueError(f"verify must be auto|paired|none, got {self.verify!r}")


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of the chain: configuration, outcome, and cost."""

    engine: str  # "plr" | "sim" | "serial"
    dtype: str
    chunk_size: int | None
    seed: int | None
    outcome: str  # "ok" | "numerical" | "simulation" | "deadlock" | "corrupt" | "worker" | "backend"
    detail: str = ""
    elapsed_s: float = 0.0


@dataclass
class SolveReport:
    """What a resilient solve did, degraded, and produced."""

    ok: bool
    output: np.ndarray | None
    engine: str | None
    dtype: np.dtype | None
    attempts: list[AttemptRecord] = field(default_factory=list)
    degradations: list[str] = field(default_factory=list)
    error: ReproError | None = None
    fault_events: list[FaultEvent] = field(default_factory=list)
    metrics: dict | None = None
    """Snapshot of the solve's :class:`~repro.obs.metrics.MetricsRegistry`
    (counters/gauges/histograms as plain JSON-ready dicts), covering the
    resilience chain and — for the simulator engine — the kernel run
    itself.  Restore with ``MetricsRegistry.from_snapshot``."""

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def describe(self) -> str:
        if self.ok:
            head = f"OK via {self.engine} ({np.dtype(self.dtype).name})"
        else:
            head = f"FAILED: {type(self.error).__name__}: {self.error}"
        lines = [head]
        for a in self.attempts:
            lines.append(
                f"  attempt[{a.engine} dtype={a.dtype} m={a.chunk_size} "
                f"seed={a.seed}]: {a.outcome}"
                + (f" — {a.detail}" if a.detail else "")
            )
        if self.degradations:
            lines.append("  degradations: " + "; ".join(self.degradations))
        return "\n".join(lines)


class ResilientSolver:
    """Policy-driven fault-tolerant front end for computing recurrences.

    Parameters
    ----------
    recurrence:
        The recurrence (or signature / signature string) to compute.
    machine:
        Machine for planning (``engine="plr"``) or simulation
        (``engine="sim"``; defaults to the small test GPU there).
    policy:
        The :class:`FallbackPolicy`; defaults are production-shaped.
    engine:
        ``"plr"`` — the numpy solver (the fast path); ``"sim"`` — the
        event-ordered GPU simulator, which honours ``fault`` plans and
        exercises the full Phase 2 protocol.
    fault:
        A :class:`~repro.gpusim.faults.FaultPlan` (or legacy
        :class:`~repro.gpusim.executor.ProtocolFault`) injected into
        the simulator engine — the chaos harness's entry point.
    sim_seed:
        Base scheduler seed; retries bump it to re-roll the schedule.
    chunk_size:
        Optional chunk-size override for the plr engine (otherwise the
        paper's planner decides).
    deadlock_rounds:
        Watchdog patience handed to the simulator's scheduler.
    tracer:
        Observability hook (``True`` / a shared
        :class:`~repro.obs.tracer.Tracer` / ``None`` for no-op).  The
        chain emits one ``attempt`` instant per attempt and a
        ``fallback`` instant per degradation transition (cat
        ``resilience``), and threads the tracer into whichever engine
        runs, so one trace shows the whole story: attempt, injected
        fault, stalled blocks, retry, fallback.
    backend / workers / shard_options:
        Backend plumbing for the plr engine, as on
        :class:`~repro.plr.solver.PLRSolver`.  With
        ``backend="process"`` a dead or stuck pool worker surfaces as a
        typed :class:`~repro.core.errors.WorkerError` and the chain
        degrades to the single-process path — the multicore level is an
        accelerator, never a correctness dependency.  With
        ``backend="native"`` the solver is built *strict*
        (``native_fallback=False``) so a missing compiler or failed
        compile surfaces as a typed
        :class:`~repro.core.errors.BackendError` here, where the chain
        records a ``"backend"`` attempt and degrades to the numpy path
        without consuming a retry — the toolchain, like the pool, is an
        accelerator, never a correctness dependency.
    context:
        Optional :class:`~repro.obs.context.TraceContext` naming the
        request this chain serves.  When set, the chain emits a
        ``resilient_solve`` span under it, each attempt/fallback
        instant carries its own child span, and per-attempt contexts
        propagate into the engine (and, for ``backend="process"``, into
        the worker lanes) — one request, one connected trace tree.
    """

    def __init__(
        self,
        recurrence: Recurrence | Signature | str,
        machine: MachineSpec | None = None,
        policy: FallbackPolicy | None = None,
        engine: str = "plr",
        fault: object | None = None,
        sim_seed: int = 0,
        chunk_size: int | None = None,
        deadlock_rounds: int = 200,
        tracer=None,
        backend: str = "single",
        workers: int | None = None,
        shard_options=None,
        context: TraceContext | None = None,
    ) -> None:
        if isinstance(recurrence, str):
            recurrence = Recurrence.parse(recurrence)
        elif isinstance(recurrence, Signature):
            recurrence = Recurrence(recurrence)
        if engine not in ("plr", "sim"):
            raise ValueError(f"engine must be plr|sim, got {engine!r}")
        if backend != "single" and engine == "sim":
            raise ValueError(
                "backend='process' applies to the plr engine only; the "
                "simulator models its own parallelism"
            )
        self.recurrence = recurrence
        self.engine = engine
        self.machine = machine or (
            MachineSpec.small_test_gpu() if engine == "sim" else MachineSpec.titan_x()
        )
        self.policy = policy or FallbackPolicy()
        self.fault = fault
        self.sim_seed = sim_seed
        self.chunk_size = chunk_size
        self.deadlock_rounds = deadlock_rounds
        self.tracer = coerce_tracer(tracer)
        self.context = context
        self.metrics = MetricsRegistry()
        self._solver = PLRSolver(
            recurrence,
            machine=self.machine if engine == "plr" else None,
            tracer=self.tracer,
            backend=backend,
            workers=workers,
            shard_options=shard_options,
            # Strict: the chain owns the degradation decision, so a
            # native-backend failure must surface as a typed error here
            # rather than silently falling back inside the solver.
            native_fallback=False,
        )
        self._pending_events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    def solve(self, values: np.ndarray) -> np.ndarray:
        """Compute the recurrence; raise the typed error on failure."""
        report = self.solve_with_report(values)
        if not report.ok:
            assert report.error is not None
            raise report.error
        return report.output

    def solve_with_report(
        self, values: np.ndarray, dtype: np.dtype | None = None
    ) -> SolveReport:
        """Compute the recurrence and report what degraded and why.

        Never raises for failures the chain understands: the report's
        ``ok``/``error`` fields carry the outcome.  The returned
        report's :attr:`SolveReport.metrics` holds a snapshot of this
        solver's metrics registry taken as the chain finished.

        ``dtype`` pins the starting working dtype (the batch engine
        passes each request's grouped dtype); the chain may still
        promote it while degrading.
        """
        if self.tracer.enabled and self.context is not None:
            with self.tracer.span(
                "resilient_solve", cat="resilience", link=self.context
            ):
                report = self._run_chain(values, dtype=dtype)
        else:
            report = self._run_chain(values, dtype=dtype)
        report.metrics = self.metrics.snapshot()
        return report

    def _degrade(self, report: SolveReport, message: str) -> None:
        """Record one degradation: report line, counter, trace instant."""
        report.degradations.append(message)
        self.metrics.counter("resilience.degradations").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "fallback",
                cat="resilience",
                pid=TracePid.HOST,
                args={"action": message},
                link=self.context.child() if self.context is not None else None,
            )

    def _run_chain(
        self, values: np.ndarray, dtype: np.dtype | None = None
    ) -> SolveReport:
        values = np.asarray(values)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("need a non-empty 1D input")
        policy = self.policy
        report = SolveReport(ok=False, output=None, engine=None, dtype=None)
        start = time.monotonic()

        if dtype is None:
            dtype = resolve_dtype(self.recurrence.signature, values.dtype)
        dtype = np.dtype(dtype)
        promotable = dtype == np.float32
        if np.issubdtype(values.dtype, np.floating) and not np.isfinite(values).all():
            # No degradation repairs poisoned input; the serial
            # reference at least propagates it with defined semantics.
            self._degrade(report, "non-finite input: direct serial fallback")
            return self._serial_fallback(values, dtype, report, start)

        plan = self._base_plan(values.size, dtype) if self.engine == "plr" else None
        seed = self.sim_seed
        retries = 0
        last_error: ReproError = SimulationError("no attempts ran")

        while len(report.attempts) < policy.max_attempts:
            if (
                policy.deadline_s is not None
                and time.monotonic() - start > policy.deadline_s
            ):
                self._degrade(
                    report, f"deadline {policy.deadline_s:g}s exceeded: serial fallback"
                )
                last_error = SimulationError(
                    f"deadline of {policy.deadline_s:g}s exceeded"
                )
                break
            t0 = time.monotonic()
            self._pending_events = []
            attempt_ctx = (
                self.context.child() if self.context is not None else None
            )
            try:
                output = self._attempt(values, dtype, plan, seed, attempt_ctx)
                report.attempts.append(
                    self._record(dtype, plan, seed, "ok", "", t0, attempt_ctx)
                )
                report.ok = True
                report.output = output
                report.engine = self.engine
                report.dtype = np.dtype(dtype)
                return report
            except NumericalError as exc:
                last_error = exc
                report.attempts.append(
                    self._record(dtype, plan, seed, "numerical", str(exc), t0, attempt_ctx)
                )
                if policy.promote_dtype and promotable:
                    dtype = np.dtype(np.float64)
                    promotable = False
                    plan = self._base_plan(values.size, dtype) if plan else None
                    self._degrade(report, "dtype promoted float32 -> float64")
                    continue
                if policy.promote_dtype and np.issubdtype(dtype, np.integer):
                    # Integer arithmetic raising a numerical fault means
                    # the coefficients themselves are not representable
                    # (fractional feedback on an integer request);
                    # retrying or shrinking cannot fix that, but float64
                    # computes the recurrence the caller actually wrote.
                    old = np.dtype(dtype).name
                    dtype = np.dtype(np.float64)
                    plan = self._base_plan(values.size, dtype) if plan else None
                    self._degrade(report, f"dtype promoted {old} -> float64")
                    continue
                shrunk = self._shrunk_plan(plan, values.size)
                if shrunk is not None:
                    self._degrade(
                        report,
                        f"chunk size reduced {plan.chunk_size} -> {shrunk.chunk_size}",
                    )
                    plan = shrunk
                    continue
                break
            except WorkerError as exc:
                last_error = exc
                report.attempts.append(
                    self._record(dtype, plan, seed, "worker", str(exc), t0, attempt_ctx)
                )
                self.metrics.counter("resilience.worker_faults").inc()
                if self._solver.backend in ("process", "native"):
                    # A broken pool is not transient within this solve:
                    # drop to the single-process path and go again
                    # without consuming a retry — same arithmetic, no
                    # pool to break.  (A sharded *native* solve reaches
                    # here too when its pool dies; the numpy path is the
                    # common safe ground.)
                    failed = self._solver.backend
                    self._solver = PLRSolver(
                        self.recurrence,
                        machine=self.machine if self.engine == "plr" else None,
                        tracer=self.tracer,
                    )
                    self._degrade(
                        report,
                        "process backend failed: single-process fallback"
                        if failed == "process"
                        else "native sharded workers failed: single-process fallback",
                    )
                    continue
            except BackendError as exc:
                last_error = exc
                report.attempts.append(
                    self._record(dtype, plan, seed, "backend", str(exc), t0, attempt_ctx)
                )
                self.metrics.counter("resilience.backend_faults").inc()
                if self._solver.backend == "native":
                    # No compiler / failed compile is not transient
                    # within this solve: drop to the numpy path and go
                    # again without consuming a retry — same recurrence,
                    # no toolchain dependency.
                    self._solver = PLRSolver(
                        self.recurrence,
                        machine=self.machine if self.engine == "plr" else None,
                        tracer=self.tracer,
                    )
                    self._degrade(
                        report,
                        "native backend failed: numpy single-process fallback",
                    )
                    continue
            except DeadlockError as exc:
                last_error = exc
                report.attempts.append(
                    self._record(dtype, plan, seed, "deadlock", str(exc).splitlines()[0], t0, attempt_ctx)
                )
            except ValidationError as exc:
                last_error = exc
                report.attempts.append(
                    self._record(dtype, plan, seed, "corrupt", str(exc), t0, attempt_ctx)
                )
            except SimulationError as exc:
                last_error = exc
                report.attempts.append(
                    self._record(dtype, plan, seed, "simulation", str(exc), t0, attempt_ctx)
                )
            finally:
                # Injected-fault event log of the simulator attempt, if
                # the run got far enough to surface one.
                if self._pending_events:
                    self.metrics.counter("resilience.faults_fired").inc(
                        len(self._pending_events)
                    )
                report.fault_events.extend(self._pending_events)
                self._pending_events = []
            # Shared retry path for simulation faults / corruption.
            if retries >= policy.max_retries:
                break
            if policy.backoff_base_s:
                time.sleep(policy.backoff_base_s * 2**retries)
            retries += 1
            seed += 1
            self._degrade(
                report, f"retry {retries}/{policy.max_retries} with scheduler seed {seed}"
            )
            self.metrics.counter("resilience.retries").inc()

        if policy.serial_fallback:
            if report.attempts and not any(
                d.startswith("serial") or "serial fallback" in d
                for d in report.degradations
            ):
                self._degrade(report, "fell back to serial reference")
            return self._serial_fallback(values, dtype, report, start)
        report.error = last_error
        return report

    # ------------------------------------------------------------------
    def _base_plan(self, n: int, dtype: np.dtype) -> ExecutionPlan:
        plan = self._solver.plan_for(n)
        if self.chunk_size is not None:
            plan = replace(
                plan,
                chunk_size=self.chunk_size,
                values_per_thread=1,
                num_chunks=-(-n // self.chunk_size),
            )
        return plan

    def _shrunk_plan(self, plan: ExecutionPlan | None, n: int) -> ExecutionPlan | None:
        """Halve the chunk size, or None when shrinking is exhausted."""
        if plan is None or not self.policy.shrink_chunk:
            return None
        half = plan.chunk_size // 2
        floor = max(
            self.policy.min_chunk_size,
            plan.values_per_thread,
            self.recurrence.order,
        )
        if half < floor:
            return None
        return replace(plan, chunk_size=half, num_chunks=-(-n // half))

    def _record(
        self,
        dtype: np.dtype,
        plan: ExecutionPlan | None,
        seed: int,
        outcome: str,
        detail: str,
        t0: float,
        ctx: TraceContext | None = None,
    ) -> AttemptRecord:
        self.metrics.counter("resilience.attempts").inc()
        self.metrics.counter(f"resilience.attempts.{outcome}").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "attempt",
                cat="resilience",
                pid=TracePid.HOST,
                args={
                    "engine": self.engine,
                    "dtype": np.dtype(dtype).name,
                    "seed": seed if self.engine == "sim" else None,
                    "outcome": outcome,
                },
                link=ctx,
            )
        return AttemptRecord(
            engine=self.engine,
            dtype=np.dtype(dtype).name,
            chunk_size=plan.chunk_size if plan else None,
            seed=seed if self.engine == "sim" else None,
            outcome=outcome,
            detail=detail,
            elapsed_s=time.monotonic() - t0,
        )

    def _should_verify(self) -> bool:
        if self.policy.verify == "none":
            return False
        if self.policy.verify == "paired":
            return True
        return self.engine == "sim"

    def _attempt(
        self,
        values: np.ndarray,
        dtype: np.dtype,
        plan: ExecutionPlan | None,
        seed: int,
        ctx: TraceContext | None = None,
    ) -> np.ndarray:
        work = values.astype(dtype, copy=False)
        if self.engine == "sim":
            sim = SimulatedPLR(
                self.recurrence,
                self.machine,
                seed=seed,
                fault=self.fault,
                deadlock_rounds=self.deadlock_rounds,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            # Injected faults may blow up float arithmetic mid-protocol;
            # the health check and paired verification below are the
            # detectors, so keep numpy quiet during the attempt.
            with np.errstate(over="ignore", invalid="ignore"):
                result = sim.run(work)
            self._pending_events = list(result.fault_events)
            output = result.output
        else:
            table = self._solver.factor_table(plan, dtype)
            if table.overflow_risk:
                raise NumericalError(
                    f"factor table for m={plan.chunk_size} predicted to "
                    f"overflow {np.dtype(dtype).name} (spectral radius "
                    f"{table.spectral_radius:.4g})"
                )
            # An attempt is allowed to overflow — that is precisely what
            # the health check below detects — so keep numpy quiet here.
            with np.errstate(over="ignore", invalid="ignore"):
                output = self._solver.solve(
                    values, plan=plan, dtype=dtype, context=ctx
                )
        if np.issubdtype(np.dtype(dtype), np.floating) and not np.isfinite(output).all():
            bad = int((~np.isfinite(output)).sum())
            raise NumericalError(
                f"output contains {bad} non-finite values in {np.dtype(dtype).name}"
            )
        if self._should_verify():
            self._verify(work, output, dtype)
        return output

    def _verify(self, work: np.ndarray, output: np.ndarray, dtype: np.dtype) -> None:
        """Redundant-execution check: an independent engine must agree.

        The paired engine (the numpy solver for the simulator, and vice
        versa a freshly planned solve for the numpy path) shares no
        scheduler, no fault plan, and no chunking with the primary, so
        silently corrupted carries (stale reads, bit flips, fence
        elision) surface as a mismatch here — which the chain treats
        like any other transient fault.
        """
        reference = PLRSolver(self.recurrence).solve(work, dtype=dtype)
        outcome = compare_results(output, reference)
        if not outcome.ok:
            raise ValidationError(
                f"paired verification failed: {outcome.describe()}"
            )

    def _serial_fallback(
        self,
        values: np.ndarray,
        dtype: np.dtype,
        report: SolveReport,
        start: float,
    ) -> SolveReport:
        t0 = time.monotonic()
        # The serial reference casts coefficients to the working dtype
        # like every other engine, so an integer dtype with fractional
        # coefficients would corrupt here too.  Honour the "never silent
        # corruption" contract: report the typed error instead.
        try:
            check_integer_coefficients(
                self.recurrence.signature.feedforward
                + self.recurrence.signature.feedback,
                dtype,
            )
        except NumericalError as exc:
            report.ok = False
            report.error = exc
            return report
        output = serial_full(values, self.recurrence.signature, dtype=dtype)
        if (
            np.issubdtype(np.dtype(dtype), np.floating)
            and dtype == np.float32
            and self.policy.promote_dtype
            and not np.isfinite(output).all()
            and np.isfinite(values).all()
        ):
            # Even the reference overflows in float32; promotion is the
            # only remaining lever and the serial engine supports it.
            self._degrade(report, "dtype promoted float32 -> float64 (serial)")
            dtype = np.dtype(np.float64)
            output = serial_full(values, self.recurrence.signature, dtype=dtype)
        self.metrics.counter("resilience.attempts").inc()
        self.metrics.counter("resilience.serial_fallbacks").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "attempt",
                cat="resilience",
                pid=TracePid.HOST,
                args={"engine": "serial", "dtype": np.dtype(dtype).name, "outcome": "ok"},
                link=self.context.child() if self.context is not None else None,
            )
        report.attempts.append(
            AttemptRecord(
                engine="serial",
                dtype=np.dtype(dtype).name,
                chunk_size=None,
                seed=None,
                outcome="ok",
                elapsed_s=time.monotonic() - t0,
            )
        )
        report.ok = True
        report.output = output
        report.engine = "serial"
        report.dtype = np.dtype(dtype)
        report.error = None
        return report


def solve_request(
    recurrence: Recurrence | Signature | str,
    values: np.ndarray,
    dtype: np.dtype | None = None,
    policy: FallbackPolicy | None = None,
    tracer=None,
    context: TraceContext | None = None,
    backend: str = "single",
    workers: int | None = None,
    shard_options=None,
) -> SolveReport:
    """Solve one request through a fresh degradation chain.

    The batch engine's per-request isolation path: when a grouped solve
    fails (or one row's output is unhealthy), each affected request is
    re-run alone through this function so its failure — and any
    degradation that rescues it — stays confined to that request.
    ``dtype`` pins the dtype the request was grouped under; ``context``
    carries the request's trace identity into the chain; ``backend``
    (with ``workers``/``shard_options``) selects the multicore sharded
    path for the isolated re-run.
    """
    solver = ResilientSolver(
        recurrence,
        policy=policy,
        tracer=tracer,
        context=context,
        backend=backend,
        workers=workers,
        shard_options=shard_options,
    )
    return solver.solve_with_report(np.asarray(values), dtype=dtype)
