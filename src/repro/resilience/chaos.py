"""Chaos harness: random fault plans against the resilient solver.

The harness sweeps random :class:`~repro.gpusim.faults.FaultPlan`
combinations x scheduler seeds x the paper's Table 1 recurrences
through a :class:`~repro.resilience.solver.ResilientSolver` driving the
event-ordered GPU simulator, and checks the resilience invariant:

    every solve ends in a *correct output* (validated against the
    serial reference) or a *typed error* — never silent corruption,
    never an untyped crash.

About 80%% of cases run with the serial fallback enabled (the
production configuration, where correctness is mandatory); the rest
disable it so typed-error escalation gets exercised too.  Everything is
seeded, so a failing case number reproduces exactly.

Run it as ``python -m repro.cli chaos`` or via :func:`run_chaos`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.coefficients import table1_signatures
from repro.core.errors import ReproError, SignatureError
from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype, serial_full
from repro.core.validation import compare_results
from repro.gpusim.faults import FaultKind, FaultPlan, FaultSpec
from repro.gpusim.spec import MachineSpec
from repro.resilience.solver import FallbackPolicy, ResilientSolver

__all__ = [
    "ChaosCase",
    "ChaosOutcome",
    "ChaosReport",
    "EngineChaosOutcome",
    "EngineChaosReport",
    "random_fault_plan",
    "run_chaos",
    "run_engine_chaos",
    # lazily re-exported from repro.serve.chaos:
    "FaultSchedule",
    "FaultyEngine",
    "ServerChaosOutcome",
    "ServerChaosReport",
    "run_server_chaos",
]

_SERVER_CHAOS_EXPORTS = (
    "FaultSchedule",
    "FaultyEngine",
    "ServerChaosOutcome",
    "ServerChaosReport",
    "run_server_chaos",
)


def __getattr__(name: str):
    # The server-level chaos mode lives with the serving layer but is
    # reachable from here so "the chaos harness" stays one import; lazy
    # so importing this module never pulls in asyncio/serve machinery.
    if name in _SERVER_CHAOS_EXPORTS:
        from repro.serve import chaos as _server_chaos

        return getattr(_server_chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class ChaosCase:
    """One sampled point of the sweep — enough to reproduce it alone."""

    index: int
    recurrence: str  # Table 1 name
    plan: FaultPlan
    sim_seed: int
    serial_fallback: bool
    n: int

    def describe(self) -> str:
        return (
            f"case {self.index}: {self.recurrence} n={self.n} "
            f"sim_seed={self.sim_seed} serial_fallback={self.serial_fallback} "
            f"faults=[{self.plan.describe()}]"
        )


@dataclass(frozen=True)
class ChaosOutcome:
    """How one case ended.

    ``status`` is one of:

    * ``"correct"`` — the solver produced output matching the serial
      reference (possibly after degrading);
    * ``"typed_error"`` — the solver failed with a :class:`ReproError`
      subclass (only reachable with the serial fallback disabled);
    * ``"violation"`` — the invariant broke: silently wrong output, or
      an untyped exception escaped.
    """

    case: ChaosCase
    status: str
    detail: str = ""
    attempts: int = 0
    degraded: bool = False
    engine: str | None = None
    fault_events: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "violation"


@dataclass
class ChaosReport:
    """Aggregate result of a chaos sweep."""

    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def violations(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for o in self.outcomes:
            tally[o.status] = tally.get(o.status, 0) + 1
        return tally

    def describe(self) -> str:
        tally = self.counts()
        degraded = sum(1 for o in self.outcomes if o.degraded)
        breakdown = ", ".join(f"{v} {k}" for k, v in sorted(tally.items()))
        lines = [
            f"chaos sweep: {len(self.outcomes)} cases"
            + (f", {breakdown}" if breakdown else "")
            + f", {degraded} degraded"
        ]
        for o in self.violations:
            lines.append(f"  VIOLATION {o.case.describe()}: {o.detail}")
        if self.ok:
            lines.append("invariant held: correct output or typed error in every case")
        return "\n".join(lines)


_KINDS = tuple(FaultKind)


def random_fault_plan(
    rng: np.random.Generator, num_chunks: int, seed: int
) -> FaultPlan:
    """Sample a composable fault plan: 1-3 specs over random kinds.

    Each spec independently picks a fault kind, a target (a random
    subset of chunks or all of them), a trigger probability, and the
    kind-specific knobs (visibility window, bit position).
    """
    specs = []
    for _ in range(int(rng.integers(1, 4))):
        kind = _KINDS[int(rng.integers(len(_KINDS)))]
        if rng.random() < 0.5:
            count = int(rng.integers(1, max(2, num_chunks // 2)))
            chunks = tuple(
                int(c) for c in rng.choice(num_chunks, size=count, replace=False)
            )
        else:
            chunks = None  # all chunks, gated by probability
        probability = 1.0 if chunks is not None else float(rng.uniform(0.05, 0.5))
        specs.append(
            FaultSpec(
                kind=kind,
                chunks=chunks,
                probability=probability,
                window=int(rng.integers(1, 7)),
                bit=int(rng.integers(0, 32)),
                max_triggers=int(rng.integers(1, 5)) if rng.random() < 0.5 else None,
            )
        )
    return FaultPlan(specs=tuple(specs), seed=seed)


def _chaos_input(recurrence: Recurrence, n: int, seed: int = 7) -> np.ndarray:
    """Deterministic input in the dtype the paper uses for this class."""
    generator = np.random.default_rng(seed)
    if recurrence.is_integer:
        return generator.integers(-100, 100, size=n).astype(np.int32)
    return generator.standard_normal(n).astype(np.float32)


def run_chaos(
    cases: int = 200,
    seed: int = 0,
    n: int = 160,
    recurrences: Mapping[str, object] | Sequence[str] | None = None,
    machine: MachineSpec | None = None,
    max_retries: int = 1,
    deadlock_rounds: int = 40,
    progress: Callable[[ChaosOutcome], None] | None = None,
) -> ChaosReport:
    """Sweep ``cases`` random (fault plan, scheduler seed, recurrence)
    combinations and check the resilience invariant on each.

    The ground truth for every (recurrence, n) pair is the serial
    reference, computed once and cached; with the default n=160 and the
    small test GPU (16-element chunks, 10 chunks) a 200-case sweep runs
    within a tier-1 test budget.
    """
    table = table1_signatures()
    if recurrences is None:
        names = list(table.keys())
    elif isinstance(recurrences, Mapping):
        names = list(recurrences.keys())
    else:
        names = list(recurrences)
    unknown = [name for name in names if name not in table]
    if unknown:
        raise SignatureError(
            f"unknown Table 1 recurrences: {', '.join(unknown)}; "
            f"known: {', '.join(table)}"
        )
    machine = machine or MachineSpec.small_test_gpu()
    num_chunks = -(-n // machine.max_threads_per_block)

    rng = np.random.default_rng(seed)
    truth: dict[str, np.ndarray] = {}
    inputs: dict[str, np.ndarray] = {}
    report = ChaosReport()

    for index in range(cases):
        name = names[int(rng.integers(len(names)))]
        recurrence = Recurrence(table[name])
        if name not in truth:
            values = _chaos_input(recurrence, n)
            inputs[name] = values
            dtype = resolve_dtype(recurrence.signature, values.dtype)
            truth[name] = serial_full(values, recurrence.signature, dtype=dtype)
        case = ChaosCase(
            index=index,
            recurrence=name,
            plan=random_fault_plan(rng, num_chunks, seed=int(rng.integers(2**31))),
            sim_seed=int(rng.integers(2**31)),
            serial_fallback=bool(rng.random() < 0.8),
            n=n,
        )
        outcome = _run_case(
            case, recurrence, inputs[name], truth[name], machine,
            max_retries, deadlock_rounds,
        )
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return report


def _run_case(
    case: ChaosCase,
    recurrence: Recurrence,
    values: np.ndarray,
    expected: np.ndarray,
    machine: MachineSpec,
    max_retries: int,
    deadlock_rounds: int,
) -> ChaosOutcome:
    solver = ResilientSolver(
        recurrence,
        machine=machine,
        engine="sim",
        fault=case.plan,
        sim_seed=case.sim_seed,
        deadlock_rounds=deadlock_rounds,
        policy=FallbackPolicy(
            max_retries=max_retries,
            serial_fallback=case.serial_fallback,
        ),
    )
    try:
        rep = solver.solve_with_report(values)
    except ReproError as exc:
        # solve_with_report reports rather than raises; a raise here
        # still satisfies the invariant as long as it is typed.
        return ChaosOutcome(case, "typed_error", f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 — the invariant under test
        return ChaosOutcome(case, "violation", f"untyped {type(exc).__name__}: {exc}")

    attempts = len(rep.attempts)
    if rep.ok:
        verdict = compare_results(rep.output, expected)
        if verdict.ok:
            return ChaosOutcome(
                case, "correct", verdict.describe(), attempts,
                rep.degraded, rep.engine, len(rep.fault_events),
            )
        return ChaosOutcome(
            case,
            "violation",
            f"silent corruption: {verdict.describe()} "
            f"(degradations: {'; '.join(rep.degradations) or 'none'})",
            attempts,
            rep.degraded,
            rep.engine,
            len(rep.fault_events),
        )
    if isinstance(rep.error, ReproError):
        return ChaosOutcome(
            case, "typed_error",
            f"{type(rep.error).__name__}: {rep.error}",
            attempts, rep.degraded, rep.engine, len(rep.fault_events),
        )
    return ChaosOutcome(
        case, "violation",
        f"failed without a typed error: {rep.error!r}",
        attempts, rep.degraded, rep.engine, len(rep.fault_events),
    )


# ----------------------------------------------------------------------
# mixed-queue chaos against the batched execution engine


@dataclass(frozen=True)
class EngineChaosOutcome:
    """How one mixed-queue request fared under the batch engine."""

    kind: str
    status: str  # "correct" | "typed_error" | "violation"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "violation"


@dataclass
class EngineChaosReport:
    """Aggregate result of a :func:`run_engine_chaos` sweep."""

    outcomes: list[EngineChaosOutcome] = field(default_factory=list)

    @property
    def violations(self) -> list[EngineChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for o in self.outcomes:
            key = f"{o.kind}:{o.status}"
            tally[key] = tally.get(key, 0) + 1
        return tally

    def describe(self) -> str:
        lines = [f"engine chaos: {len(self.outcomes)} requests"]
        for key, count in sorted(self.counts().items()):
            lines.append(f"  {count:3d}  {key}")
        for o in self.violations:
            lines.append(f"  VIOLATION [{o.kind}] {o.detail}")
        if self.ok:
            lines.append("invariant held: correct output or typed error")
        return "\n".join(lines)


#: The pathological request shapes the mixed queue cycles through,
#: alongside plain integer/float requests: zero-length inputs, inputs
#: shorter than the recurrence order, NaN-poisoned floats, float32
#: streams engineered to overflow mid-batch, integer values under a
#: fractional-coefficient signature, and requests whose deadline has
#: already passed at submission.
ENGINE_CHAOS_KINDS = (
    "plain_int",
    "plain_float",
    "empty",
    "short",
    "nan_poisoned",
    "overflow",
    "frac_int",
    "expired",
)


def _engine_chaos_request(kind: str, rng, clock):
    from repro.batch.planner import BatchRequest

    if kind == "plain_int":
        values = rng.integers(-50, 50, size=int(rng.integers(3, 200)))
        return BatchRequest("(1: 2, -1)", values.astype(np.int32), tag=kind)
    if kind == "plain_float":
        values = rng.standard_normal(int(rng.integers(3, 200)))
        return BatchRequest("(0.9, -0.9: 0.8)", values.astype(np.float32), tag=kind)
    if kind == "empty":
        return BatchRequest("(1: 1)", np.zeros(0, dtype=np.float32), tag=kind)
    if kind == "short":
        # Fewer values than the recurrence order.
        return BatchRequest(
            "(1: 1, 1, 1)", np.array([2], dtype=np.int32), tag=kind
        )
    if kind == "nan_poisoned":
        values = rng.standard_normal(int(rng.integers(4, 64))).astype(np.float32)
        values[int(rng.integers(values.size))] = np.nan
        return BatchRequest("(1: 1)", values, tag=kind)
    if kind == "overflow":
        # Fibonacci-style doubling in float32 overflows fast.
        n = int(rng.integers(200, 400))
        values = np.full(n, 1e30, dtype=np.float32)
        return BatchRequest("(1: 1, 1)", values, tag=kind)
    if kind == "frac_int":
        values = rng.integers(-20, 20, size=int(rng.integers(3, 100)))
        return BatchRequest("(0.5: 0.5)", values.astype(np.int32), tag=kind)
    if kind == "expired":
        values = rng.integers(-10, 10, size=16).astype(np.int32)
        return BatchRequest(
            "(1: 1)", values, tag=kind, deadline=clock() - 0.5
        )
    raise ValueError(f"unknown kind {kind!r}")


def _check_engine_outcome(kind, request, outcome) -> EngineChaosOutcome:
    if kind == "expired":
        # The deadline passed before submission: the only acceptable
        # outcome is a typed DeadlineExceeded shed, never a result.
        from repro.core.errors import DeadlineExceeded

        if not outcome.ok and isinstance(outcome.error, DeadlineExceeded):
            return EngineChaosOutcome(kind, "typed_error", "DeadlineExceeded")
        return EngineChaosOutcome(
            kind, "violation",
            f"expired request produced ok={outcome.ok} "
            f"error={type(outcome.error).__name__ if outcome.error else None}",
        )
    if not outcome.ok:
        if isinstance(outcome.error, ReproError):
            return EngineChaosOutcome(
                kind, "typed_error", type(outcome.error).__name__
            )
        return EngineChaosOutcome(
            kind, "violation", f"untyped failure: {outcome.error!r}"
        )
    got = outcome.output
    recurrence = Recurrence(request.signature)
    expected = serial_full(request.values, recurrence.signature, dtype=got.dtype)
    if got.shape != expected.shape:
        return EngineChaosOutcome(
            kind, "violation",
            f"shape {got.shape} != expected {expected.shape}",
        )
    if np.issubdtype(got.dtype, np.floating):
        # NaN-poisoned inputs legitimately produce NaN outputs (the
        # serial reference does too); they must match positionally.
        matches = np.allclose(got, expected, rtol=1e-3, atol=1e-5, equal_nan=True)
    else:
        matches = bool(np.array_equal(got, expected))
    if matches:
        return EngineChaosOutcome(kind, "correct", outcome.engine)
    return EngineChaosOutcome(
        kind, "violation",
        f"silent corruption ({outcome.engine}): max|got-expected| mismatch",
    )


def run_engine_chaos(seed: int = 0, requests: int = 48) -> EngineChaosReport:
    """Sweep a mixed pathological queue through one BatchEngine pass.

    The queue interleaves healthy requests with every shape in
    :data:`ENGINE_CHAOS_KINDS`, shuffled by ``seed``, and submits them
    as *one* queue so pathological members share groups with healthy
    ones — the point is that isolation keeps each failure private.  The
    invariant checked per request: correct output (validated against
    the serial reference at the outcome's dtype) or a typed error.
    """
    from repro.batch.engine import BatchEngine

    rng = np.random.default_rng(seed)
    engine = BatchEngine()
    kinds = [ENGINE_CHAOS_KINDS[i % len(ENGINE_CHAOS_KINDS)] for i in range(requests)]
    rng.shuffle(kinds)
    queue = [_engine_chaos_request(kind, rng, engine.clock) for kind in kinds]
    outcomes = engine.execute(queue)
    report = EngineChaosReport()
    for kind, request, outcome in zip(kinds, queue, outcomes):
        report.outcomes.append(_check_engine_outcome(kind, request, outcome))
    return report
