"""Resilient execution: fault injection, forensics, graceful degradation.

The paper's Phase 2 protocol (decoupled variable look-back with flags
and memory fences, Sections 2.2 and 3) is exactly the kind of lock-free
pipeline that fails silently under store reordering, stalled blocks,
and numerical blow-up.  This package makes the reproduction *prove* it
degrades gracefully instead of corrupting data:

* :mod:`repro.gpusim.faults` (re-exported here) — composable, seedable
  fault plans the GPU simulator injects at protocol points;
* :mod:`repro.resilience.health` — numerical health: NaN/Inf detection
  and the spectral-radius overflow prediction for factor tables;
* :mod:`repro.resilience.solver` — :class:`ResilientSolver`, a
  policy-driven fallback chain around the PLR solver and the simulator:
  dtype promotion, chunk-size reduction, bounded retry with backoff,
  and a final serial-reference fallback, with every solve returning a
  typed :class:`SolveReport` of what degraded and why;
* :mod:`repro.resilience.chaos` — the chaos harness sweeping random
  fault plans x scheduler seeds x the Table 1 recurrences and checking
  the invariant *correct output or typed error, never silent
  corruption*.
"""

from repro.gpusim.faults import (
    FaultEngine,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    flip_bit,
)
from repro.resilience.chaos import ChaosCase, ChaosOutcome, ChaosReport, run_chaos
from repro.resilience.health import (
    HealthReport,
    array_health,
    check_finite,
    predict_table_overflow,
    spectral_radius,
)
from repro.resilience.solver import (
    AttemptRecord,
    FallbackPolicy,
    ResilientSolver,
    SolveReport,
    solve_request,
)

__all__ = [
    "AttemptRecord",
    "ChaosCase",
    "ChaosOutcome",
    "ChaosReport",
    "FallbackPolicy",
    "FaultEngine",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HealthReport",
    "ResilientSolver",
    "SolveReport",
    "array_health",
    "check_finite",
    "flip_bit",
    "predict_table_overflow",
    "run_chaos",
    "solve_request",
    "spectral_radius",
]
