"""Numerical health checks: NaN/Inf detection and overflow prediction.

Blelloch's scan formulation reminds us the correction factors of a
linear recurrence are geometric sequences: each factor row is an
n-nacci run whose asymptotic growth rate is the *spectral radius* of
the recurrence — the largest pole magnitude of its transfer function.
For a signature with spectral radius rho > 1 the factors grow like
rho^m, so they overflow float32 (max ~3.4e38) once
``m > log(float32_max) / log(rho)`` — long before the paper's
m = 11264 chunk size for any seriously unstable signature.  Numerical
health is therefore a first-class failure mode, not a corner case, and
this module gives the :class:`~repro.resilience.ResilientSolver` the
predicates it needs to *predict* overflow before solving and to
*detect* contamination after.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.core.errors import NumericalError
from repro.core.signature import Signature
from repro.core.ztransform import poles

__all__ = [
    "HealthReport",
    "array_health",
    "check_finite",
    "predict_table_overflow",
    "spectral_radius",
]


@dataclass(frozen=True)
class HealthReport:
    """Summary of an array's numerical condition."""

    finite: bool
    nan_count: int
    inf_count: int
    max_abs: float
    size: int

    def describe(self) -> str:
        if self.finite:
            return f"healthy ({self.size} values, max |x| = {self.max_abs:.3g})"
        return (
            f"contaminated: {self.nan_count} NaN, {self.inf_count} Inf "
            f"of {self.size} values"
        )


def array_health(values: np.ndarray) -> HealthReport:
    """Inspect an array for NaN/Inf contamination.

    Integer arrays are always healthy: integer signatures deliberately
    wrap around like the 32-bit CUDA arithmetic the paper generates.
    """
    values = np.asarray(values)
    if values.size == 0 or not np.issubdtype(values.dtype, np.floating):
        return HealthReport(True, 0, 0, 0.0, int(values.size))
    finite_mask = np.isfinite(values)
    if finite_mask.all():
        return HealthReport(
            True, 0, 0, float(np.abs(values).max(initial=0.0)), int(values.size)
        )
    nan_count = int(np.isnan(values).sum())
    inf_count = int(np.isinf(values).sum())
    finite_values = values[finite_mask]
    max_abs = float(np.abs(finite_values).max(initial=0.0)) if finite_values.size else math.inf
    return HealthReport(False, nan_count, inf_count, max_abs, int(values.size))


def check_finite(values: np.ndarray, context: str) -> None:
    """Raise :class:`NumericalError` when a float array is contaminated."""
    report = array_health(values)
    if not report.finite:
        raise NumericalError(f"{context}: {report.describe()}")


def spectral_radius(signature: Signature) -> float:
    """The largest pole magnitude of the signature's recursive part.

    The growth rate of the correction factors and of the homogeneous
    solution: < 1 means the factor lists decay (stable filters, the
    paper's decay optimization), exactly 1 means polynomial growth
    (prefix sums), > 1 means geometric blow-up (Fibonacci-like
    recurrences).
    """
    return max((abs(p) for p in poles(signature.recursive_part())), default=0.0)


def predict_table_overflow(
    signature: Signature, chunk_size: int, dtype: np.dtype | type
) -> bool:
    """Will a (signature, chunk_size) factor table overflow ``dtype``?

    Pure prediction from the spectral radius — no table is built.  The
    largest factor magnitude is ~rho^(chunk_size-1); comparison happens
    in log space so the prediction itself cannot overflow.  Integer
    dtypes always return False (wrap-around semantics).
    """
    dtype = np.dtype(dtype)
    if not np.issubdtype(dtype, np.floating):
        return False
    rho = spectral_radius(signature)
    if rho <= 1.0:
        return False
    return (chunk_size - 1) * math.log(rho) > math.log(float(np.finfo(dtype).max))
