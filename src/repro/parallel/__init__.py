"""Multicore sharded execution backend (the hierarchy's grid level).

Public surface:

* :class:`~repro.parallel.sharding.ShardOptions` — pool size, timeout,
  and test-only fault injection.
* :func:`~repro.parallel.backend.solve_sharded` /
  :func:`~repro.parallel.backend.solve_batch_sharded` — run Phase 1 and
  Phase 2 across a process pool over shared memory, combining per-slab
  carry summaries with a Blelloch log-depth affine scan.
* :func:`~repro.parallel.scan.exclusive_affine_scan` and friends — the
  scan math, reusable on its own.

Most callers never import this directly: pass
``backend="process"`` to :class:`repro.plr.PLRSolver`,
:class:`repro.batch.BatchSolver`, or
:class:`repro.resilience.ResilientSolver` instead.
"""

from repro.parallel.backend import solve_batch_sharded, solve_sharded
from repro.parallel.scan import (
    affine_compose,
    affine_identity,
    exclusive_affine_scan,
)
from repro.parallel.sharding import ShardOptions, resolve_workers, slab_spans

__all__ = [
    "ShardOptions",
    "affine_compose",
    "affine_identity",
    "exclusive_affine_scan",
    "resolve_workers",
    "slab_spans",
    "solve_batch_sharded",
    "solve_sharded",
]
