"""Slab partitioning and worker-pool options for the process backend.

The sharded backend's unit of distribution is the *slab*: a contiguous
range of chunk rows of the ``(num_chunks, m)`` work matrix (or of batch
rows for batched solves).  Contiguity matters twice — a slab is a
zero-copy view into the shared-memory buffer, and its carry influence on
later slabs collapses to a single affine map (see
:mod:`repro.parallel.scan`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ShardOptions", "slab_spans", "resolve_workers"]


@dataclass(frozen=True)
class ShardOptions:
    """Tuning knobs for the multicore sharded backend.

    The defaults are safe everywhere: worker count follows the machine,
    and the timeout is generous enough that only a genuinely stuck
    worker (not a slow one) trips it.
    """

    workers: int | None = None
    """Pool size.  ``None`` means one worker per available core
    (``os.cpu_count()``); values are clamped to the number of slabs that
    actually exist, so requesting 8 workers for 3 chunks spawns 3."""

    timeout_s: float = 300.0
    """Per-stage deadline for each worker task.  A worker that neither
    returns nor dies within this window is treated as stuck and the
    solve fails with :class:`~repro.core.errors.WorkerError` (the
    resilience chain then degrades to the single-process path)."""

    inject: str | None = None
    """Fault-injection hook for tests: ``"die"`` makes the worker for
    slab 0 call ``os._exit`` mid-Phase-1, ``"hang"`` makes it sleep past
    any reasonable timeout.  Production code leaves this ``None``."""

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.inject not in (None, "die", "hang"):
            raise ValueError(f"unknown fault injection {self.inject!r}")


def resolve_workers(requested: int | None, num_items: int) -> int:
    """The actual pool size: requested (or cpu count), clamped to work.

    Never below 1 and never above ``num_items`` — a slab must hold at
    least one row, and empty slabs would produce degenerate identity
    summaries for no benefit.
    """
    if requested is None:
        requested = os.cpu_count() or 1
    return max(1, min(requested, num_items))


def slab_spans(num_items: int, slabs: int) -> list[tuple[int, int]]:
    """Split ``range(num_items)`` into ``slabs`` balanced contiguous spans.

    Returns ``[(start, stop), ...]`` covering the range exactly, sizes
    differing by at most one (the first ``num_items % slabs`` spans get
    the extra row).  Fewer items than slabs yields fewer spans — every
    returned span is non-empty.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    if slabs < 1:
        raise ValueError(f"slabs must be >= 1, got {slabs}")
    slabs = min(slabs, num_items)
    if slabs == 0:
        return []
    base, extra = divmod(num_items, slabs)
    spans = []
    start = 0
    for i in range(slabs):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans
