"""Multicore sharded execution: shared-memory slabs + affine carry scan.

This module adds the host-side *grid level* to the paper's hierarchy
(warp → block → grid): the ``(num_chunks, m)`` work matrix lives in one
:mod:`multiprocessing.shared_memory` segment, each pool worker owns a
contiguous slab of chunk rows, and the solve runs in two barriered
stages mirroring the paper's two phases:

**Stage A** — every worker runs :func:`~repro.plr.phase1.phase1_inplace`
on its slab view (zero-copy), publishes the slab's local carries into a
second shared segment, and returns the slab's *affine carry summary*
``(M^s, d)``: its exit carries as an affine function of whatever carries
enter it.  **Host scan** — the summaries are combined with a Blelloch
log-depth scan over affine-map composition
(:func:`~repro.parallel.scan.exclusive_affine_scan`); the exclusive
prefix at slab i, applied to the zero initial history, is exactly the
global carries entering slab i.  **Stage B** — every worker propagates
its slab's carries from that base and applies the element-wise
correction in place.

For integer dtypes the wraparound arithmetic is a ring, so the scan's
reassociation is exact and the sharded result is bit-identical to the
single-process solver; floats round differently at slab boundaries and
match within the usual tolerance.

Failure semantics: a worker that dies (broken pool) or stalls past the
:class:`~repro.parallel.sharding.ShardOptions` timeout raises
:class:`~repro.core.errors.WorkerError`; the shared buffers are always
unlinked, and no partial output ever escapes.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
from multiprocessing import shared_memory

import numpy as np

from repro.core.errors import WorkerError
from repro.obs.context import TraceContext
from repro.obs.tracer import NULL_TRACER, Tracer, coerce_tracer, merge_worker_events
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase1 import phase1_inplace
from repro.plr.phase2 import (
    add_carry_products,
    local_carries,
    phase2,
    propagate_carries,
    transition_matrix,
)

from repro.parallel.sharding import ShardOptions, resolve_workers, slab_spans

__all__ = ["solve_sharded", "solve_batch_sharded"]


def _pool_context():
    """Fork when available (cheap, inherits numpy), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        return multiprocessing.get_context("spawn")


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a host-created segment.

    Fork-context workers share the host's resource-tracker process, and
    its registry is a set — the worker's attach-time re-register is
    idempotent and the host's ``unlink()`` clears the one entry, so no
    per-worker unregister bookkeeping is needed (an explicit unregister
    here would race the host's unlink and double-remove the name).
    """
    return shared_memory.SharedMemory(name=name)


def _maybe_inject(inject: str | None, slab_index: int) -> None:
    """Test-only fault hook: slab 0's stage-A worker dies or hangs."""
    if inject is None or slab_index != 0:
        return
    if inject == "die":
        os._exit(13)
    if inject == "hang":
        time.sleep(3600)


def _slab_context(context_wire: dict | None) -> TraceContext | None:
    """Rehydrate the slab's trace context shipped across the pool.

    Contexts cross the process boundary in wire (dict) form — the same
    form they cross sockets in — so a worker's spans carry the request's
    trace_id and parent to the host-side stage span, and
    :func:`~repro.obs.tracer.merge_worker_events` stitches the lanes
    back into one request tree.
    """
    if context_wire is None:
        return None
    return TraceContext.from_wire(context_wire)


def _native_slab_solve(native_so: str, slab: np.ndarray) -> None:
    """Run a compiled kernel in place over one contiguous slab.

    The generated ``plr_compute`` consumes all of its input in the
    phase-1 loop before the phase-2 loop writes any output (the loops
    are separated by a barrier), so aliasing input and output is safe —
    the shared-memory slab is solved with zero extra copies.
    """
    import ctypes

    from repro.codegen.cbackend import load_kernel_library

    lib = load_kernel_library(native_so)
    flat = slab.reshape(-1)
    pointer = flat.ctypes.data_as(ctypes.c_void_p)
    lib.plr_compute(pointer, pointer, ctypes.c_longlong(flat.size))


def _phase1_slab_task(
    work_name: str,
    carries_name: str,
    shape: tuple[int, int],
    dtype_str: str,
    span: tuple[int, int],
    slab_index: int,
    table: CorrectionFactorTable,
    x: int,
    trace: bool,
    inject: str | None,
    context_wire: dict | None = None,
    native_so: str | None = None,
):
    """Stage A, in a worker: Phase 1 on the slab + its affine summary.

    Returns ``(slab_index, power, exit_carries, events)`` where
    ``power = M^s`` and ``exit_carries`` are the slab's last global
    carries under zero entering history — together the slab's affine map
    ``G_exit = power @ G_in + exit_carries``.

    With ``native_so`` the compiled kernel solves the slab *completely*
    (both phases, zero entering history) instead of Phase 1 only.  The
    affine summary is unchanged — the slab's exit carries under zero
    history are simply its last ``k`` solved values — and the shared
    carries rows stay at their creation-time zeros, which makes Stage
    B's per-chunk propagation from the scanned base compute exactly the
    homogeneous correction a fully-solved slab still needs.
    """
    _maybe_inject(inject, slab_index)
    tracer = Tracer() if trace else NULL_TRACER
    slab_ctx = _slab_context(context_wire)
    dtype = np.dtype(dtype_str)
    start, stop = span
    work_shm = _attach(work_name)
    carries_shm = _attach(carries_name)
    try:
        work = np.ndarray(shape, dtype=dtype, buffer=work_shm.buf)
        carries = np.ndarray(
            (shape[0], table.order), dtype=dtype, buffer=carries_shm.buf
        )
        slab = work[start:stop]
        with np.errstate(over="ignore", invalid="ignore"):
            with tracer.span(
                "phase1_slab",
                cat="parallel",
                args={"slab": slab_index, "rows": stop - start, "native": bool(native_so)},
                link=slab_ctx,
            ):
                if native_so is not None:
                    _native_slab_solve(native_so, slab)
                else:
                    phase1_inplace(slab, table, x, tracer=tracer)
            matrix = transition_matrix(table)
            if native_so is None:
                locals_ = local_carries(slab, table.order)
                carries[start:stop] = locals_
            with tracer.span(
                "slab_summary",
                cat="parallel",
                args={"slab": slab_index},
                link=slab_ctx.child() if slab_ctx is not None else None,
            ):
                power = np.linalg.matrix_power(matrix, stop - start)
                if native_so is not None:
                    exit_carries = local_carries(slab, table.order)[-1].copy()
                else:
                    exit_carries = propagate_carries(np.asarray(carries[start:stop]), matrix)[-1].copy()
        events = list(tracer.events)
        work = None
        carries = None
        slab = None
        locals_ = None
        return slab_index, power, exit_carries, events
    finally:
        work_shm.close()
        carries_shm.close()


def _phase2_slab_task(
    work_name: str,
    carries_name: str,
    shape: tuple[int, int],
    dtype_str: str,
    span: tuple[int, int],
    slab_index: int,
    table: CorrectionFactorTable,
    base: np.ndarray | None,
    trace: bool,
    context_wire: dict | None = None,
):
    """Stage B, in a worker: propagate from the scanned base and correct.

    ``base`` is the global carries entering the slab (None for slab 0,
    which has no history — keeping its arithmetic bit-identical to the
    serial spine).  The correction runs in place on the shared slab.
    """
    tracer = Tracer() if trace else NULL_TRACER
    slab_ctx = _slab_context(context_wire)
    dtype = np.dtype(dtype_str)
    start, stop = span
    work_shm = _attach(work_name)
    carries_shm = _attach(carries_name)
    try:
        work = np.ndarray(shape, dtype=dtype, buffer=work_shm.buf)
        carries = np.ndarray(
            (shape[0], table.order), dtype=dtype, buffer=carries_shm.buf
        )
        slab = work[start:stop]
        locals_ = np.asarray(carries[start:stop])
        matrix = transition_matrix(table)
        with np.errstate(over="ignore", invalid="ignore"):
            with tracer.span(
                "phase2_slab",
                cat="parallel",
                args={"slab": slab_index, "rows": stop - start},
                link=slab_ctx,
            ):
                global_ = propagate_carries(locals_, matrix, base=base)
                if base is None:
                    # First slab: chunk 0 is already globally correct.
                    if stop - start > 1:
                        add_carry_products(slab[1:], global_[:-1], table.factors)
                else:
                    prev = np.concatenate([base[None, :], global_[:-1]])
                    add_carry_products(slab, prev, table.factors)
        events = list(tracer.events)
        work = None
        carries = None
        slab = None
        return slab_index, events
    finally:
        work_shm.close()
        carries_shm.close()


def _batch_slab_task(
    work_name: str,
    shape: tuple[int, int],
    dtype_str: str,
    span: tuple[int, int],
    slab_index: int,
    table: CorrectionFactorTable,
    x: int,
    trace: bool,
    inject: str | None,
):
    """Batched solve, in a worker: full Phase 1 + 2 on a block of rows.

    Batch rows are independent sequences, so sharding the *batch* axis
    needs no cross-worker carry exchange at all — each worker runs both
    phases in place on its rows of the shared ``(B, padded_n)`` buffer.
    """
    _maybe_inject(inject, slab_index)
    tracer = Tracer() if trace else NULL_TRACER
    dtype = np.dtype(dtype_str)
    start, stop = span
    m = table.chunk_size
    work_shm = _attach(work_name)
    try:
        work = np.ndarray(shape, dtype=dtype, buffer=work_shm.buf)
        rows = stop - start
        chunk_view = work[start:stop].reshape(rows * (shape[1] // m), m)
        with np.errstate(over="ignore", invalid="ignore"):
            with tracer.span(
                "batch_slab",
                cat="parallel",
                args={"slab": slab_index, "rows": rows},
            ):
                phase1_inplace(chunk_view, table, x, tracer=tracer)
                batch_view = work[start:stop].reshape(rows, shape[1] // m, m)
                phase2(batch_view, table, tracer=tracer, out=batch_view)
        events = list(tracer.events)
        work = None
        chunk_view = None
        batch_view = None
        return slab_index, events
    finally:
        work_shm.close()


class _ShmPair:
    """Host-owned shared segments with exception-safe teardown."""

    def __init__(self, sizes: list[int]) -> None:
        self.segments = [
            shared_memory.SharedMemory(create=True, size=max(1, size))
            for size in sizes
        ]

    def close(self) -> None:
        for shm in self.segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - lingering view
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _collect(futures: dict, timeout_s: float, stage: str) -> list:
    """Gather worker results, translating pool failures to WorkerError.

    One deadline covers the whole stage: workers run concurrently, so a
    per-future budget would multiply the wait for a wedged pool.
    """
    deadline = time.monotonic() + timeout_s
    results = []
    for future, slab_index in futures.items():
        remaining = deadline - time.monotonic()
        try:
            results.append(future.result(timeout=max(0.001, remaining)))
        except concurrent.futures.process.BrokenProcessPool as exc:
            raise WorkerError(
                f"worker for slab {slab_index} died during {stage} "
                f"(process pool broken)"
            ) from exc
        except concurrent.futures.TimeoutError as exc:
            raise WorkerError(
                f"worker for slab {slab_index} did not finish {stage} "
                f"within {timeout_s:.1f}s"
            ) from exc
    return results


def _shutdown(pool: concurrent.futures.ProcessPoolExecutor) -> None:
    """Tear the pool down without waiting on wedged workers.

    The process handles must be captured *before* ``shutdown`` — it
    drops ``pool._processes`` when ``wait=False`` — and a wedged worker
    never reads its exit sentinel, so it is killed outright.  The
    executor's management thread sees the death, marks the pool broken,
    and cleans itself up; without the kill the interpreter would block
    forever joining that thread at exit.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - already dead
            pass


def _tuned_workers(n: int) -> int | None:
    """Measured-best pool size for a solve of length n, if calibrated.

    Consulted only when the caller left ``ShardOptions.workers`` at
    ``None`` ("follow the machine"): a calibration table that measured
    the process backend at this size bucket knows the pool size that
    actually won there, which one-worker-per-core over-estimates when
    pool spawn cost dominates.  None (no table, tuning disabled, any
    failure) keeps the one-per-core default.
    """
    try:
        from repro.tune.policy import default_policy

        return default_policy().recommend_workers(n)
    except Exception:
        return None


def solve_sharded(
    padded: np.ndarray,
    table: CorrectionFactorTable,
    x: int,
    options: ShardOptions | None = None,
    tracer=NULL_TRACER,
    context: TraceContext | None = None,
    native_so: str | None = None,
) -> np.ndarray:
    """Run both phases over a padded 1D input across a process pool.

    ``padded`` is the post-map-stage input, already zero-padded to a
    whole number of chunks (exactly what :func:`~repro.plr.phase1.phase1`
    accepts).  Returns the fully corrected ``(num_chunks, m)`` result as
    an ordinary array; the shared segments are unlinked before return,
    success or failure.

    With one slab (or one usable worker) the solve runs inline in this
    process — same arithmetic, no pool overhead.

    ``native_so`` is the path to a compiled kernel (see
    :func:`repro.codegen.jit.native_kernel`, built from the recursive
    signature at this table's chunk size): each Stage A worker then runs
    its slab through ``plr_compute`` in place instead of the numpy
    Phase 1.  The carry scan and Stage B are unchanged — a slab solved
    under zero entering history has zero local carries, so Stage B's
    propagation from the scanned base applies exactly the homogeneous
    correction that remains.  A kernel that fails to load in a worker
    surfaces as a typed :class:`~repro.core.errors.BackendError`.

    ``context`` names the owning request's trace: stage spans become its
    children and each slab submission carries a wire-encoded child
    context across the process boundary, so the merged worker lanes
    reconnect to one parent-linked tree.
    """
    options = options or ShardOptions()
    tracer = coerce_tracer(tracer)
    m = table.chunk_size
    if padded.ndim != 1 or padded.size % m:
        raise ValueError(
            f"expected a padded 1D input with length a multiple of m={m}, "
            f"got shape {padded.shape}"
        )
    num_chunks = padded.size // m
    requested = options.workers
    if requested is None:
        requested = _tuned_workers(padded.size)
    spans = slab_spans(num_chunks, resolve_workers(requested, num_chunks))
    if len(spans) <= 1:
        if native_so is not None:
            work = padded.reshape(-1, m).copy()
            _native_slab_solve(native_so, work)
            return work
        work = padded.reshape(-1, m).copy()
        phase1_inplace(work, table, x, tracer=tracer)
        return phase2(work, table, tracer=tracer, out=work)

    k = table.order
    dtype = padded.dtype
    shms = _ShmPair(
        [num_chunks * m * dtype.itemsize, num_chunks * k * dtype.itemsize]
    )
    work_shm, carries_shm = shms.segments
    work = np.ndarray((num_chunks, m), dtype=dtype, buffer=work_shm.buf)
    np.copyto(work, padded.reshape(num_chunks, m))

    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=len(spans), mp_context=_pool_context()
    )
    trace = tracer.enabled
    try:
        p1_ctx = context.child() if context is not None else None
        with tracer.span(
            "phase1_shards",
            cat="parallel",
            args={"slabs": len(spans)},
            link=p1_ctx,
        ):
            futures = {
                pool.submit(
                    _phase1_slab_task,
                    work_shm.name,
                    carries_shm.name,
                    (num_chunks, m),
                    dtype.str,
                    span,
                    i,
                    table,
                    x,
                    trace,
                    options.inject,
                    p1_ctx.child().to_wire() if p1_ctx is not None else None,
                    native_so,
                ): i
                for i, span in enumerate(spans)
            }
            summaries: list = [None] * len(spans)
            for slab_index, power, exit_carries, events in _collect(
                futures, options.timeout_s, "phase 1"
            ):
                summaries[slab_index] = (power, exit_carries)
                merge_worker_events(tracer, slab_index, events)

        with tracer.span(
            "carry_scan",
            cat="parallel",
            args={"slabs": len(spans)},
            link=context.child() if context is not None else None,
        ):
            from repro.parallel.scan import exclusive_affine_scan

            prefixes = exclusive_affine_scan(summaries, k, dtype)
            # Initial history is zero, so the carries entering slab i are
            # the b-component of the exclusive prefix map.
            bases = [b for _, b in prefixes]

        p2_ctx = context.child() if context is not None else None
        with tracer.span(
            "phase2_shards",
            cat="parallel",
            args={"slabs": len(spans)},
            link=p2_ctx,
        ):
            futures = {
                pool.submit(
                    _phase2_slab_task,
                    work_shm.name,
                    carries_shm.name,
                    (num_chunks, m),
                    dtype.str,
                    span,
                    i,
                    table,
                    None if i == 0 else bases[i],
                    trace,
                    p2_ctx.child().to_wire() if p2_ctx is not None else None,
                ): i
                for i, span in enumerate(spans)
                # A native Stage A solved slab 0 outright (zero entering
                # history IS its true history) and its shared carries
                # rows are zero, so its Stage B would be a no-op.
                if not (native_so is not None and i == 0)
            }
            for slab_index, events in _collect(futures, options.timeout_s, "phase 2"):
                merge_worker_events(tracer, slab_index, events)

        return np.array(work, copy=True)
    finally:
        _shutdown(pool)
        work = None
        shms.close()


def solve_batch_sharded(
    padded: np.ndarray,
    table: CorrectionFactorTable,
    x: int,
    options: ShardOptions | None = None,
    tracer=NULL_TRACER,
) -> np.ndarray:
    """Run both phases over a padded ``(B, padded_n)`` batch in a pool.

    Shards the *batch* axis: rows are independent recurrences, so each
    worker completes its rows end to end with no carry exchange.
    Returns the ``(B, num_chunks, m)`` corrected result.
    """
    options = options or ShardOptions()
    tracer = coerce_tracer(tracer)
    m = table.chunk_size
    if padded.ndim != 2 or padded.shape[1] % m:
        raise ValueError(
            f"expected a padded (B, n) batch with n a multiple of m={m}, "
            f"got shape {padded.shape}"
        )
    batch, padded_n = padded.shape
    num_chunks = padded_n // m
    requested = options.workers
    if requested is None:
        requested = _tuned_workers(padded_n)
    spans = slab_spans(batch, resolve_workers(requested, batch))
    if len(spans) <= 1:
        work = padded.reshape(-1, m).copy()
        phase1_inplace(work, table, x, tracer=tracer)
        shaped = work.reshape(batch, num_chunks, m)
        return phase2(shaped, table, tracer=tracer, out=shaped)

    dtype = padded.dtype
    shms = _ShmPair([batch * padded_n * dtype.itemsize])
    (work_shm,) = shms.segments
    work = np.ndarray((batch, padded_n), dtype=dtype, buffer=work_shm.buf)
    np.copyto(work, padded)

    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=len(spans), mp_context=_pool_context()
    )
    try:
        with tracer.span(
            "batch_shards", cat="parallel", args={"slabs": len(spans)}
        ):
            futures = {
                pool.submit(
                    _batch_slab_task,
                    work_shm.name,
                    (batch, padded_n),
                    dtype.str,
                    span,
                    i,
                    table,
                    x,
                    tracer.enabled,
                    options.inject,
                ): i
                for i, span in enumerate(spans)
            }
            for slab_index, events in _collect(futures, options.timeout_s, "batch solve"):
                merge_worker_events(tracer, slab_index, events)
        return np.array(
            work.reshape(batch, num_chunks, m), copy=True
        )
    finally:
        _shutdown(pool)
        work = None
        shms.close()
