"""Log-depth scan over affine carry maps (the grid level of the hierarchy).

The Phase 2 carry recursion ``G_c = L_c + M @ G_{c-1}`` is an affine map
applied once per chunk.  A *slab* of s consecutive chunks therefore maps
its entering carries to its exit carries through the composition of s
affine maps, which is itself affine:

    G_exit = A @ G_in + b,   with A = M^s

and ``b`` the exit carries of the slab solved from zero history (what a
worker computes anyway).  Affine maps compose associatively —

    (A2, b2) ∘ (A1, b1) = (A2 @ A1, A2 @ b1 + b2)

— so the per-slab summaries admit an exclusive Blelloch scan: up-sweep
builds a reduction tree, down-sweep distributes prefixes, total depth
2·log2(S) for S slabs instead of the serial S-step spine.  The prefix at
slab s is the affine map of *everything before it*; applied to the zero
initial history, its ``b`` component is exactly the carries entering
slab s.

Exactness: integer dtypes use wraparound arithmetic (a ring), where
reassociation changes nothing — the scanned result is bit-identical to
the serial spine.  Float dtypes reassociate sums and round differently
at slab boundaries, within the usual tolerance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["affine_identity", "affine_compose", "exclusive_affine_scan"]


def affine_identity(k: int, dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
    """The neutral affine map (I, 0) for k-vector carries."""
    return np.eye(k, dtype=dtype), np.zeros(k, dtype=dtype)


def affine_compose(
    first: tuple[np.ndarray, np.ndarray],
    second: tuple[np.ndarray, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Apply ``first`` then ``second``: the map ``x -> A2(A1 x + b1) + b2``."""
    a1, b1 = first
    a2, b2 = second
    return a2 @ a1, a2 @ b1 + b2


def exclusive_affine_scan(
    summaries: list[tuple[np.ndarray, np.ndarray]],
    k: int,
    dtype: np.dtype,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Blelloch exclusive scan of affine maps; result[i] composes [0, i).

    ``result[0]`` is the identity, ``result[i]`` the composition
    ``summaries[i-1] ∘ ... ∘ summaries[0]``.  Classic two-pass tree:
    pad to a power of two with identities, up-sweep reduces pairs,
    down-sweep swaps-and-composes back down — O(S) work, O(log S)
    depth, mirroring the GPU scan this backend models on the host.
    """
    count = len(summaries)
    if count == 0:
        return []
    size = 1
    while size < count:
        size *= 2
    tree = list(summaries) + [
        affine_identity(k, dtype) for _ in range(size - count)
    ]
    # Up-sweep: tree[i + 2d - 1] <- tree[i + d - 1] ∘-then tree[i + 2d - 1]
    depth = 1
    while depth < size:
        for i in range(0, size, 2 * depth):
            left = tree[i + depth - 1]
            right = tree[i + 2 * depth - 1]
            tree[i + 2 * depth - 1] = affine_compose(left, right)
        depth *= 2
    # Down-sweep: the root becomes the identity, then each node passes
    # its prefix to the left child and prefix-then-left-reduction to the
    # right child (maps compose in slab order; matrices don't commute).
    tree[size - 1] = affine_identity(k, dtype)
    depth = size // 2
    while depth >= 1:
        for i in range(0, size, 2 * depth):
            left = tree[i + depth - 1]
            prefix = tree[i + 2 * depth - 1]
            tree[i + depth - 1] = prefix
            tree[i + 2 * depth - 1] = affine_compose(prefix, left)
        depth //= 2
    return tree[:count]
