"""Machine identity for the calibration database.

A tuning measurement is only meaningful on the machine that produced
it: the native-vs-numpy crossover moves with the compiler, the process
backend's profitability moves with the core count, and numpy's
vectorized throughput moves with the BLAS/SIMD build.  The fingerprint
captures exactly the dimensions a measurement depends on — core count,
compiler identity, numpy version, platform — so a calibration table
(or a committed bench baseline) carries a declared provenance, and a
mismatch invalidates the data instead of silently mis-steering solves.

The fingerprint is deliberately coarse: it identifies a *machine
class*, not an instant.  Load average, frequency scaling, and thermal
state are noise the measurement protocol (best-of-N) absorbs; they do
not belong in the key.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform

__all__ = [
    "machine_fingerprint",
    "fingerprint_digest",
    "fingerprint_mismatches",
]

FINGERPRINT_FIELDS = ("cpu_count", "platform", "machine", "python", "numpy", "compiler")
"""The compared fields, in reporting order.  Extra keys in a stored
fingerprint are ignored so the schema can grow without invalidating
every existing table."""


def _compiler_identity() -> str | None:
    """First ``--version`` line of the C compiler, or None without one.

    Imported lazily: the tune package must stay importable (and the
    solve path must stay cheap) on machines with no toolchain at all.
    """
    from repro.codegen import cbackend
    from repro.core.errors import BackendError

    try:
        compiler = cbackend._find_compiler()
    except BackendError:
        return None
    return cbackend._compiler_version(compiler)


def machine_fingerprint() -> dict:
    """The identity dict stamped into calibration tables and baselines."""
    import numpy as np

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "compiler": _compiler_identity(),
    }


def fingerprint_digest(fingerprint: dict) -> str:
    """A short stable digest of the compared fields (for display/keys)."""
    canonical = json.dumps(
        {field: fingerprint.get(field) for field in FINGERPRINT_FIELDS},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def fingerprint_mismatches(stored: dict, current: dict) -> tuple[str, ...]:
    """Human-readable differences between two fingerprints.

    Returns one ``"field: stored -> current"`` line per differing field,
    empty when the machines match.  A field absent from the *stored*
    fingerprint is skipped — old tables that predate a field stay valid
    rather than being invalidated by schema growth.
    """
    lines = []
    for field in FINGERPRINT_FIELDS:
        if field not in stored:
            continue
        a, b = stored[field], current.get(field)
        if a != b:
            lines.append(f"{field}: {a!r} -> {b!r}")
    return tuple(lines)
