"""The persistent calibration table behind ``backend="auto"``.

One :class:`CalibrationEntry` records one measurement: "on this
machine, this backend solved this recurrence class at this size bucket
in this many seconds".  The :class:`CalibrationDatabase` is the durable
set of those measurements — a versioned JSON file under a user cache
directory — with three hard guarantees the solve path relies on:

* **lossless round-trip** — entries survive save/load bit-exactly
  (floats serialize via ``repr`` through ``json``, which round-trips
  IEEE doubles), so a ranking measured today is the ranking consulted
  after any number of restarts;
* **fingerprint invalidation** — a table written on a different
  machine class (core count, compiler, numpy, platform — see
  :mod:`repro.tune.fingerprint`) loads *empty* with a declared reason,
  never as silently wrong advice;
* **no exceptions on the solve path** — a missing, corrupt, or
  foreign table degrades to a cold database whose :attr:`status`
  explains why; :class:`~repro.tune.policy.TuningPolicy` turns that
  into the static-heuristic fallback.

The entry key is ``(signature class, n bucket, dtype, backend,
workers)``.  Keying by *class* rather than exact signature keeps the
table small and transferable: backend crossovers are set by arithmetic
shape (order, integer vs float, FIR stage) and size, not by the
particular coefficient values, so one measured representative per
class steers every signature in it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.tune.fingerprint import (
    fingerprint_digest,
    fingerprint_mismatches,
    machine_fingerprint,
)

__all__ = [
    "DB_VERSION",
    "CalibrationEntry",
    "CalibrationDatabase",
    "default_db_path",
    "n_bucket",
    "signature_class",
]

DB_VERSION = 1
"""Schema version; a table with a different version loads cold (the
declared reason names both versions) rather than being misread."""


def default_db_path() -> Path:
    """Where the calibration table lives: $PLR_TUNE_DB or the user cache.

    Follows the XDG convention (``$XDG_CACHE_HOME`` or ``~/.cache``)
    like the native kernel cache follows ``$PLR_NATIVE_CACHE_DIR``.
    """
    env = os.environ.get("PLR_TUNE_DB")
    if env:
        return Path(env)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "plr" / "tuning.json"


def n_bucket(n: int) -> int:
    """The size bucket for an input of length n: the next power of two.

    Powers of two give log-spaced buckets, matching how backend
    crossovers behave (a backend that wins at 2^16 wins at 1.3 * 2^16
    too); exact sizes would make every odd length a cold lookup.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def signature_class(signature) -> str:
    """The calibration key for a signature: family, order, arithmetic.

    E.g. ``"prefix_sum:1:int"`` for ``(1: 1)`` or ``"iir_filter:1:float"``
    for ``(0.2: 0.8)``.  Accepts a :class:`~repro.core.signature.Signature`,
    a :class:`~repro.core.recurrence.Recurrence`, or a signature string.
    """
    from repro.core.classify import classify
    from repro.core.signature import Signature

    if isinstance(signature, str):
        signature = Signature.parse(signature)
    signature = getattr(signature, "signature", signature)
    cls = classify(signature)
    arithmetic = "int" if signature.is_integer else "float"
    return f"{cls.kind.value}:{cls.order}:{arithmetic}"


@dataclass(frozen=True)
class CalibrationEntry:
    """One measurement: a backend's best wall time at one key.

    Attributes
    ----------
    sig_class:
        The :func:`signature_class` of the measured representative.
    bucket:
        The :func:`n_bucket` the measurement ran at (the actual input
        length equals the bucket).
    dtype:
        Working dtype name (``"int32"`` / ``"float32"`` / ...).
    backend:
        ``"single"`` | ``"process"`` | ``"native"``.
    workers:
        Effective pool size the measurement used (1 for in-process
        backends).
    wall_s:
        Best-of-repeat wall seconds for one solve.
    values_per_thread:
        The plan's x during the measurement; the planner consults the
        winning backend's x for measured buckets.
    repeat:
        How many timed repetitions the best was taken over.
    """

    sig_class: str
    bucket: int
    dtype: str
    backend: str
    workers: int
    wall_s: float
    values_per_thread: int | None = None
    repeat: int = 1

    @property
    def key(self) -> tuple:
        return (self.sig_class, self.bucket, self.dtype, self.backend, self.workers)


@dataclass
class CalibrationDatabase:
    """The in-memory calibration table plus its provenance and health.

    ``status`` is one of ``"ok"`` (loaded with entries or freshly
    built), ``"cold"`` (no table on disk yet), ``"corrupt"``,
    ``"version-mismatch"``, or ``"fingerprint-mismatch"``; ``reason``
    carries the human-readable detail for everything but ``"ok"``.
    A database whose status is not ``"ok"`` always has zero entries —
    stale advice is discarded at load time, not filtered per lookup.
    """

    path: Path
    fingerprint: dict = field(default_factory=machine_fingerprint)
    entries: dict = field(default_factory=dict)
    status: str = "ok"
    reason: str | None = None

    # -- persistence -----------------------------------------------------
    @classmethod
    def load(cls, path: str | Path | None = None) -> "CalibrationDatabase":
        """Read the table, degrading (never raising) on any defect."""
        path = Path(path) if path is not None else default_db_path()
        current = machine_fingerprint()
        try:
            text = path.read_text()
        except FileNotFoundError:
            return cls(
                path=path,
                fingerprint=current,
                status="cold",
                reason=f"no calibration table at {path} (run 'plr tune')",
            )
        except OSError as exc:
            return cls(
                path=path,
                fingerprint=current,
                status="corrupt",
                reason=f"cannot read {path}: {exc}",
            )
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("top level is not an object")
            version = payload["version"]
            stored_fp = payload["fingerprint"]
            raw_entries = payload["entries"]
            if not isinstance(stored_fp, dict) or not isinstance(raw_entries, list):
                raise ValueError("fingerprint/entries have the wrong shape")
            entries = [CalibrationEntry(**record) for record in raw_entries]
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            return cls(
                path=path,
                fingerprint=current,
                status="corrupt",
                reason=f"calibration table {path} is unreadable: {exc}",
            )
        if version != DB_VERSION:
            return cls(
                path=path,
                fingerprint=current,
                status="version-mismatch",
                reason=(
                    f"calibration table {path} has schema v{version}, "
                    f"this build reads v{DB_VERSION}; re-run 'plr tune'"
                ),
            )
        mismatches = fingerprint_mismatches(stored_fp, current)
        if mismatches:
            return cls(
                path=path,
                fingerprint=current,
                status="fingerprint-mismatch",
                reason=(
                    "calibration table was measured on a different machine "
                    f"({'; '.join(mismatches)}); re-run 'plr tune'"
                ),
            )
        db = cls(path=path, fingerprint=stored_fp)
        for entry in entries:
            db.entries[entry.key] = entry
        return db

    def save(self) -> Path:
        """Atomically publish the table (write temp file, then rename)."""
        payload = {
            "version": DB_VERSION,
            "fingerprint": self.fingerprint,
            "entries": [
                asdict(entry)
                for entry in sorted(self.entries.values(), key=lambda e: e.key)
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=self.path.name + ".", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.status, self.reason = "ok", None
        return self.path

    # -- queries ---------------------------------------------------------
    def record(self, entry: CalibrationEntry) -> None:
        """Insert or replace the measurement at ``entry.key``."""
        self.entries[entry.key] = entry

    def lookup(self, sig_class: str, bucket: int, dtype: str) -> list:
        """Every backend's entry at one (class, bucket, dtype) point."""
        return [
            entry
            for entry in self.entries.values()
            if entry.sig_class == sig_class
            and entry.bucket == bucket
            and entry.dtype == dtype
        ]

    def buckets(self, sig_class: str, dtype: str) -> list[int]:
        """Sorted measured buckets for one (class, dtype) pair."""
        return sorted(
            {
                entry.bucket
                for entry in self.entries.values()
                if entry.sig_class == sig_class and entry.dtype == dtype
            }
        )

    def best(self, sig_class: str, bucket: int, dtype: str):
        """The fastest entry at one point, or None when unmeasured."""
        entries = self.lookup(sig_class, bucket, dtype)
        return min(entries, key=lambda e: e.wall_s) if entries else None

    def describe(self) -> dict:
        """The health block surfaced through ``{"op": "metrics"}``."""
        return {
            "path": str(self.path),
            "status": self.status,
            "reason": self.reason,
            "entries": len(self.entries),
            "fingerprint": fingerprint_digest(self.fingerprint),
        }
