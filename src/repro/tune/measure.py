"""The closed-loop part of the autotuner: benchmark, record, persist.

:func:`run_tuning` measures the actual machine — one representative
recurrence per calibration class, each backend, a log-spaced sweep of
size buckets — and writes the results into a
:class:`~repro.tune.db.CalibrationDatabase`.  From then on every
``backend="auto"`` solve answers with the fastest *measured*
configuration instead of a hard-coded guess.

Measurement protocol (mirrors ``plr bench``):

* best-of-``repeat`` wall time per point — the minimum filters
  scheduler noise, which only ever adds time;
* the native kernel is compiled by an untimed warmup solve, so the
  table records steady-state execution, not the one-off JIT cost (a
  serving process pays that once; the serve layer pre-compiles it at
  startup);
* every backend's output is verified against the vectorized solver
  before its timing is recorded — a backend that answers wrongly must
  not win the table;
* a backend that cannot run here (no C compiler, a worker pool that
  cannot start) is *skipped with a declared note*, never recorded as
  infinitely slow and never fatal to the sweep.

``quick=True`` shrinks the sweep (two buckets, one repetition, no
values-per-thread search) to a few seconds for CI and first-use
calibration; the full sweep adds more buckets and an x search on the
vectorized backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.tune.db import (
    CalibrationDatabase,
    CalibrationEntry,
    signature_class,
)

__all__ = [
    "FULL_SWEEP_SIZES",
    "QUICK_SWEEP_SIZES",
    "REPRESENTATIVE_SIGNATURES",
    "MeasuredPoint",
    "run_tuning",
]

REPRESENTATIVE_SIGNATURES = ("(1: 1)", "(1: 2, -1)", "(0.2: 0.8)")
"""One representative per calibration class the workloads exercise:
integer prefix sum, second-order integer recurrence (Fibonacci-like),
and first-order float IIR (the EMA/low-pass family)."""

FULL_SWEEP_SIZES = (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20)
QUICK_SWEEP_SIZES = (1 << 12, 1 << 16)


@dataclass(frozen=True)
class MeasuredPoint:
    """One timed (signature, bucket, backend) result, for reporting."""

    signature: str
    sig_class: str
    bucket: int
    dtype: str
    backend: str
    workers: int
    wall_s: float
    recorded: bool
    note: str = ""


def _time_best(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _verified(output, expected) -> bool:
    from repro.core.validation import compare_results

    return compare_results(output, expected).ok


def run_tuning(
    db: CalibrationDatabase | None = None,
    path=None,
    signatures=None,
    sizes=None,
    quick: bool = False,
    repeat: int | None = None,
    seed: int = 0,
    progress=None,
) -> tuple[CalibrationDatabase, list[MeasuredPoint]]:
    """Benchmark this machine and persist the calibration table.

    Returns the written database and the per-point measurement log.
    ``progress`` (e.g. ``print``) receives one line per measured point.
    """
    from repro.codegen.jit import native_available
    from repro.core.errors import BackendError, CodegenError, ReproError
    from repro.core.recurrence import Recurrence
    from repro.core.reference import resolve_dtype
    from repro.plr.planner import plan_execution
    from repro.plr.solver import PLRSolver
    from repro.tune.fingerprint import machine_fingerprint

    if db is None:
        db = CalibrationDatabase.load(path)
    # Whatever the old table's status, this sweep re-establishes it for
    # the current machine.
    db.fingerprint = machine_fingerprint()
    db.status, db.reason = "ok", None

    signatures = tuple(signatures or REPRESENTATIVE_SIGNATURES)
    sizes = tuple(sizes or (QUICK_SWEEP_SIZES if quick else FULL_SWEEP_SIZES))
    repeat = repeat if repeat is not None else (1 if quick else 3)
    say = progress or (lambda line: None)
    points: list[MeasuredPoint] = []
    have_native = native_available()

    for spec in signatures:
        recurrence = Recurrence.parse(spec)
        sig_class = signature_class(recurrence.signature)
        rng = np.random.default_rng(seed)
        for n in sizes:
            if recurrence.is_integer:
                values = rng.integers(-100, 100, size=n).astype(np.int32)
            else:
                values = rng.standard_normal(n).astype(np.float32)
            dtype = np.dtype(resolve_dtype(recurrence.signature, values.dtype))
            # The bucket *is* the measured size: sweep sizes are powers
            # of two, so the measurement sits exactly on its key.
            plan = plan_execution(recurrence.signature, n, policy=None)

            def emit(backend, workers, wall_s, recorded, note="", x=None):
                point = MeasuredPoint(
                    signature=spec,
                    sig_class=sig_class,
                    bucket=n,
                    dtype=dtype.name,
                    backend=backend,
                    workers=workers,
                    wall_s=wall_s,
                    recorded=recorded,
                    note=note,
                )
                points.append(point)
                say(
                    f"  {spec:<12} n=2^{n.bit_length() - 1} {dtype.name:<8} "
                    f"{backend:<8} w={workers} "
                    + (
                        f"{wall_s * 1e3:9.2f} ms"
                        if wall_s == wall_s and wall_s != float("inf")
                        else "   skipped"
                    )
                    + (f"  ({note})" if note else "")
                )
                if recorded:
                    db.record(
                        CalibrationEntry(
                            sig_class=sig_class,
                            bucket=n,
                            dtype=dtype.name,
                            backend=backend,
                            workers=workers,
                            wall_s=wall_s,
                            values_per_thread=x,
                            repeat=repeat,
                        )
                    )

            # -- vectorized numpy (the reference the others verify against)
            single = PLRSolver(recurrence)
            expected = single.solve(values, plan=plan, dtype=dtype)  # warm cache
            best_x = plan.values_per_thread
            single_s = _time_best(
                lambda: single.solve(values, plan=plan, dtype=dtype), repeat
            )
            if not quick:
                # Search x on the vectorized backend: the chunk shape is
                # the knob the paper defers to future work.
                for x in sorted({1, max(1, plan.values_per_thread // 2)}):
                    if x == plan.values_per_thread:
                        continue
                    chunk = plan.block_size * x
                    alt = replace(
                        plan,
                        values_per_thread=x,
                        chunk_size=chunk,
                        num_chunks=-(-n // chunk),
                    )
                    single.solve(values, plan=alt, dtype=dtype)  # warm
                    alt_s = _time_best(
                        lambda: single.solve(values, plan=alt, dtype=dtype),
                        repeat,
                    )
                    if alt_s < single_s:
                        single_s, best_x = alt_s, x
            emit("single", 1, single_s, recorded=True, x=best_x)

            # -- multicore process pool
            try:
                proc = PLRSolver(recurrence, backend="process")
                out = proc.solve(values, plan=plan, dtype=dtype)
                if not _verified(out, expected):
                    emit(
                        "process", 0, float("inf"), recorded=False,
                        note="output mismatch vs vectorized",
                    )
                else:
                    from repro.parallel.sharding import resolve_workers

                    workers = resolve_workers(None, plan.num_chunks)
                    proc_s = _time_best(
                        lambda: proc.solve(values, plan=plan, dtype=dtype),
                        repeat,
                    )
                    emit(
                        "process", workers, proc_s, recorded=True,
                        x=plan.values_per_thread,
                    )
            except ReproError as exc:
                emit(
                    "process", 0, float("inf"), recorded=False,
                    note=f"{type(exc).__name__}: {exc}",
                )

            # -- JIT-compiled native kernel
            if not have_native:
                emit(
                    "native", 1, float("inf"), recorded=False,
                    note="no C compiler on this machine",
                )
                continue
            try:
                native = PLRSolver(
                    recurrence, backend="native", native_fallback=False
                )
                out = native.solve(values, plan=plan, dtype=dtype)  # compile
                if not _verified(out, expected):
                    emit(
                        "native", 1, float("inf"), recorded=False,
                        note="output mismatch vs vectorized",
                    )
                else:
                    native_s = _time_best(
                        lambda: native.solve(values, plan=plan, dtype=dtype),
                        repeat,
                    )
                    emit(
                        "native", 1, native_s, recorded=True,
                        x=plan.values_per_thread,
                    )
            except (BackendError, CodegenError) as exc:
                emit(
                    "native", 1, float("inf"), recorded=False,
                    note=f"{type(exc).__name__}: {exc}",
                )

    db.save()
    return db, points
