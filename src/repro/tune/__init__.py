"""The closed-loop autotuner: measure the machine, remember, decide.

Every performance knob in this package used to be hand-set — chunk
size, worker count, vectorized-vs-process-vs-native backend — and the
committed bench trajectory shows how expensive guessing wrong is (the
native kernel is ~4.6x faster than vectorized numpy at n=2^22 but
loses below the dispatch crossover).  ``repro.tune`` closes the loop:

* :func:`~repro.tune.measure.run_tuning` benchmarks the actual machine
  (``plr tune`` / ``plr tune --quick``),
* :class:`~repro.tune.db.CalibrationDatabase` persists the results to
  a versioned JSON table keyed by (signature class, n bucket, dtype,
  backend, workers), invalidated when the machine fingerprint changes,
* :class:`~repro.tune.policy.TuningPolicy` turns the table into
  per-solve decisions that ``PLRSolver(backend="auto")``,
  ``BatchSolver``, the sharded worker pool, the planner, and the serve
  layer consult by default — with a typed-fallback guarantee: a cold,
  corrupt, or foreign table degrades to the static heuristics and the
  solve never fails for lack of tuning data.

See ``docs/tuning.md`` for the database layout and semantics.
"""

from repro.tune.db import (
    DB_VERSION,
    CalibrationDatabase,
    CalibrationEntry,
    default_db_path,
    n_bucket,
    signature_class,
)
from repro.tune.fingerprint import (
    fingerprint_digest,
    fingerprint_mismatches,
    machine_fingerprint,
)
from repro.tune.measure import run_tuning
from repro.tune.policy import (
    STATIC_NATIVE_CROSSOVER,
    TuningDecision,
    TuningPolicy,
    default_policy,
    reset_default_policy,
    set_default_policy,
)

__all__ = [
    "CalibrationDatabase",
    "CalibrationEntry",
    "DB_VERSION",
    "STATIC_NATIVE_CROSSOVER",
    "TuningDecision",
    "TuningPolicy",
    "default_db_path",
    "default_policy",
    "fingerprint_digest",
    "fingerprint_mismatches",
    "machine_fingerprint",
    "n_bucket",
    "reset_default_policy",
    "run_tuning",
    "set_default_policy",
    "signature_class",
]
