"""Turning calibration measurements into per-solve decisions.

:class:`TuningPolicy` answers three questions for the execution layers:

* which backend should ``backend="auto"`` dispatch to for this
  (signature, n, dtype)?  (:meth:`decide`)
* how many workers should a ``workers=None`` sharded solve spawn?
  (:meth:`recommend_workers`)
* is there a measured values-per-thread the planner should prefer over
  the paper's x heuristic?  (:meth:`recommend_values_per_thread`)

Every answer is a :class:`TuningDecision` whose ``source`` declares its
provenance: ``"measured"`` (this exact bucket was benchmarked),
``"interpolated"`` (the nearest measured bucket in log2 space steered
it — for sizes between measured points the nearer neighbour's winner is
the right side of the crossover), ``"static"`` (cold/absent/invalid
table: fall back to today's hand heuristics), or ``"error"`` (the
tuning layer itself misbehaved).  The contract with the solve path is
absolute: **decide() never raises** — a broken table, a broken policy,
or a broken lookup produce a static decision with a typed reason, and
the solve proceeds exactly as it would have before autotuning existed.

``tune.*`` counters on the global metrics registry track how solves are
being steered; the same numbers appear in the ``tuning`` block of the
server's ``{"op": "metrics"}`` reply.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from math import log2

from repro.tune.db import CalibrationDatabase, n_bucket, signature_class

__all__ = [
    "STATIC_NATIVE_CROSSOVER",
    "TuningDecision",
    "TuningPolicy",
    "default_policy",
    "set_default_policy",
    "reset_default_policy",
]

STATIC_NATIVE_CROSSOVER = 1 << 15
"""Static fallback's native threshold: with a compiler present and no
measurements, inputs at or above this length go native (dispatch and
ctypes overhead dominate below it, the compiled loop dominates above —
the committed bench trajectory puts the real crossover well under
2^22, and 2^15 is conservative on every machine measured so far)."""

_BACKEND_CHOICES = ("single", "process", "native")


@dataclass(frozen=True)
class TuningDecision:
    """One resolved choice, with the evidence trail.

    ``source`` is ``"measured"`` | ``"interpolated"`` | ``"static"`` |
    ``"error"``; ``reason`` is the human-readable story (which bucket
    matched, why the table was cold, which typed error degraded the
    lookup).  Recorded on
    :class:`~repro.plr.solver.SolveArtifacts` so a trace shows *why* a
    backend was picked, not just which.
    """

    backend: str
    source: str
    reason: str
    sig_class: str = ""
    bucket: int | None = None
    workers: int | None = None
    values_per_thread: int | None = None


class TuningPolicy:
    """Decision layer over one :class:`CalibrationDatabase`.

    The database loads lazily on first use and is then held for the
    policy's lifetime; long-lived processes that re-tune on disk can
    call :meth:`reload`.  All methods are thread-safe (the lazy load is
    locked; decisions read immutable entries).
    """

    def __init__(
        self,
        db: CalibrationDatabase | None = None,
        path=None,
        enabled: bool | None = None,
    ) -> None:
        self._db = db
        self._path = path
        self._lock = threading.Lock()
        if enabled is None:
            enabled = os.environ.get("PLR_TUNE_DISABLE", "") != "1"
        self.enabled = enabled

    # -- database access -------------------------------------------------
    @property
    def db(self) -> CalibrationDatabase:
        if self._db is None:
            with self._lock:
                if self._db is None:
                    self._db = CalibrationDatabase.load(self._path)
        return self._db

    def reload(self) -> CalibrationDatabase:
        """Drop the cached table and re-read it from disk."""
        with self._lock:
            self._db = None
        return self.db

    # -- internals -------------------------------------------------------
    def _count(self, name: str) -> None:
        from repro.obs.metrics import global_metrics

        global_metrics().counter(f"tune.{name}").inc()

    def _native_available(self) -> bool:
        from repro.codegen.jit import native_available

        return native_available()

    def _static(self, n: int, sig_class: str, reason: str) -> TuningDecision:
        """Today's hand heuristics, annotated with why we fell back."""
        if n >= STATIC_NATIVE_CROSSOVER and self._native_available():
            backend = "native"
            detail = (
                f"static heuristic: n={n} >= {STATIC_NATIVE_CROSSOVER} "
                "and a C compiler is available"
            )
        else:
            backend = "single"
            detail = "static heuristic: vectorized numpy default"
        return TuningDecision(
            backend=backend,
            source="static",
            reason=f"{reason}; {detail}",
            sig_class=sig_class,
        )

    def _usable(self, entries: list) -> list:
        """Entries this process can actually dispatch to right now."""
        native_ok = self._native_available()
        return [
            entry
            for entry in entries
            if entry.backend in _BACKEND_CHOICES
            and (entry.backend != "native" or native_ok)
        ]

    # -- the decisions ---------------------------------------------------
    def decide(self, signature, n: int, dtype) -> TuningDecision:
        """The backend ``backend="auto"`` should use.  Never raises."""
        import numpy as np

        try:
            sig_class = signature_class(signature)
        except Exception as exc:  # solve path: degrade, never raise
            self._count("errors")
            return self._static(
                n, "", f"tuning lookup failed ({type(exc).__name__}: {exc})"
            )
        try:
            self._count("lookups")
            if not self.enabled:
                self._count("disabled")
                return self._static(
                    n, sig_class, "tuning disabled (PLR_TUNE_DISABLE=1)"
                )
            dtype_name = np.dtype(dtype).name
            db = self.db
            if db.status != "ok":
                self._count("cold")
                return self._static(n, sig_class, db.reason or db.status)
            bucket = n_bucket(n)
            exact = self._usable(db.lookup(sig_class, bucket, dtype_name))
            if exact:
                best = min(exact, key=lambda e: e.wall_s)
                self._count("measured")
                return TuningDecision(
                    backend=best.backend,
                    source="measured",
                    reason=(
                        f"measured fastest at bucket {bucket} "
                        f"({best.wall_s * 1e3:.2f} ms, "
                        f"{len(exact)} backends compared)"
                    ),
                    sig_class=sig_class,
                    bucket=bucket,
                    workers=best.workers if best.backend == "process" else None,
                    values_per_thread=best.values_per_thread,
                )
            buckets = db.buckets(sig_class, dtype_name)
            nearest = self._nearest_bucket(buckets, bucket, sig_class, dtype_name)
            if nearest is not None:
                best = min(
                    self._usable(db.lookup(sig_class, nearest, dtype_name)),
                    key=lambda e: e.wall_s,
                )
                self._count("interpolated")
                return TuningDecision(
                    backend=best.backend,
                    source="interpolated",
                    reason=(
                        f"bucket {bucket} unmeasured; nearest measured "
                        f"bucket {nearest} (of {buckets}) picks the same "
                        "side of the crossover"
                    ),
                    sig_class=sig_class,
                    bucket=nearest,
                    workers=best.workers if best.backend == "process" else None,
                    values_per_thread=best.values_per_thread,
                )
            self._count("cold")
            return self._static(
                n,
                sig_class,
                f"no measurements for {sig_class}/{dtype_name} "
                f"(table has {len(db.entries)} entries)",
            )
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._count("errors")
            return self._static(
                n, sig_class, f"tuning lookup failed ({type(exc).__name__}: {exc})"
            )

    def _nearest_bucket(
        self, buckets: list[int], bucket: int, sig_class: str, dtype_name: str
    ) -> int | None:
        """The measured bucket nearest in log2 space with usable entries."""
        candidates = [
            b
            for b in buckets
            if self._usable(self.db.lookup(sig_class, b, dtype_name))
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda b: abs(log2(b) - log2(bucket)))

    def recommend_workers(self, n: int, signature=None, dtype=None) -> int | None:
        """Measured-best pool size for sharded solves of length n.

        None means "no measurement — use the machine default" (one
        worker per core, clamped to the work).  Never raises.
        """
        try:
            db = self.db
            if not self.enabled or db.status != "ok":
                return None
            process = [
                e for e in db.entries.values() if e.backend == "process"
            ]
            if signature is not None:
                try:
                    sig_class = signature_class(signature)
                    scoped = [e for e in process if e.sig_class == sig_class]
                    process = scoped or process
                except Exception:
                    pass
            if dtype is not None:
                import numpy as np

                dtype_name = np.dtype(dtype).name
                scoped = [e for e in process if e.dtype == dtype_name]
                process = scoped or process
            if not process:
                return None
            bucket = n_bucket(n)
            nearest = min(
                {e.bucket for e in process},
                key=lambda b: abs(log2(b) - log2(bucket)),
            )
            at_bucket = [e for e in process if e.bucket == nearest]
            return min(at_bucket, key=lambda e: e.wall_s).workers
        except Exception:
            return None

    def recommend_values_per_thread(self, signature, n: int, dtype) -> int | None:
        """Measured-best x for the planner, or None for the heuristic.

        Only exact-bucket measurements steer the plan: x shifts the
        chunk size, and extrapolating a chunk shape across buckets is
        exactly the guess the tuner exists to replace.  Never raises.
        """
        try:
            import numpy as np

            db = self.db
            if not self.enabled or db.status != "ok":
                return None
            best = db.best(
                signature_class(signature), n_bucket(n), np.dtype(dtype).name
            )
            return best.values_per_thread if best is not None else None
        except Exception:
            return None

    def describe(self) -> dict:
        """The ``tuning`` block for metrics replies and ``plr tune --show``."""
        from repro.obs.metrics import global_metrics

        counters = global_metrics().snapshot().get("counters", {})
        block = {
            "enabled": self.enabled,
            "database": self.db.describe(),
            "decisions": {
                key.split(".", 1)[1]: value
                for key, value in counters.items()
                if key.startswith("tune.")
            },
        }
        return block


# -- the process-wide default policy ------------------------------------
_DEFAULT_POLICY: TuningPolicy | None = None
_DEFAULT_LOCK = threading.Lock()


def default_policy() -> TuningPolicy:
    """The policy every ``backend="auto"`` solve consults by default.

    Created lazily over :func:`~repro.tune.db.default_db_path`; replace
    it with :func:`set_default_policy` (services that manage their own
    table) or :func:`reset_default_policy` (tests, or after re-tuning).
    """
    global _DEFAULT_POLICY
    if _DEFAULT_POLICY is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_POLICY is None:
                _DEFAULT_POLICY = TuningPolicy()
    return _DEFAULT_POLICY


def set_default_policy(policy: TuningPolicy | None) -> None:
    """Install ``policy`` as the process-wide default (None to reset)."""
    global _DEFAULT_POLICY
    with _DEFAULT_LOCK:
        _DEFAULT_POLICY = policy


def reset_default_policy() -> None:
    """Forget the cached default policy (it reloads lazily on next use)."""
    set_default_policy(None)
