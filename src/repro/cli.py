"""The ``plr`` command line: the paper's tool, plus the evaluation.

Subcommands:

* ``plr compile "(1: 2, -1)" --backend cuda`` — translate a signature
  into CUDA/C/Python source (the paper's PLR compiler);
* ``plr run "(1: 2, -1)" -n 1000000`` — compute a recurrence with the
  chosen backend and verify against the serial reference;
* ``plr info "(1: 2, -1)"`` — classification, execution plan, and the
  optimizer's factor-realization decisions;
* ``plr factors "(1: 2, -1)" -m 16`` — print the correction-factor
  lists (the n-nacci sequences of Section 2.1);
* ``plr figures [fig1 fig2 ...]`` — reproduce the paper's throughput
  figures on the modeled Titan X;
* ``plr tables`` — reproduce Tables 2 and 3;
* ``plr chaos`` — sweep random fault plans through the resilient
  solver and check "correct output or typed error, never silent
  corruption";
* ``plr trace`` — run a traced solve and write a Chrome trace-event
  JSON file (load it in Perfetto or chrome://tracing);
* ``plr profile`` — run the simulator under tracing and write the
  trace, the metrics snapshot, and an SVG timeline, plus a pipeline
  profile (look-back depths, stalls, critical path) to stdout.
* ``plr batch`` — solve a JSONL queue of mixed requests through the
  batched execution engine (grouping, vectorized passes, per-request
  failure isolation) and report group/padding statistics.
* ``plr bench`` — measure the serial reference vs. the vectorized
  solver vs. the multicore process backend and write a
  ``BENCH_parallel.json`` trajectory point; ``--compare BASELINE``
  turns it into a perf-regression gate (exit 1 past ``--tolerance``,
  ``--update-baseline`` to accept an intentional change).
* ``plr serve`` — run the long-lived JSONL solve server (adaptive
  micro-batching, deadlines, admission control, circuit breaker,
  graceful drain); ``--self-test`` runs a built-in client smoke test
  against an ephemeral instance and exits.
* ``plr slo`` — query a live server's SLO report (latency-objective
  attainment, error budget, multi-window burn rates).
* ``plr metrics`` — query a live server's metrics as JSON or
  Prometheus text exposition (``--format prometheus``).
* ``plr tune`` — benchmark this machine and write the persistent
  calibration table that ``backend="auto"`` consults (``--quick`` for
  a seconds-long sweep, ``--show`` to inspect the stored table).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

from repro.codegen.compiler import BACKENDS, PLRCompiler
from repro.core.errors import ReproError
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.validation import compare_results
from repro.eval.figures import figure10_throughputs, figure_definitions
from repro.eval.harness import run_experiment
from repro.eval.report import render_figure, render_figure10, render_table
from repro.eval.tables import table2_memory_usage, table3_l2_misses
from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import optimize_factors
from repro.plr.solver import PLRSolver

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="plr",
        description="Parallelized Linear Recurrences (ASPLOS 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile", help="translate a signature to code")
    compile_p.add_argument("signature", help='e.g. "(1: 2, -1)"')
    compile_p.add_argument("--backend", choices=BACKENDS, default="cuda")
    compile_p.add_argument("-n", type=int, default=1 << 24, help="planned input size")
    compile_p.add_argument("-o", "--output", help="write source here (default: stdout)")

    run_p = sub.add_parser("run", help="compute a recurrence and verify")
    run_p.add_argument("signature")
    run_p.add_argument("-n", type=int, default=1 << 20)
    run_p.add_argument(
        "--backend",
        choices=("solver", "native", "auto")
        + tuple(b for b in BACKENDS if b != "cuda"),
        default="solver",
        help="solver = numpy; native = JIT-compiled C kernel through the "
        "solver (numpy fallback if no compiler); auto = consult the "
        "calibration table from `plr tune`; c / python = run the "
        "emitted kernel directly",
    )
    run_p.add_argument("--seed", type=int, default=0)

    info_p = sub.add_parser("info", help="plan and optimization decisions")
    info_p.add_argument("signature")
    info_p.add_argument("-n", type=int, default=1 << 24)

    factors_p = sub.add_parser("factors", help="print correction factors")
    factors_p.add_argument("signature")
    factors_p.add_argument("-m", type=int, default=16, help="factors per carry")

    figures_p = sub.add_parser("figures", help="reproduce throughput figures")
    figures_p.add_argument(
        "ids", nargs="*", help="figure ids (default: all)", metavar="fig1"
    )

    sub.add_parser("tables", help="reproduce Tables 2 and 3")

    sim_p = sub.add_parser(
        "simulate", help="run the functional GPU simulator and report protocol stats"
    )
    sim_p.add_argument("signature")
    sim_p.add_argument("-n", type=int, default=2000)
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument(
        "--fault",
        default="none",
        help=(
            "inject a protocol fault to observe the failure mode: a legacy "
            "preset (none, flag_before_data, skip_local_flag, never_publish) "
            "or a fault kind (delay_flag, drop_local_flag, drop_global_flag, "
            "stale_carry, bit_flip_carry, abort_restart)"
        ),
    )

    chaos_p = sub.add_parser(
        "chaos",
        help="random fault plans vs the resilient solver (the resilience invariant)",
    )
    chaos_p.add_argument("--cases", type=int, default=200, help="sweep size")
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument("-n", type=int, default=160, help="input length per case")
    chaos_p.add_argument(
        "--recurrence",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to these Table 1 recurrences (repeatable; default: all)",
    )
    chaos_p.add_argument(
        "--mode",
        choices=("solver", "engine", "server"),
        default="solver",
        help="solver: fault plans vs the resilient solver; engine: a mixed "
        "pathological queue vs the batch engine; server: hostile clients "
        "vs a live serving instance (slow-loris, malformed frames, worker "
        "death, deadline storms, overload, disconnects, drain)",
    )
    chaos_p.add_argument(
        "-o", "--output", help="also write the report as JSON here"
    )

    sub.add_parser(
        "calibration", help="audit the cost model against the paper's anchors"
    )

    export_p = sub.add_parser(
        "export", help="write figures/tables as CSV + JSON for replotting"
    )
    export_p.add_argument("outdir", help="directory to write into")
    export_p.add_argument(
        "--svg", action="store_true", help="also render each figure as SVG"
    )

    trace_p = sub.add_parser(
        "trace", help="run a traced solve and write Chrome trace-event JSON"
    )
    trace_p.add_argument("signature")
    trace_p.add_argument("-n", "--n", type=int, default=1 << 16)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument(
        "--engine",
        choices=("sim", "solver"),
        default="sim",
        help="sim: the event-ordered GPU simulator (per-block protocol "
        "events); solver: the numpy solver (phase-level spans)",
    )
    trace_p.add_argument(
        "-o",
        "--output",
        default="plr-trace.json",
        help="trace file to write (default: plr-trace.json)",
    )

    profile_p = sub.add_parser(
        "profile",
        help="profile a simulated run: trace + metrics + SVG timeline + "
        "pipeline report",
    )
    profile_p.add_argument("signature")
    profile_p.add_argument("-n", "--n", type=int, default=1 << 16)
    profile_p.add_argument("--seed", type=int, default=0)
    profile_p.add_argument(
        "--outdir",
        default="plr-profile",
        help="directory for trace.json / metrics.json / timeline.svg / "
        "profile.json (default: plr-profile)",
    )

    batch_p = sub.add_parser(
        "batch",
        help="solve a JSONL request queue with the batched execution engine",
    )
    batch_p.add_argument(
        "input",
        help="JSONL file of requests ('-' for stdin); each line is "
        '{"id": ..., "signature": "(1: 2, -1)", "values": [...], '
        '"dtype": "int32"} with id and dtype optional',
    )
    batch_p.add_argument(
        "-o", "--output", help="write one JSON result per request here"
    )
    batch_p.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="cap requests per grouped pass (default: unbounded)",
    )
    batch_p.add_argument(
        "--min-bucket",
        type=int,
        default=64,
        help="smallest padded length for length bucketing (default: 64)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="benchmark serial vs vectorized vs multicore backends",
    )
    bench_p.add_argument(
        "signature", nargs="?", default="(1: 2, -1)", help='e.g. "(1: 2, -1)"'
    )
    bench_p.add_argument("-n", type=int, default=1 << 20, help="input length")
    bench_p.add_argument(
        "--dtype", default=None, help="working dtype (default: paper methodology)"
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-backend pool size (default: one per core)",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=3, help="timing repetitions; best is kept"
    )
    bench_p.add_argument("--seed", type=int, default=0)
    bench_p.add_argument(
        "-o",
        "--output",
        default="BENCH_parallel.json",
        help="JSON file to write (default: BENCH_parallel.json)",
    )
    bench_p.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="perf-regression gate: re-run the benchmark the baseline "
        "describes (same op/n/dtype/workers/repeat) and exit 1 if any "
        "(op, n, dtype, backend) row regressed beyond --tolerance",
    )
    bench_p.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed regression per row, percent (default: 10)",
    )
    bench_p.add_argument(
        "--metric",
        choices=("speedup", "wall_s"),
        default="speedup",
        help="gated metric: speedup (relative to same-run serial; robust "
        "to machine-wide noise, the default) or wall_s (absolute)",
    )
    bench_p.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --compare: write the current run over the baseline "
        "and exit 0 — the escape hatch for intentional perf changes",
    )

    slo_p = sub.add_parser(
        "slo",
        help="query a live server's SLO report (attainment, error "
        "budget, burn rates)",
    )
    slo_p.add_argument(
        "--connect",
        default="127.0.0.1:7171",
        metavar="HOST:PORT",
        help="server address (default: 127.0.0.1:7171)",
    )
    slo_p.add_argument(
        "--unix", default=None, metavar="PATH", help="connect over a Unix socket"
    )

    metrics_p = sub.add_parser(
        "metrics",
        help="query a live server's metrics (JSON or Prometheus text)",
    )
    metrics_p.add_argument(
        "--connect",
        default="127.0.0.1:7171",
        metavar="HOST:PORT",
        help="server address (default: 127.0.0.1:7171)",
    )
    metrics_p.add_argument(
        "--unix", default=None, metavar="PATH", help="connect over a Unix socket"
    )
    metrics_p.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="output format (default: json)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the JSONL solve server (micro-batching, deadlines, "
        "admission control, breaker, graceful drain)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=7171, help="TCP port (0 = ephemeral)"
    )
    serve_p.add_argument(
        "--unix", default=None, metavar="PATH", help="serve on a Unix socket instead"
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=256, help="intake queue bound"
    )
    serve_p.add_argument(
        "--max-batch", type=int, default=64, help="requests per grouped flush"
    )
    serve_p.add_argument(
        "--flush-ms", type=float, default=5.0, help="micro-batch window"
    )
    serve_p.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="deadline applied to requests that carry none",
    )
    serve_p.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive flush failures before the circuit breaker opens",
    )
    serve_p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="how long the open breaker fast-rejects before probing",
    )
    serve_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the final metrics snapshot here on drain",
    )
    serve_p.add_argument(
        "--backend",
        choices=("single", "native", "process", "auto"),
        default="single",
        help="solve backend for grouped flushes: single = vectorized "
        "numpy; native = JIT-compiled C kernels (numpy fallback when no "
        "compiler); process = multicore sharded pool; auto = whichever "
        "the machine's calibration table measured fastest (plr tune)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the process backend / native sharding",
    )
    serve_p.add_argument(
        "--self-test",
        action="store_true",
        help="start an ephemeral instance, run a client smoke test, exit",
    )

    tune_p = sub.add_parser(
        "tune",
        help="measure this machine and write the calibration table "
        'behind backend="auto"',
    )
    tune_p.add_argument(
        "--quick",
        action="store_true",
        help="seconds-long sweep (two buckets, one repetition, no x "
        "search) — enough to seed the table on first use or in CI",
    )
    tune_p.add_argument(
        "--show",
        action="store_true",
        help="print the stored table (status, fingerprint, entries) "
        "and exit without measuring; exit 1 if the table is not usable",
    )
    tune_p.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="calibration table to read/write (default: $PLR_TUNE_DB, "
        "else the user cache dir)",
    )
    tune_p.add_argument(
        "--signature",
        action="append",
        default=None,
        metavar="SIG",
        help="restrict the sweep to these signatures (repeatable; "
        "default: one representative per calibration class)",
    )
    tune_p.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="timing repetitions per point; best is kept (default: 3, "
        "or 1 with --quick)",
    )
    tune_p.add_argument("--seed", type=int, default=0)
    return parser


def _ensure_writable(path: str, kind: str = "output") -> None:
    """Fail fast — before any expensive work — if ``path`` can't be written.

    Every file-writing subcommand calls this up front so an unwritable
    output path is one typed line and exit 2, not a traceback after
    minutes of solving.
    """
    import os

    directory = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(directory):
        raise ReproError(
            f"cannot write {kind} {path!r}: "
            f"directory {directory!r} does not exist"
        )
    if not os.access(directory, os.W_OK | os.X_OK):
        raise ReproError(
            f"cannot write {kind} {path!r}: directory {directory!r} "
            "is not writable"
        )
    if os.path.isdir(path):
        raise ReproError(f"cannot write {kind} {path!r}: it is a directory")
    if os.path.exists(path) and not os.access(path, os.W_OK):
        raise ReproError(f"cannot write {kind} {path!r}: file is not writable")


def _ensure_writable_dir(path: str, kind: str = "output directory") -> None:
    """Like :func:`_ensure_writable` for a directory the command creates."""
    import os

    probe = os.path.abspath(path)
    if os.path.isdir(probe):
        if not os.access(probe, os.W_OK | os.X_OK):
            raise ReproError(f"cannot use {kind} {path!r}: not writable")
        return
    if os.path.exists(probe):
        raise ReproError(f"cannot use {kind} {path!r}: not a directory")
    # Walk up to the nearest existing ancestor; mkdir -p will create the
    # rest, so that ancestor is where writability is decided.
    parent = os.path.dirname(probe)
    while parent and not os.path.isdir(parent):
        if os.path.exists(parent):
            raise ReproError(
                f"cannot create {kind} {path!r}: {parent!r} is not a directory"
            )
        next_parent = os.path.dirname(parent)
        if next_parent == parent:
            break
        parent = next_parent
    if not os.path.isdir(parent) or not os.access(parent, os.W_OK | os.X_OK):
        raise ReproError(
            f"cannot create {kind} {path!r}: {parent!r} is not writable"
        )


def _cmd_compile(args: argparse.Namespace) -> int:
    if args.output:
        _ensure_writable(args.output)
    result = PLRCompiler().compile(args.signature, n=args.n, backend=args.backend)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.source)
        print(
            f"wrote {args.backend} source for {result.ir.recurrence.signature} "
            f"to {args.output} ({result.codegen_seconds * 1e3:.1f} ms)"
        )
    else:
        print(result.source)
    return 0


def _make_input(recurrence: Recurrence, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if recurrence.is_integer:
        return rng.integers(-100, 100, size=n).astype(np.int32)
    return rng.standard_normal(n).astype(np.float32)


def _cmd_run(args: argparse.Namespace) -> int:
    recurrence = Recurrence.parse(args.signature)
    values = _make_input(recurrence, args.n, args.seed)
    if args.backend in ("solver", "native", "auto"):
        solver = PLRSolver(
            recurrence,
            backend="single" if args.backend == "solver" else args.backend,
        )
        start = time.perf_counter()
        result = solver.solve(values)
        elapsed = time.perf_counter() - start
    else:
        compiled = PLRCompiler().compile(
            recurrence, n=args.n, backend=args.backend
        )
        start = time.perf_counter()
        result = compiled.kernel(values)
        elapsed = time.perf_counter() - start
    expected = serial_full(values, recurrence.signature)
    report = compare_results(result, expected)
    throughput = args.n / elapsed / 1e6
    print(
        f"{recurrence.signature} n={args.n} backend={args.backend}: "
        f"{elapsed * 1e3:.1f} ms ({throughput:.1f} M words/s) — {report.describe()}"
    )
    return 0 if report.ok else 1


def _cmd_info(args: argparse.Namespace) -> int:
    recurrence = Recurrence.parse(args.signature)
    compiler = PLRCompiler()
    ir = compiler.build_ir(recurrence, n=args.n)
    cls = recurrence.classification
    print(f"signature      {recurrence.signature}")
    print(f"class          {cls.kind.value} (order {cls.order})")
    print(f"dtype          {ir.dtype}")
    print(f"plan           {ir.plan.describe()}")
    print(f"factor table   {ir.table.describe()}")
    for decision in ir.factor_plan.decisions:
        extras = []
        if decision.constant is not None:
            extras.append(f"constant={decision.constant}")
        if decision.period is not None:
            extras.append(f"period={decision.period}")
        if decision.cutoff is not None:
            extras.append(f"cutoff={decision.cutoff}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        print(
            f"carry {decision.carry_index}        "
            f"{decision.realization.value}{suffix}"
        )
    from repro.plr.solver import factor_cache_stats

    stats = factor_cache_stats()
    print(
        f"factor cache   {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['size']}/{stats['max_size']} tables resident"
    )
    return 0


def _cmd_factors(args: argparse.Namespace) -> int:
    recurrence = Recurrence.parse(args.signature)
    dtype = np.int64 if recurrence.is_integer else np.float64
    table = CorrectionFactorTable.build(
        recurrence.recursive_signature, args.m, dtype
    )
    plan = optimize_factors(table)
    for j in range(table.order):
        values = ", ".join(str(v) for v in table.row(j))
        print(f"carry {j} (w[m-1-{j}]): {values}")
    print(f"analysis: {table.describe()}")
    print(
        "realizations: "
        + ", ".join(d.realization.value for d in plan.decisions)
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    defs = figure_definitions()
    ids = args.ids or sorted(defs) + ["fig10"]
    for fid in ids:
        if fid == "fig10":
            print(render_figure10(figure10_throughputs()))
        elif fid in defs:
            print(render_figure(run_experiment(defs[fid], validate=False)))
        else:
            raise ReproError(f"unknown figure {fid!r}; known: {sorted(defs)} + fig10")
        print()
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    print(render_table(table2_memory_usage(), "Table 2: Total GPU memory usage (MB)"))
    print()
    print(render_table(table3_l2_misses(), "Table 3: L2 read misses (MB)"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.errors import SimulationError
    from repro.gpusim.executor import SimulatedPLR, coerce_fault_plan
    from repro.gpusim.spec import MachineSpec

    recurrence = Recurrence.parse(args.signature)
    machine = MachineSpec.small_test_gpu()
    values = _make_input(recurrence, args.n, args.seed)
    sim = SimulatedPLR(
        recurrence,
        machine,
        seed=args.seed,
        fault=coerce_fault_plan(args.fault),
        deadlock_rounds=200,
    )
    try:
        result = sim.run(values)
    except SimulationError as exc:
        print(f"simulation aborted: {exc}")
        return 1
    expected = serial_full(values, recurrence.signature)
    report = compare_results(result.output, expected)
    distances = result.lookback_distances
    print(f"machine        {machine.name}")
    print(f"blocks run     {len(result.block_stats)}")
    print(
        f"schedule       {result.schedule_steps} steps, "
        f"{result.schedule_wait_steps} busy-wait"
    )
    if distances:
        print(
            f"look-back      min={min(distances)} max={max(distances)} "
            f"mean={sum(distances) / len(distances):.2f}"
        )
    stats = result.block_stats[0]
    print(
        f"block 0 comms  {stats.shuffles} shuffles, "
        f"{stats.shared_reads + stats.shared_writes} shared-memory ops, "
        f"{stats.barriers} barriers"
    )
    if result.fault_events:
        print(
            f"faults fired   {len(result.fault_events)} "
            f"({', '.join(sorted({e.kind.value for e in result.fault_events}))})"
        )
    if result.restarts:
        print(f"restarts       {result.restarts} aborted blocks reissued")
    print(f"result         {report.describe()}")
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    if args.output:
        _ensure_writable(args.output)
    if args.mode == "engine":
        from repro.resilience.chaos import run_engine_chaos

        report = run_engine_chaos(seed=args.seed, requests=args.cases)
    elif args.mode == "server":
        from repro.resilience.chaos import run_server_chaos

        # The server matrix runs several phases per "case"; scale the
        # per-phase request count down so the default --cases budget
        # means roughly the same wall time as the solver sweep.
        report = run_server_chaos(seed=args.seed, requests=max(8, args.cases // 8))
    else:
        from repro.resilience.chaos import run_chaos

        report = run_chaos(
            cases=args.cases,
            seed=args.seed,
            n=args.n,
            recurrences=args.recurrence,
        )
    print(report.describe())
    if args.output:
        payload = {
            "mode": args.mode,
            "seed": args.seed,
            "ok": report.ok,
            "checks": len(report.outcomes),
            "counts": report.counts(),
            "violations": [
                line.strip()
                for line in report.describe().splitlines()
                if "VIOLATION" in line
            ],
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=1)
        print(f"wrote {args.output}")
    return 0 if report.ok else 1


def _cmd_calibration(args: argparse.Namespace) -> int:
    from repro.eval.calibration import calibration_report, render_calibration

    anchors = calibration_report()
    print(render_calibration(anchors))
    return 0 if all(a.ok for a in anchors) else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.eval.export import export_everything

    _ensure_writable_dir(args.outdir)
    written = export_everything(args.outdir, svg=args.svg)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.exporters import write_chrome_trace
    from repro.obs.tracer import Tracer

    _ensure_writable(args.output, kind="trace file")
    recurrence = Recurrence.parse(args.signature)
    values = _make_input(recurrence, args.n, args.seed)
    tracer = Tracer()
    if args.engine == "sim":
        from repro.gpusim.executor import SimulatedPLR
        from repro.gpusim.spec import MachineSpec

        sim = SimulatedPLR(
            recurrence,
            MachineSpec.small_test_gpu(),
            seed=args.seed,
            tracer=tracer,
        )
        sim.run(values)
    else:
        PLRSolver(recurrence, tracer=tracer).solve(values)
    path = write_chrome_trace(tracer, args.output)
    print(
        f"wrote {len(tracer.events)} events to {path} "
        "(open in https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.exporters import (
        timeline_svg,
        write_chrome_trace,
        write_metrics_json,
    )
    from repro.obs.profile import profile_simulation, write_profile_json

    _ensure_writable_dir(args.outdir)
    profile, tracer, metrics, _ = profile_simulation(
        args.signature, args.n, seed=args.seed
    )
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written = [
        write_chrome_trace(tracer, outdir / "trace.json"),
        write_metrics_json(metrics, outdir / "metrics.json"),
        write_profile_json(profile, outdir / "profile.json"),
    ]
    svg_path = outdir / "timeline.svg"
    svg_path.write_text(
        timeline_svg(tracer, title=f"{args.signature} n={args.n} seed={args.seed}")
    )
    written.append(svg_path)
    print(profile.describe())
    for path in written:
        print(f"wrote {path}")
    return 0


def _parse_batch_line(source: str, lineno: int, line: str):
    import json

    from repro.batch import BatchRequest

    try:
        spec = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"{source}:{lineno}: invalid JSON: {exc}") from exc
    if not isinstance(spec, dict):
        raise ReproError(f"{source}:{lineno}: each line must be a JSON object")
    missing = [key for key in ("signature", "values") if key not in spec]
    if missing:
        raise ReproError(
            f"{source}:{lineno}: request is missing {', '.join(missing)}"
        )
    dtype = spec.get("dtype")
    try:
        return BatchRequest(
            spec["signature"],
            np.asarray(spec["values"]),
            dtype=np.dtype(dtype) if dtype is not None else None,
            tag=spec.get("id", lineno),
        )
    except ReproError as exc:
        raise ReproError(f"{source}:{lineno}: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ReproError(f"{source}:{lineno}: bad request: {exc}") from exc


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.batch import BatchEngine, BatchPlanner

    if args.output:
        _ensure_writable(args.output)
    if args.input == "-":
        source, text = "<stdin>", sys.stdin.read()
    else:
        source = args.input
        with open(args.input) as handle:
            text = handle.read()
    requests = [
        _parse_batch_line(source, lineno, line)
        for lineno, line in enumerate(text.splitlines(), 1)
        if line.strip()
    ]
    engine = BatchEngine(
        planner=BatchPlanner(min_bucket=args.min_bucket, max_batch=args.max_batch)
    )
    start = time.perf_counter()
    outcomes = engine.execute(requests)
    elapsed = time.perf_counter() - start

    results = []
    for outcome in outcomes:
        record = {"id": outcome.tag, "ok": outcome.ok, "engine": outcome.engine}
        if outcome.ok:
            record["output"] = np.asarray(outcome.output).tolist()
        else:
            record["error"] = (
                f"{type(outcome.error).__name__}: {outcome.error}"
            )
        if outcome.degradations:
            record["degradations"] = list(outcome.degradations)
        results.append(record)
    if args.output:
        with open(args.output, "w") as handle:
            for record in results:
                handle.write(json.dumps(record) + "\n")
        print(f"wrote {len(results)} results to {args.output}")
    for record in results:
        status = "ok" if record["ok"] else f"FAILED ({record['error']})"
        extra = (
            f" [{'; '.join(record['degradations'])}]"
            if record.get("degradations")
            else ""
        )
        print(f"  {record['id']}: {status} via {record['engine']}{extra}")

    counters = engine.metrics.snapshot()["counters"]
    failed = sum(1 for record in results if not record["ok"])
    print(
        f"{len(results)} requests in {counters.get('batch.groups', 0):g} groups "
        f"({counters.get('batch.empty_requests', 0):g} empty, "
        f"{counters.get('batch.isolated', 0):g} isolated, "
        f"{counters.get('batch.padded_values', 0):g} padded values) "
        f"in {elapsed * 1e3:.1f} ms"
    )
    return 1 if failed else 0


def _time_best(fn, repeat: int) -> tuple[float, object]:
    """Best-of-``repeat`` wall time for ``fn()`` and its last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench_payload(
    signature: str,
    n: int,
    dtype: np.dtype | None,
    workers: int | None,
    repeat: int,
    seed: int,
) -> dict:
    """One full bench run: serial vs vectorized vs process vs native.

    Every non-serial backend is verified against the serial reference.
    The native row is included only when a C compiler is available; its
    kernel is compiled by an untimed warmup solve so the timed repeats
    measure execution, not the one-off JIT cost.

    The payload records provenance a cross-machine reader needs: the
    machine fingerprint (so ``--compare`` can declare foreign
    baselines), the *requested* worker count at the top level (None =
    resolve per machine), and the *effective* worker count per row —
    the process row's pool size is resolved against this machine and
    this plan, not copied from the flag.
    """
    from repro.core.errors import BackendError, CodegenError
    from repro.parallel.backend import _tuned_workers
    from repro.parallel.sharding import resolve_workers
    from repro.plr.planner import plan_execution
    from repro.tune.fingerprint import machine_fingerprint

    recurrence = Recurrence.parse(signature)
    values = _make_input(recurrence, n, seed)

    serial_s, expected = _time_best(
        lambda: serial_full(values, recurrence.signature, dtype=dtype), repeat
    )

    vec_solver = PLRSolver(recurrence)
    vec_solver.solve(values, dtype=dtype)  # warm the factor-table cache
    vec_s, vec_out = _time_best(
        lambda: vec_solver.solve(values, dtype=dtype), repeat
    )

    proc_solver = PLRSolver(recurrence, backend="process", workers=workers)
    proc_s, proc_out = _time_best(
        lambda: proc_solver.solve(values, dtype=dtype), repeat
    )
    # The pool size the process row actually ran with: the request (or,
    # when unset, the calibration table's recommendation) clamped to the
    # plan's chunk count — mirroring solve_sharded exactly.
    plan = plan_execution(recurrence.signature, n, dtype=dtype)
    proc_workers = resolve_workers(
        workers if workers is not None else _tuned_workers(plan.padded_n),
        plan.num_chunks,
    )

    native_s = None
    native_error = None
    try:
        native_solver = PLRSolver(
            recurrence, backend="native", native_fallback=False
        )
        native_solver.solve(values, dtype=dtype)  # compile outside the timer
        native_s, native_out = _time_best(
            lambda: native_solver.solve(values, dtype=dtype), repeat
        )
    except (BackendError, CodegenError) as exc:
        native_error = f"{type(exc).__name__}: {exc}"

    checked = [("vectorized", vec_out), ("process", proc_out)]
    if native_s is not None:
        checked.append(("native", native_out))
    for name, out in checked:
        outcome = compare_results(out, expected)
        if not outcome.ok:
            raise ReproError(f"{name} backend mismatch: {outcome.describe()}")

    timings = [
        ("serial", serial_s, 1),
        ("vectorized", vec_s, 1),
        ("process", proc_s, proc_workers),
    ]
    if native_s is not None:
        timings.append(("native", native_s, 1))
    dtype_name = np.dtype(vec_out.dtype).name
    records = [
        {
            "op": str(recurrence.signature),
            "n": n,
            "dtype": dtype_name,
            "backend": backend,
            "workers": row_workers,
            "wall_s": wall,
            "speedup": serial_s / wall if wall > 0 else float("inf"),
        }
        for backend, wall, row_workers in timings
    ]
    payload = {
        "workers": workers,
        "repeat": repeat,
        "fingerprint": machine_fingerprint(),
        "results": records,
    }
    if native_error is not None:
        payload["native_skipped"] = native_error
    return payload


def _print_bench(payload: dict) -> None:
    for record in payload["results"]:
        print(
            f"{record['backend']:<11} {record['wall_s'] * 1e3:9.1f} ms  "
            f"speedup x{record['speedup']:.2f}"
        )


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.eval.benchgate import (
        compare_payloads,
        load_baseline,
        render_report,
    )

    if args.compare:
        # Gate mode: the baseline defines the run — same op, n, dtype,
        # workers, repeat — so rows compare like for like.
        baseline = load_baseline(args.compare)
        stored_fp = baseline.get("fingerprint")
        if isinstance(stored_fp, dict):
            from repro.tune.fingerprint import (
                fingerprint_mismatches,
                machine_fingerprint,
            )

            mismatches = fingerprint_mismatches(stored_fp, machine_fingerprint())
            if mismatches:
                print(
                    "warning: baseline was measured on a different machine "
                    f"({'; '.join(mismatches)}); cross-machine timings gate "
                    "on speedup ratios, not absolute walls",
                    file=sys.stderr,
                )
        if args.update_baseline:
            _ensure_writable(args.compare, kind="baseline")
        first = baseline["results"][0]
        current = _bench_payload(
            signature=first["op"],
            n=int(first["n"]),
            dtype=np.dtype(first["dtype"]),
            workers=baseline.get("workers"),
            repeat=int(baseline.get("repeat", args.repeat)),
            seed=args.seed,
        )
        _print_bench(current)
        report = compare_payloads(
            baseline,
            current,
            tolerance_pct=args.tolerance,
            metric=args.metric,
            # A baseline native row must not fail the gate on machines
            # that cannot compile it — the skip reason is declared.
            skipped_backends={"native": current["native_skipped"]}
            if "native_skipped" in current
            else None,
        )
        print(render_report(report))
        if args.update_baseline:
            with open(args.compare, "w") as handle:
                json.dump(current, handle, indent=1)
            print(f"updated baseline {args.compare}")
            return 0
        return 0 if report.ok else 1

    _ensure_writable(args.output)
    payload = _bench_payload(
        signature=args.signature,
        n=args.n,
        dtype=np.dtype(args.dtype) if args.dtype else None,
        workers=args.workers,
        repeat=args.repeat,
        seed=args.seed,
    )
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1)
    _print_bench(payload)
    print(f"wrote {args.output}")
    return 0


def _control_address(args: argparse.Namespace):
    """The server address from --unix / --connect (HOST:PORT)."""
    if args.unix:
        return args.unix
    host, sep, port = args.connect.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(
            f"--connect must be HOST:PORT, got {args.connect!r}"
        )
    return (host, int(port))


async def _control_request(address, frame: dict) -> dict:
    """One control round-trip against a live server."""
    from repro.serve import ServeClient

    try:
        client = await ServeClient.connect(address)
    except (ConnectionError, OSError) as exc:
        where = address if isinstance(address, str) else f"{address[0]}:{address[1]}"
        raise ReproError(f"cannot connect to server at {where}: {exc}") from exc
    try:
        reply = await client.request(frame, timeout=10)
    finally:
        await client.close()
    if reply is None:
        raise ReproError("server closed the connection without replying")
    if not reply.get("ok"):
        raise ReproError(
            f"server refused {frame.get('op')!r}: "
            f"{reply.get('error')}: {reply.get('detail')}"
        )
    return reply


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    reply = asyncio.run(_control_request(_control_address(args), {"op": "slo"}))
    report = reply["slo"]
    objective = report["objective"]
    print(
        f"objective: {objective['target']:.2%} of replies ok and "
        f"<= {objective['latency_ms']:g} ms"
    )
    budget = report["error_budget"]
    print(
        f"lifetime:  {report['good']}/{report['total']} good "
        f"(attainment {report['attainment']:.4%}), error budget "
        f"{budget['remaining_fraction']:.1%} remaining"
    )
    for window in report["windows"]:
        print(
            f"  {window['window_s']:g}s window: {window['good']}/{window['total']} "
            f"good, attainment {window['attainment']:.4%}, "
            f"burn rate x{window['burn_rate']:.2f}"
        )
    print(json.dumps(report, indent=1))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    frame: dict = {"op": "metrics"}
    if args.format == "prometheus":
        frame["format"] = "prometheus"
    reply = asyncio.run(_control_request(_control_address(args), frame))
    if args.format == "prometheus":
        print(reply["body"], end="")
    else:
        print(json.dumps({k: reply[k] for k in ("metrics", "serving")}, indent=1))
    return 0


def _serve_config(args: argparse.Namespace, port: int | None = None):
    from repro.serve import ServeConfig

    return ServeConfig(
        host=args.host,
        port=args.port if port is None else port,
        unix_path=args.unix,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        flush_ms=args.flush_ms,
        default_deadline_ms=args.default_deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        metrics_path=args.metrics_out,
        backend=args.backend,
        workers=args.workers,
    )


async def _serve_self_test(config) -> int:
    """Smoke-test a live ephemeral server with a real client.

    One pass over the contract: ping, a verified solve, a typed
    ProtocolError for garbage, a typed DeadlineExceeded for an
    already-expired deadline, a metrics reply, and a graceful drain.
    """
    from repro.serve import PLRServer, ServeClient

    server = PLRServer(config)
    await server.start()
    checks: list[tuple[str, bool, str]] = []
    try:
        client = await ServeClient.connect(server.address)
        reply = await client.ping(timeout=10)
        checks.append(("ping", bool(reply and reply.get("ok")), repr(reply)))

        values = list(range(1, 33))
        reply = await client.solve("(1: 2, -1)", values, request_id=1, timeout=30)
        expected = serial_full(
            np.asarray(values), Recurrence.parse("(1: 2, -1)").signature
        )
        checks.append(
            (
                "solve (1: 2, -1) n=32",
                bool(reply and reply.get("ok"))
                and reply["output"] == expected.tolist(),
                repr(reply)[:120],
            )
        )

        reply = await client.request({"values": [1, 2]}, timeout=10)
        checks.append(
            (
                "malformed frame -> typed ProtocolError",
                bool(reply) and reply.get("error") == "ProtocolError",
                repr(reply)[:120],
            )
        )

        reply = await client.solve(
            "(1: 1)", [1, 2, 3], deadline_ms=0, request_id=2, timeout=10
        )
        checks.append(
            (
                "expired deadline -> typed DeadlineExceeded",
                bool(reply) and reply.get("error") == "DeadlineExceeded",
                repr(reply)[:120],
            )
        )

        reply = await client.metrics(timeout=10)
        checks.append(
            (
                "metrics reply carries serving stats",
                bool(reply) and "serving" in reply and "metrics" in reply,
                repr(reply)[:120],
            )
        )

        reply = await client.slo(timeout=10)
        slo = reply.get("slo") if reply else None
        checks.append(
            (
                "slo reply carries attainment + burn windows",
                bool(reply and reply.get("ok"))
                and isinstance(slo, dict)
                and slo.get("total", 0) >= 1
                and "error_budget" in slo
                and "windows" in slo,
                repr(reply)[:120],
            )
        )

        reply = await client.drain(timeout=10)
        await asyncio.wait_for(server._drained.wait(), timeout=30)
        checks.append(
            (
                "graceful drain + final snapshot",
                bool(reply and reply.get("ok"))
                and server.final_snapshot is not None,
                repr(reply)[:120],
            )
        )
        await client.close()
    finally:
        await server.aclose()
    failed = 0
    for name, ok, detail in checks:
        print(f"  {'ok  ' if ok else 'FAIL'} {name}" + ("" if ok else f": {detail}"))
        failed += 0 if ok else 1
    print(
        f"self-test: {len(checks) - failed}/{len(checks)} checks passed"
        + ("" if not failed else " — FAILED")
    )
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.metrics_out:
        _ensure_writable(args.metrics_out, kind="metrics snapshot")
    if args.self_test:
        # Ephemeral port (or a suffixed Unix path) so a self-test never
        # collides with a real instance.
        if args.unix:
            args.unix = f"{args.unix}.self-test"
        return asyncio.run(_serve_self_test(_serve_config(args, port=0)))

    async def _main() -> dict:
        from repro.serve import PLRServer

        server = PLRServer(_serve_config(args))
        await server.start()
        address = server.address
        where = address if isinstance(address, str) else f"{address[0]}:{address[1]}"
        print(
            f"serving on {where} (JSONL: solve frames + ping/metrics/drain; "
            "SIGTERM drains gracefully)"
        )
        return await server.serve_forever()

    snapshot = asyncio.run(_main())
    counters = snapshot.get("counters", {})
    print(
        "drained: "
        f"{counters.get('serve.admitted', 0):g} admitted, "
        f"{counters.get('serve.flushes', 0):g} flushes, "
        f"{counters.get('serve.shed_overload', 0):g} shed on overload, "
        f"{counters.get('serve.shed_draining', 0):g} shed draining, "
        f"{counters.get('serve.protocol_errors', 0):g} protocol errors"
    )
    if args.metrics_out:
        print(f"wrote {args.metrics_out}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tune import CalibrationDatabase, default_db_path, run_tuning
    from repro.tune.fingerprint import fingerprint_digest

    path = args.db or default_db_path()
    if args.show:
        db = CalibrationDatabase.load(path)
        info = db.describe()
        status = info["status"] + (
            f" ({info['reason']})" if info["reason"] else ""
        )
        print(f"table    {info['path']}")
        print(f"status   {status}")
        print(f"machine  {info['fingerprint']}")
        if db.entries:
            print(
                f"{'class':<20} {'bucket':>9} {'dtype':<8} {'backend':<8} "
                f"{'workers':>7} {'ms':>10}"
            )
            for entry in sorted(db.entries.values(), key=lambda e: e.key):
                best = db.best(entry.sig_class, entry.bucket, entry.dtype)
                marker = "  <- fastest" if best is entry else ""
                print(
                    f"{entry.sig_class:<20} {entry.bucket:>9} "
                    f"{entry.dtype:<8} {entry.backend:<8} "
                    f"{entry.workers:>7} {entry.wall_s * 1e3:>10.3f}{marker}"
                )
        return 0 if db.status == "ok" else 1

    if args.signature:
        for spec in args.signature:  # fail fast before minutes of timing
            Recurrence.parse(spec)
    mode = "quick" if args.quick else "full"
    print(f"calibrating {path} ({mode} sweep):")
    db, points = run_tuning(
        path=path,
        signatures=args.signature,
        quick=args.quick,
        repeat=args.repeat,
        seed=args.seed,
        progress=print,
    )
    recorded = sum(1 for point in points if point.recorded)
    skipped = len(points) - recorded
    print(
        f"recorded {recorded} measurements"
        + (f" ({skipped} skipped)" if skipped else "")
        + f" for machine {fingerprint_digest(db.fingerprint)} -> {db.path}"
    )
    # A long-lived process that ran `plr tune` programmatically should
    # see the new table without restarting.
    from repro.tune.policy import reset_default_policy

    reset_default_policy()
    return 0


_COMMANDS = {
    "compile": _cmd_compile,
    "run": _cmd_run,
    "info": _cmd_info,
    "factors": _cmd_factors,
    "figures": _cmd_figures,
    "tables": _cmd_tables,
    "simulate": _cmd_simulate,
    "chaos": _cmd_chaos,
    "calibration": _cmd_calibration,
    "export": _cmd_export,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "batch": _cmd_batch,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "slo": _cmd_slo,
    "metrics": _cmd_metrics,
    "tune": _cmd_tune,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # An unreadable input file or unwritable output path is a usage
        # problem, not a bug: one line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
