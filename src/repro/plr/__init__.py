"""The PLR algorithm: correction factors, Phase 1, Phase 2, optimizer.

This package is the paper's primary contribution in executable form.
The layering is strict: :mod:`repro.plr` depends on :mod:`repro.core`
(signatures and n-nacci math) and on :mod:`repro.gpusim.spec` (machine
constants for planning), but never on the code generators or baselines.
"""

from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import (
    FactorDecision,
    FactorPlan,
    FactorRealization,
    OptimizationConfig,
    optimize_factors,
)
from repro.plr.nd import filter2d, filter_axis, solve_batch, summed_area_table
from repro.plr.phase1 import phase1
from repro.plr.phase2 import lookback_combine, phase2, transition_matrix
from repro.plr.planner import ExecutionPlan, plan_execution, tuned_plan
from repro.plr.semiring import (
    BooleanSemiring,
    MaxPlus,
    MinPlus,
    Semiring,
    semiring_serial,
    semiring_solve,
)
from repro.plr.solver import PLRSolver, SolveArtifacts, clear_factor_cache, plr_solve
from repro.plr.streaming import BatchStreamingSolver, StreamingSolver, StreamState

__all__ = [
    "BatchStreamingSolver",
    "BooleanSemiring",
    "CorrectionFactorTable",
    "ExecutionPlan",
    "FactorDecision",
    "FactorPlan",
    "FactorRealization",
    "MaxPlus",
    "MinPlus",
    "OptimizationConfig",
    "PLRSolver",
    "Semiring",
    "SolveArtifacts",
    "StreamState",
    "StreamingSolver",
    "clear_factor_cache",
    "filter2d",
    "filter_axis",
    "lookback_combine",
    "optimize_factors",
    "phase1",
    "phase2",
    "plan_execution",
    "plr_solve",
    "semiring_serial",
    "semiring_solve",
    "solve_batch",
    "summed_area_table",
    "transition_matrix",
    "tuned_plan",
]
