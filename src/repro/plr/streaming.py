"""Streaming recurrence evaluation: carry state across block boundaries.

The paper's kernel processes one resident array.  Real DSP and
data-pipeline users rarely have that luxury: audio arrives in buffers,
logs in batches, and the recurrence must continue *seamlessly* across
them.  The algebra PLR already uses makes this nearly free — a block
boundary is just another chunk border, so the state to carry is the
last k outputs, and the incoming state corrects a new block through
the same precomputed factor table.

:class:`StreamingSolver` wraps :class:`~repro.plr.solver.PLRSolver`
with exactly that:

* ``push(block)`` computes the recurrence over the next block as if it
  were appended to everything pushed before, in O(block) work;
* the FIR map stage is also made seamless by retaining the last p
  *inputs* across the boundary;
* ``state`` exposes (and ``load_state`` restores) the k-output /
  p-input boundary state, so pipelines can checkpoint and resume.

Equivalence with the one-shot solver over the concatenated input is a
tested invariant for every Table 1 recurrence and random block splits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import StateError
from repro.core.recurrence import Recurrence
from repro.core.signature import Signature
from repro.plr.factors import CorrectionFactorTable
from repro.plr.solver import PLRSolver, cached_factor_table

__all__ = ["StreamState", "StreamingSolver", "BatchStreamingSolver"]


@dataclass
class StreamState:
    """The boundary state between two streamed blocks.

    Attributes
    ----------
    outputs:
        The last k outputs, most recent first — the recurrence carries.
    inputs:
        The last p raw inputs, most recent first — needed by the FIR
        map stage of signatures with feed-forward history.
    position:
        How many values have been consumed so far (for bookkeeping).
    """

    outputs: np.ndarray
    inputs: np.ndarray
    position: int = 0

    def copy(self) -> "StreamState":
        """An independent deep copy; mutating one never affects the other.

        States deserialized from checkpoints may carry plain sequences
        instead of arrays, so the fields are materialized as fresh numpy
        arrays rather than trusting a ``.copy()`` method to exist.
        """
        return StreamState(
            np.array(self.outputs, copy=True),
            np.array(self.inputs, copy=True),
            int(self.position),
        )


class StreamingSolver:
    """Evaluate a recurrence over an unbounded stream, block by block.

    Parameters
    ----------
    recurrence:
        The recurrence (or signature string) to stream.
    dtype:
        Computation dtype; defaults to the paper's convention (int32
        for integer signatures, float32 otherwise).

    Example
    -------
    >>> import numpy as np
    >>> stream = StreamingSolver("(1: 1)")
    >>> stream.push(np.array([1, 2, 3], dtype=np.int32)).tolist()
    [1, 3, 6]
    >>> stream.push(np.array([4], dtype=np.int32)).tolist()
    [10]
    """

    def __init__(
        self,
        recurrence: Recurrence | Signature | str,
        dtype: np.dtype | type | None = None,
    ) -> None:
        if isinstance(recurrence, str):
            recurrence = Recurrence.parse(recurrence)
        elif isinstance(recurrence, Signature):
            recurrence = Recurrence(recurrence)
        self.recurrence = recurrence
        if dtype is None:
            dtype = np.int32 if recurrence.is_integer else np.float32
        self.dtype = np.dtype(dtype)
        # The streaming wrapper owns the map stage (it needs input
        # history across boundaries), so the inner solver gets only the
        # pure-recursive part — otherwise the FIR stage would run twice.
        self._solver = PLRSolver(Recurrence(recurrence.recursive_signature))
        self._order = recurrence.order
        self._fir_order = recurrence.signature.fir_order
        self._state = StreamState(
            outputs=np.zeros(self._order, dtype=self.dtype),
            inputs=np.zeros(max(self._fir_order, 0), dtype=self.dtype),
        )

    # ------------------------------------------------------------------
    @property
    def state(self) -> StreamState:
        """A snapshot of the boundary state (copy; safe to stash)."""
        return self._state.copy()

    def load_state(self, state: StreamState) -> None:
        """Resume from a previously captured :attr:`state`.

        The state usually comes from the outside world (a checkpoint
        file, another process), so it is validated before it can poison
        every subsequent block: wrong shapes, dtypes that cannot be
        cast safely, non-finite carries, and negative positions all
        raise :class:`~repro.core.errors.StateError` (a
        :class:`ValueError` subclass).
        """
        outputs = np.asarray(state.outputs)
        inputs = np.asarray(state.inputs)
        if outputs.ndim != 1 or outputs.shape != (self._order,):
            raise StateError(
                f"state carries outputs of shape {outputs.shape}, "
                f"recurrence needs ({self._order},)"
            )
        if inputs.ndim != 1 or inputs.shape != (max(self._fir_order, 0),):
            raise StateError(
                f"state carries inputs of shape {inputs.shape}, "
                f"map stage needs ({max(self._fir_order, 0)},)"
            )
        restored = []
        for name, array in (("outputs", outputs), ("inputs", inputs)):
            if not np.can_cast(array.dtype, self.dtype, casting="same_kind"):
                raise StateError(
                    f"state {name} dtype {array.dtype} cannot be cast to "
                    f"the solver's {self.dtype} (same-kind rule)"
                )
            if np.issubdtype(array.dtype, np.floating) and not np.isfinite(array).all():
                raise StateError(
                    f"state {name} contain non-finite values; restoring them "
                    f"would silently corrupt every later block"
                )
            # astype(copy=True) both detaches from the caller's buffer
            # (mutating the checkpoint afterwards must not change solver
            # behaviour) and materializes the solver's dtype.  Same-kind
            # casting still wraps out-of-range integers (2**40 -> int32
            # becomes 0) and overflows floats to inf, so verify the cast
            # preserved every carry value instead of trusting it.
            with np.errstate(over="ignore", invalid="ignore"):
                cast = array.astype(self.dtype, copy=True)
            if np.issubdtype(self.dtype, np.integer):
                if array.size and not np.array_equal(
                    cast.astype(np.int64, copy=False),
                    array.astype(np.int64, copy=False),
                ):
                    raise StateError(
                        f"state {name} values do not fit the solver's "
                        f"{self.dtype} without wrapping"
                    )
            elif array.size and not np.isfinite(cast).all():
                raise StateError(
                    f"state {name} values overflow the solver's {self.dtype}"
                )
            restored.append(cast)
        position = state.position
        if isinstance(position, float) and not position.is_integer():
            raise StateError(
                f"state position must be an integer, got {position}"
            )
        if position < 0:
            raise StateError(f"state position must be >= 0, got {position}")
        self._state = StreamState(
            outputs=restored[0],
            inputs=restored[1],
            position=int(position),
        )

    def reset(self) -> None:
        """Forget all history; the next push starts a fresh sequence."""
        self._state = StreamState(
            outputs=np.zeros(self._order, dtype=self.dtype),
            inputs=np.zeros(max(self._fir_order, 0), dtype=self.dtype),
        )

    # ------------------------------------------------------------------
    def _factor_table(self, length: int) -> CorrectionFactorTable:
        # Round the table length up to limit cache churn across
        # variable block sizes; the table itself comes from the shared
        # process-wide LRU, so B concurrent streams of the same
        # signature build it once between them.
        size = max(64, 1 << (length - 1).bit_length())
        return cached_factor_table(
            self.recurrence.recursive_signature, size, self.dtype
        )

    def _map_with_history(self, block: np.ndarray) -> np.ndarray:
        """The FIR stage (2) over the block, seeing prior raw inputs."""
        p = self._fir_order
        ff = [
            a if isinstance(a, int) else float(a)
            for a in self.recurrence.signature.feedforward
        ]
        if p == 0:
            if ff == [1]:
                return block
            coeff = (
                np.asarray(ff[0], dtype=self.dtype)
                if self.dtype.kind == "i"
                else self.dtype.type(ff[0])
            )
            return block * coeff
        extended = np.concatenate([self._state.inputs[::-1], block])
        out = np.zeros_like(block)
        for j, a in enumerate(ff):
            if a == 0:
                continue
            coeff = (
                np.asarray(a, dtype=self.dtype)
                if self.dtype.kind == "i"
                else self.dtype.type(a)
            )
            out += coeff * extended[p - j : p - j + block.size]
        return out

    def push(self, block: np.ndarray) -> np.ndarray:
        """Process the next block; returns its recurrence outputs.

        Semantics: identical to solving the concatenation of every
        block pushed so far and returning the slice for this block.
        """
        block = np.asarray(block)
        if block.ndim != 1:
            raise ValueError(f"expected a 1D block, got shape {block.shape}")
        if block.size == 0:
            return block.astype(self.dtype)
        block = block.astype(self.dtype, copy=False)

        mapped = self._map_with_history(block)
        # Solve the block as a standalone sequence (zero history)...
        local = self._solver.solve(mapped, dtype=self.dtype)
        # ...then fold in the incoming carries through the factor rows:
        # out[i] += sum_j F_j[i] * state.outputs[j], the same correction
        # Phase 2 applies across chunk borders.
        k = self._order
        out = local.copy()
        if np.any(self._state.outputs != 0):
            table = self._factor_table(block.size)
            for j in range(k):
                carry = self._state.outputs[j]
                if carry != 0:
                    out += table.factors[j, : block.size] * carry

        # Advance the boundary state.
        n = block.size
        new_outputs = np.zeros(k, dtype=self.dtype)
        take = min(k, n)
        new_outputs[:take] = out[n - take : n][::-1]
        if take < k:
            # Short block: older carries shift forward from prior state.
            new_outputs[take:] = self._state.outputs[: k - take]
        p = self._fir_order
        if p:
            new_inputs = np.zeros(p, dtype=self.dtype)
            take_in = min(p, n)
            new_inputs[:take_in] = block[n - take_in : n][::-1]
            if take_in < p:
                new_inputs[take_in:] = self._state.inputs[: p - take_in]
            self._state.inputs = new_inputs
        self._state.outputs = new_outputs
        self._state.position += n
        return out

    def push_many(self, blocks) -> np.ndarray:
        """Convenience: push an iterable of blocks, concatenate outputs."""
        outputs = [self.push(b) for b in blocks]
        if not outputs:
            return np.zeros(0, dtype=self.dtype)
        return np.concatenate(outputs)


class BatchStreamingSolver:
    """B independent streams of one signature, advanced in lock step.

    The serving-side counterpart of :class:`StreamingSolver`: where that
    class carries one k-vector of output history, this one carries a
    ``(B, k)`` state *matrix* (plus a ``(B, p)`` input-history matrix
    for FIR signatures) and consumes ``(B, block)`` matrices, so B
    concurrent sessions pay the Python dispatch and the factor-table
    lookup once per push instead of once per stream.

    Semantics: stream b behaves exactly like its own
    :class:`StreamingSolver` fed row b of every pushed matrix — a
    tested invariant.

    Example
    -------
    >>> import numpy as np
    >>> streams = BatchStreamingSolver("(1: 1)", batch_size=2)
    >>> streams.push(np.array([[1, 2], [10, 20]], dtype=np.int32)).tolist()
    [[1, 3], [10, 30]]
    >>> streams.push(np.array([[3], [30]], dtype=np.int32)).tolist()
    [[6], [60]]
    """

    def __init__(
        self,
        recurrence: Recurrence | Signature | str,
        batch_size: int,
        dtype: np.dtype | type | None = None,
    ) -> None:
        if isinstance(recurrence, str):
            recurrence = Recurrence.parse(recurrence)
        elif isinstance(recurrence, Signature):
            recurrence = Recurrence(recurrence)
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.recurrence = recurrence
        self.batch_size = batch_size
        if dtype is None:
            dtype = np.int32 if recurrence.is_integer else np.float32
        self.dtype = np.dtype(dtype)
        self._order = recurrence.order
        self._fir_order = recurrence.signature.fir_order
        self._outputs = np.zeros((batch_size, self._order), dtype=self.dtype)
        self._inputs = np.zeros(
            (batch_size, max(self._fir_order, 0)), dtype=self.dtype
        )
        self._position = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> StreamState:
        """Snapshot of the (B, k) output / (B, p) input state matrices."""
        return StreamState(
            self._outputs.copy(), self._inputs.copy(), self._position
        )

    def load_state(self, state: StreamState) -> None:
        """Resume all B streams from a captured :attr:`state`.

        Applies the same validation and no-aliasing guarantees as
        :meth:`StreamingSolver.load_state`, against the batched
        ``(B, k)`` / ``(B, p)`` shapes.
        """
        outputs = np.asarray(state.outputs)
        inputs = np.asarray(state.inputs)
        expect_out = (self.batch_size, self._order)
        expect_in = (self.batch_size, max(self._fir_order, 0))
        if outputs.shape != expect_out:
            raise StateError(
                f"state carries outputs of shape {outputs.shape}, "
                f"batch solver needs {expect_out}"
            )
        if inputs.shape != expect_in:
            raise StateError(
                f"state carries inputs of shape {inputs.shape}, "
                f"batch solver needs {expect_in}"
            )
        restored = []
        for name, array in (("outputs", outputs), ("inputs", inputs)):
            if not np.can_cast(array.dtype, self.dtype, casting="same_kind"):
                raise StateError(
                    f"state {name} dtype {array.dtype} cannot be cast to "
                    f"the solver's {self.dtype} (same-kind rule)"
                )
            if np.issubdtype(array.dtype, np.floating) and not np.isfinite(array).all():
                raise StateError(f"state {name} contain non-finite values")
            with np.errstate(over="ignore", invalid="ignore"):
                cast = array.astype(self.dtype, copy=True)
            if np.issubdtype(self.dtype, np.integer):
                if array.size and not np.array_equal(
                    cast.astype(np.int64, copy=False),
                    array.astype(np.int64, copy=False),
                ):
                    raise StateError(
                        f"state {name} values do not fit the solver's "
                        f"{self.dtype} without wrapping"
                    )
            elif array.size and not np.isfinite(cast).all():
                raise StateError(
                    f"state {name} values overflow the solver's {self.dtype}"
                )
            restored.append(cast)
        position = state.position
        if isinstance(position, float) and not position.is_integer():
            raise StateError(f"state position must be an integer, got {position}")
        if position < 0:
            raise StateError(f"state position must be >= 0, got {position}")
        self._outputs, self._inputs = restored
        self._position = int(position)

    def reset(self) -> None:
        """Forget all history on every stream."""
        self._outputs = np.zeros((self.batch_size, self._order), dtype=self.dtype)
        self._inputs = np.zeros(
            (self.batch_size, max(self._fir_order, 0)), dtype=self.dtype
        )
        self._position = 0

    # ------------------------------------------------------------------
    def _map_with_history(self, blocks: np.ndarray) -> np.ndarray:
        p = self._fir_order
        ff = [
            a if isinstance(a, int) else float(a)
            for a in self.recurrence.signature.feedforward
        ]
        if p == 0:
            if ff == [1]:
                return blocks
            coeff = (
                np.asarray(ff[0], dtype=self.dtype)
                if self.dtype.kind == "i"
                else self.dtype.type(ff[0])
            )
            return blocks * coeff
        extended = np.concatenate([self._inputs[:, ::-1], blocks], axis=1)
        out = np.zeros_like(blocks)
        bn = blocks.shape[1]
        for j, a in enumerate(ff):
            if a == 0:
                continue
            coeff = (
                np.asarray(a, dtype=self.dtype)
                if self.dtype.kind == "i"
                else self.dtype.type(a)
            )
            out += coeff * extended[:, p - j : p - j + bn]
        return out

    def push(self, blocks: np.ndarray) -> np.ndarray:
        """Advance every stream by one ``(B, block)`` matrix of values.

        Row b of the result is exactly what a dedicated
        :class:`StreamingSolver` for stream b would have returned.
        """
        from repro.plr.nd import solve_batch  # local import: nd builds on streaming's siblings

        blocks = np.asarray(blocks)
        if blocks.ndim != 2 or blocks.shape[0] != self.batch_size:
            raise ValueError(
                f"expected a ({self.batch_size}, block) matrix, got shape "
                f"{blocks.shape}"
            )
        bn = blocks.shape[1]
        if bn == 0:
            return blocks.astype(self.dtype)
        blocks = blocks.astype(self.dtype, copy=False)

        mapped = self._map_with_history(blocks)
        # Solve all rows as standalone sequences, then fold in each
        # stream's incoming carries through the shared factor rows —
        # the same cross-border correction Phase 2 applies, vectorized
        # over the batch axis.
        local = solve_batch(
            mapped, Recurrence(self.recurrence.recursive_signature), dtype=self.dtype
        )
        k = self._order
        out = local
        if np.any(self._outputs != 0):
            table = self._factor_table(bn)
            for j in range(k):
                carries = self._outputs[:, j]
                if np.any(carries != 0):
                    out = out + table.factors[j, :bn][None, :] * carries[:, None]

        new_outputs = np.zeros((self.batch_size, k), dtype=self.dtype)
        take = min(k, bn)
        new_outputs[:, :take] = out[:, bn - take : bn][:, ::-1]
        if take < k:
            new_outputs[:, take:] = self._outputs[:, : k - take]
        p = self._fir_order
        if p:
            new_inputs = np.zeros((self.batch_size, p), dtype=self.dtype)
            take_in = min(p, bn)
            new_inputs[:, :take_in] = blocks[:, bn - take_in : bn][:, ::-1]
            if take_in < p:
                new_inputs[:, take_in:] = self._inputs[:, : p - take_in]
            self._inputs = new_inputs
        self._outputs = new_outputs
        self._position += bn
        return out

    def _factor_table(self, length: int) -> CorrectionFactorTable:
        size = max(64, 1 << (length - 1).bit_length())
        return cached_factor_table(
            self.recurrence.recursive_signature, size, self.dtype
        )
