"""The end-to-end PLR solver: plan, map stage, Phase 1, Phase 2.

:class:`PLRSolver` is the executable embodiment of the paper's
algorithm on a numpy substrate.  It computes *exactly* what the
generated CUDA code computes — same chunking, same correction factors,
same arithmetic order — so it serves both as the production API for
computing recurrences in parallel form and as the reference for
validating the code generators and the GPU simulator against.

Typical use::

    from repro import Recurrence, PLRSolver

    rec = Recurrence.parse("(0.2: 0.8)")   # 1-stage low-pass filter
    solver = PLRSolver(rec)
    y = solver.solve(x)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype
from repro.core.signature import Signature
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import FactorPlan, OptimizationConfig, optimize_factors
from repro.plr.phase1 import phase1
from repro.plr.phase2 import phase2
from repro.plr.planner import ExecutionPlan, plan_execution

__all__ = ["PLRSolver", "SolveArtifacts", "clear_factor_cache", "plr_solve"]


@dataclass(frozen=True)
class SolveArtifacts:
    """Intermediate state of one solve, exposed for tests and tooling.

    Attributes
    ----------
    plan:
        The m/x/T execution plan used.
    table:
        The correction-factor table.
    factor_plan:
        The optimizer's realization decisions.
    partial:
        The Phase 1 output (locally correct chunks), shape
        (num_chunks, m).
    """

    plan: ExecutionPlan
    table: CorrectionFactorTable
    factor_plan: FactorPlan
    partial: np.ndarray


# Factor tables are pure functions of (signature, m, dtype); building
# one for m = 11264 costs ~m python-level steps per carry, so memoize.
#
# Cache-key contract: the key is the exact triple
# ``(recursive_signature, chunk_size, dtype_str)``.  Signatures hash by
# coefficient value (frozen dataclass), so "(1: 2, -1)" and the same
# coefficients built programmatically share an entry; the dtype is keyed
# by its *string* form (``np.dtype(x).str``, e.g. ``"<f4"``) so that
# spelling variants — np.float32, "float32", dtype('float32') — cannot
# create duplicate entries.  Entries hold read-only arrays shared across
# solvers and threads; evicting one (LRU, 64 entries) only costs
# recomputation.  The cache is process-global: long-running services
# sweeping many signatures can reclaim the memory with
# :func:`clear_factor_cache`.
@lru_cache(maxsize=64)
def _cached_table(
    signature: Signature, chunk_size: int, dtype_str: str
) -> CorrectionFactorTable:
    return CorrectionFactorTable.build(signature, chunk_size, np.dtype(dtype_str))


def clear_factor_cache() -> None:
    """Drop every memoized correction-factor table.

    Tables are immutable and derived purely from their cache key, so
    clearing is always safe — the next solve just rebuilds what it
    needs.  Useful for bounding memory in services that touch many
    (signature, chunk size, dtype) combinations, and for tests that
    measure cold-cache behaviour.
    """
    _cached_table.cache_clear()


class PLRSolver:
    """Computes a linear recurrence with the paper's two-phase algorithm.

    Parameters
    ----------
    recurrence:
        The recurrence to compute (a :class:`Recurrence` or a signature
        string).
    machine:
        The GPU whose planning heuristics to follow; defaults to the
        paper's Titan X.
    optimization:
        Which Section 3.1 optimizations to apply.  The numpy execution
        only *semantically depends* on one of them (decay truncation
        shortens the correction loops); the rest shape the generated
        code and the cost model.  Defaults to all-on, like PLR.
    """

    def __init__(
        self,
        recurrence: Recurrence | Signature | str,
        machine: MachineSpec | None = None,
        optimization: OptimizationConfig | None = None,
    ) -> None:
        if isinstance(recurrence, str):
            recurrence = Recurrence.parse(recurrence)
        elif isinstance(recurrence, Signature):
            recurrence = Recurrence(recurrence)
        self.recurrence = recurrence
        self.machine = machine or MachineSpec.titan_x()
        self.optimization = optimization or OptimizationConfig()

    # ------------------------------------------------------------------
    def plan_for(self, n: int) -> ExecutionPlan:
        """The execution plan PLR would choose for an input of length n."""
        return plan_execution(self.recurrence.signature, n, self.machine)

    def factor_table(self, plan: ExecutionPlan, dtype: np.dtype) -> CorrectionFactorTable:
        return _cached_table(
            self.recurrence.recursive_signature, plan.chunk_size, np.dtype(dtype).str
        )

    # ------------------------------------------------------------------
    def solve(
        self,
        values: np.ndarray,
        plan: ExecutionPlan | None = None,
        dtype: np.dtype | None = None,
    ) -> np.ndarray:
        """Compute the recurrence over ``values``.

        Returns an array of the same length; dtype follows the paper's
        methodology (int32 for integer signatures on integer data,
        float32 otherwise) unless overridden.
        """
        return self.solve_with_artifacts(values, plan=plan, dtype=dtype)[0]

    def solve_with_artifacts(
        self,
        values: np.ndarray,
        plan: ExecutionPlan | None = None,
        dtype: np.dtype | None = None,
    ) -> tuple[np.ndarray, SolveArtifacts]:
        """Like :meth:`solve` but also returns the intermediate state."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"expected a 1D sequence, got shape {values.shape}")
        n = values.size
        if plan is None:
            plan = self.plan_for(n)
        if dtype is None:
            dtype = resolve_dtype(self.recurrence.signature, values.dtype)
        dtype = np.dtype(dtype)

        work = values.astype(dtype, copy=False)
        # Map stage (2): eliminate the feed-forward coefficients.
        if self.recurrence.has_map_stage:
            work = self.recurrence.apply_map_stage(work)

        # Zero-pad to a whole number of chunks.  Trailing zeros never
        # influence earlier outputs, so the unpadded prefix is exact.
        padded_n = plan.padded_n
        if padded_n != n:
            padded = np.zeros(padded_n, dtype=dtype)
            padded[:n] = work
        else:
            padded = work

        table = self.factor_table(plan, dtype)
        factor_plan = optimize_factors(table, self.optimization)

        partial = phase1(padded, table, plan.values_per_thread)
        corrected = phase2(partial, table)

        out = corrected.reshape(-1)[:n]
        artifacts = SolveArtifacts(
            plan=plan, table=table, factor_plan=factor_plan, partial=partial
        )
        return out, artifacts


def plr_solve(signature: str | Signature, values: np.ndarray) -> np.ndarray:
    """One-shot convenience: ``plr_solve("(1: 1)", x)`` -> prefix sum."""
    return PLRSolver(Recurrence(Signature.parse(signature)) if isinstance(signature, str) else Recurrence(signature)).solve(values)
