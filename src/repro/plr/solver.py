"""The end-to-end PLR solver: plan, map stage, Phase 1, Phase 2.

:class:`PLRSolver` is the executable embodiment of the paper's
algorithm on a numpy substrate.  It computes *exactly* what the
generated CUDA code computes — same chunking, same correction factors,
same arithmetic order — so it serves both as the production API for
computing recurrences in parallel form and as the reference for
validating the code generators and the GPU simulator against.

Typical use::

    from repro import Recurrence, PLRSolver

    rec = Recurrence.parse("(0.2: 0.8)")   # 1-stage low-pass filter
    solver = PLRSolver(rec)
    y = solver.solve(x)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.core.errors import BackendError, CodegenError
from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype
from repro.core.signature import Signature
from repro.gpusim.spec import MachineSpec
from repro.obs.metrics import global_metrics
from repro.obs.tracer import coerce_tracer
from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import FactorPlan, OptimizationConfig, optimize_factors
from repro.parallel.sharding import ShardOptions
from repro.plr.phase1 import check_integer_coefficients, phase1
from repro.plr.phase2 import phase2
from repro.plr.planner import ExecutionPlan, plan_execution

__all__ = [
    "PLRSolver",
    "SolveArtifacts",
    "cached_factor_table",
    "clear_factor_cache",
    "factor_cache_stats",
    "plr_solve",
]


@dataclass(frozen=True)
class SolveArtifacts:
    """Intermediate state of one solve, exposed for tests and tooling.

    Attributes
    ----------
    plan:
        The m/x/T execution plan used.
    table:
        The correction-factor table.
    factor_plan:
        The optimizer's realization decisions.
    partial:
        The Phase 1 output (locally correct chunks), shape
        (num_chunks, m).  ``None`` for the process backend, whose
        workers correct their shared-memory slabs in place — there is
        no moment at which an intact full Phase 1 result exists on the
        host — and for solves the native kernel completed end to end.
    native:
        A :class:`~repro.codegen.jit.NativeAttempt` describing what the
        native backend did (ran a compiled kernel, or degraded to numpy
        and why).  ``None`` for the other backends.
    tuning:
        A :class:`~repro.tune.policy.TuningDecision` recording which
        backend ``backend="auto"`` resolved to and *why* (measured,
        interpolated, or static fallback with its typed reason).
        ``None`` when the backend was fixed by the caller.
    backend:
        The backend that actually executed this solve (after any
        ``"auto"`` resolution): ``"single"``, ``"process"``, or
        ``"native"``.
    """

    plan: ExecutionPlan
    table: CorrectionFactorTable
    factor_plan: FactorPlan
    partial: np.ndarray | None
    native: object | None = None
    tuning: object | None = None
    backend: str = "single"


# Factor tables are pure functions of (signature, m, dtype); building
# one for m = 11264 costs ~m python-level steps per carry, so memoize.
#
# Cache-key contract: the key is the exact triple
# ``(recursive_signature, chunk_size, dtype_str)``.  Signatures hash by
# coefficient value (frozen dataclass), so "(1: 2, -1)" and the same
# coefficients built programmatically share an entry; the dtype is keyed
# by its *string* form (``np.dtype(x).str``, e.g. ``"<f4"``) so that
# spelling variants — np.float32, "float32", dtype('float32') — cannot
# create duplicate entries.  Entries hold read-only arrays shared across
# solvers and threads; evicting one (LRU, 64 entries) only costs
# recomputation.  The cache is process-global: long-running services
# sweeping many signatures can reclaim the memory with
# :func:`clear_factor_cache`.
@lru_cache(maxsize=64)
def _cached_table(
    signature: Signature, chunk_size: int, dtype_str: str
) -> CorrectionFactorTable:
    return CorrectionFactorTable.build(signature, chunk_size, np.dtype(dtype_str))


def cached_factor_table(
    signature: Signature, chunk_size: int, dtype: np.dtype | type
) -> CorrectionFactorTable:
    """The shared, process-wide factor-table lookup.

    Every consumer of correction factors — :class:`PLRSolver`, the
    streaming wrapper, and the batch engine — goes through this one
    LRU-cached entry point, so a mixed workload touching the same
    (recursive signature, chunk size, dtype) triple builds its table
    exactly once.  The ``signature`` is reduced to its recursive part
    here, so full signatures and their ``(1: b...)`` cores share an
    entry.  Publishes hit/miss/size gauges via
    :func:`factor_cache_stats` on every call.
    """
    table = _cached_table(
        signature.recursive_part(), chunk_size, np.dtype(dtype).str
    )
    factor_cache_stats()
    return table


def clear_factor_cache() -> None:
    """Drop every memoized correction-factor table.

    Tables are immutable and derived purely from their cache key, so
    clearing is always safe — the next solve just rebuilds what it
    needs.  Useful for bounding memory in services that touch many
    (signature, chunk size, dtype) combinations, and for tests that
    measure cold-cache behaviour.
    """
    _cached_table.cache_clear()


def factor_cache_stats() -> dict[str, int]:
    """Current factor-cache statistics, mirrored into the global metrics.

    Reads ``_cached_table.cache_info()`` and publishes it as the
    ``factor_cache.hits`` / ``factor_cache.misses`` / ``factor_cache.size``
    gauges on :func:`repro.obs.metrics.global_metrics`, returning the
    same numbers as a plain dict.  Called on every
    :meth:`PLRSolver.factor_table` lookup so the gauges track the cache
    without replacing the ``lru_cache`` interface tests rely on.
    """
    info = _cached_table.cache_info()
    stats = {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "max_size": info.maxsize,
    }
    registry = global_metrics()
    registry.gauge("factor_cache.hits").set(info.hits)
    registry.gauge("factor_cache.misses").set(info.misses)
    registry.gauge("factor_cache.size").set(info.currsize)
    return stats


class PLRSolver:
    """Computes a linear recurrence with the paper's two-phase algorithm.

    Parameters
    ----------
    recurrence:
        The recurrence to compute (a :class:`Recurrence` or a signature
        string).
    machine:
        The GPU whose planning heuristics to follow; defaults to the
        paper's Titan X.
    optimization:
        Which Section 3.1 optimizations to apply.  The numpy execution
        only *semantically depends* on one of them (decay truncation
        shortens the correction loops); the rest shape the generated
        code and the cost model.  Defaults to all-on, like PLR.
    tracer:
        Observability hook: ``True`` for a fresh
        :class:`~repro.obs.tracer.Tracer`, an existing tracer to share,
        or ``None``/``False`` (default) for the no-op tracer.  With a
        real tracer every solve emits spans for the map stage, factor
        table lookup, Phase 1 (per merge level), and Phase 2 (per-chunk
        ``lookback`` events).  Tracing never changes the arithmetic —
        outputs are bit-identical with it on or off.
    backend:
        ``"single"`` (default) computes in this process;
        ``"process"`` shards chunks across a multicore pool with a
        log-depth carry scan (:mod:`repro.parallel`).  Process-backend
        results are bit-identical for integer dtypes and within normal
        rounding for floats (sums reassociate at slab boundaries).
        ``"native"`` JIT-compiles the recurrence with the C backend
        (:mod:`repro.codegen.jit`) and runs the compiled kernel —
        bit-identical for integer dtypes (the kernel is built with
        ``-fwrapv`` so wraparound matches numpy's ring), tolerance-equal
        for floats (the kernel associates chunk-locally).  When no C
        compiler is available or compilation fails, the solve degrades
        to the numpy path and records the typed error on
        ``artifacts.native`` (see ``native_fallback``).
    workers / shard_options:
        Pool tuning for the process backend: ``workers`` is shorthand
        for ``ShardOptions(workers=...)``; pass a full
        :class:`~repro.parallel.ShardOptions` to also set the stage
        timeout.  The native backend runs in-process by default (the
        kernel is already OpenMP-parallel over chunks); setting
        ``workers`` explicitly makes it shard slabs across a pool with
        each worker running the compiled kernel on its slab, the carry
        scan unchanged.  Both are ignored by the single backend.
    native_fallback:
        Native backend only.  True (default): a
        :class:`~repro.core.errors.BackendError` /
        :class:`~repro.core.errors.CodegenError` from the compile-and-
        load path degrades the solve to numpy instead of failing it.
        False: the typed error propagates — what the resilience chain
        uses so the degradation is *its* decision and gets a typed
        attempt record.
    policy:
        ``backend="auto"`` only: the
        :class:`~repro.tune.policy.TuningPolicy` consulted per solve;
        defaults to the process-wide policy over the persistent
        calibration database (:func:`repro.tune.default_policy`).  The
        decision — and why it was made — lands on
        ``artifacts.tuning``; a cold or broken table degrades to the
        static heuristics, never to an exception.
    """

    BACKENDS = ("single", "process", "native", "auto")

    def __init__(
        self,
        recurrence: Recurrence | Signature | str,
        machine: MachineSpec | None = None,
        optimization: OptimizationConfig | None = None,
        tracer=None,
        backend: str = "single",
        workers: int | None = None,
        shard_options: ShardOptions | None = None,
        native_fallback: bool = True,
        policy=None,
    ) -> None:
        if isinstance(recurrence, str):
            recurrence = Recurrence.parse(recurrence)
        elif isinstance(recurrence, Signature):
            recurrence = Recurrence(recurrence)
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.recurrence = recurrence
        self.machine = machine or MachineSpec.titan_x()
        self.optimization = optimization or OptimizationConfig()
        self.tracer = coerce_tracer(tracer)
        self.backend = backend
        self.native_fallback = native_fallback
        self.policy = policy
        self.shard_options = (
            shard_options
            if shard_options is not None
            else ShardOptions(workers=workers)
        )

    # ------------------------------------------------------------------
    def plan_for(self, n: int) -> ExecutionPlan:
        """The execution plan PLR would choose for an input of length n."""
        return plan_execution(self.recurrence.signature, n, self.machine)

    def factor_table(self, plan: ExecutionPlan, dtype: np.dtype) -> CorrectionFactorTable:
        return cached_factor_table(
            self.recurrence.recursive_signature, plan.chunk_size, dtype
        )

    # ------------------------------------------------------------------
    def solve(
        self,
        values: np.ndarray,
        plan: ExecutionPlan | None = None,
        dtype: np.dtype | None = None,
        context=None,
    ) -> np.ndarray:
        """Compute the recurrence over ``values``.

        Returns an array of the same length; dtype follows the paper's
        methodology (int32 for integer signatures on integer data,
        float32 otherwise) unless overridden.  ``context`` is an
        optional :class:`~repro.obs.context.TraceContext`: when given,
        the solve's spans (plan, phases, sharded stages, worker lanes)
        parent under it so the solve joins a request-scoped trace.
        """
        return self._solve(values, plan, dtype, keep_partial=False, context=context)[0]

    def solve_with_artifacts(
        self,
        values: np.ndarray,
        plan: ExecutionPlan | None = None,
        dtype: np.dtype | None = None,
        context=None,
    ) -> tuple[np.ndarray, SolveArtifacts]:
        """Like :meth:`solve` but also returns the intermediate state.

        Keeping ``artifacts.partial`` valid requires Phase 2 to correct
        a copy rather than the Phase 1 buffer, so this entry point pays
        one extra (num_chunks, m) allocation that :meth:`solve` avoids.
        """
        return self._solve(values, plan, dtype, keep_partial=True, context=context)

    def _solve(
        self,
        values: np.ndarray,
        plan: ExecutionPlan | None,
        dtype: np.dtype | None,
        keep_partial: bool,
        context=None,
    ) -> tuple[np.ndarray, SolveArtifacts]:
        tracer = self.tracer

        def link():
            # One fresh child per span; None stays None so the untraced
            # hot path allocates nothing.
            return context.child() if context is not None else None

        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"expected a 1D sequence, got shape {values.shape}")
        n = values.size
        if dtype is None:
            dtype = resolve_dtype(self.recurrence.signature, values.dtype)
        dtype = np.dtype(dtype)

        backend = self.backend
        shard_options = self.shard_options
        tuning = None
        if backend == "auto":
            backend, shard_options, tuning = self._resolve_auto(
                n, dtype, tracer, link
            )

        if plan is None:
            with tracer.span(
                "plan",
                cat="solver",
                args={"n": n} if tracer.enabled else None,
                link=link(),
            ):
                plan = self.plan_for(n)
        # A fractional coefficient cast to an integer working dtype
        # truncates silently (b=0.5 -> 0) and computes a *different*
        # recurrence; fail with a typed error before any work happens.
        check_integer_coefficients(
            self.recurrence.signature.feedforward
            + self.recurrence.signature.feedback,
            dtype,
        )

        work = values.astype(dtype, copy=False)
        # Map stage (2): eliminate the feed-forward coefficients.
        if self.recurrence.has_map_stage:
            with tracer.span("map_stage", cat="solver", link=link()):
                work = self.recurrence.apply_map_stage(work)

        with tracer.span("factor_table", cat="solver", link=link()):
            table = self.factor_table(plan, dtype)
        factor_plan = optimize_factors(table, self.optimization)

        native_record = None
        if backend == "native":
            try:
                out, native_record = self._solve_native(
                    work, n, plan, table, factor_plan, dtype, tracer, link,
                    shard_options,
                )
            except (BackendError, CodegenError) as exc:
                if not self.native_fallback:
                    raise
                # Degrade to the numpy path below; the typed record on
                # the artifacts (and the counter/instant) is the story.
                from repro.codegen.jit import NativeAttempt

                native_record = NativeAttempt(
                    used=False, error=f"{type(exc).__name__}: {exc}"
                )
                global_metrics().counter("native.fallbacks").inc()
                if tracer.enabled:
                    tracer.instant(
                        "native_fallback",
                        cat="solver",
                        args={"error": str(exc)[:200]},
                        link=link(),
                    )
            else:
                artifacts = SolveArtifacts(
                    plan=plan,
                    table=table,
                    factor_plan=factor_plan,
                    partial=None,
                    native=native_record,
                    tuning=tuning,
                    backend="native",
                )
                return out, artifacts

        # Zero-pad to a whole number of chunks.  Trailing zeros never
        # influence earlier outputs, so the unpadded prefix is exact.
        padded_n = plan.padded_n
        if padded_n != n:
            padded = np.zeros(padded_n, dtype=dtype)
            padded[:n] = work
        else:
            padded = work

        partial: np.ndarray | None
        if backend == "process":
            from repro.parallel.backend import solve_sharded

            sharded_ctx = link()
            with tracer.span(
                "solve_sharded",
                cat="solver",
                args={"chunks": padded_n // plan.chunk_size} if tracer.enabled else None,
                link=sharded_ctx,
            ):
                corrected = solve_sharded(
                    padded,
                    table,
                    plan.values_per_thread,
                    options=shard_options,
                    tracer=tracer,
                    context=sharded_ctx,
                )
            # Workers corrected their shared slabs in place; no host-side
            # Phase 1 snapshot exists to expose.
            partial = None
        else:
            with tracer.span(
                "phase1",
                cat="solver",
                args={"chunks": padded_n // plan.chunk_size} if tracer.enabled else None,
                link=link(),
            ):
                partial = phase1(padded, table, plan.values_per_thread, tracer=tracer)
            with tracer.span("phase2", cat="solver", link=link()):
                # Correct the Phase 1 buffer in place unless the caller
                # asked for the pristine partial result.
                corrected = phase2(
                    partial, table, tracer=tracer, out=None if keep_partial else partial
                )
                if not keep_partial:
                    partial = None

        out = corrected.reshape(-1)[:n]
        artifacts = SolveArtifacts(
            plan=plan,
            table=table,
            factor_plan=factor_plan,
            partial=partial,
            native=native_record,
            tuning=tuning,
            backend=backend,
        )
        return out, artifacts

    def _resolve_auto(self, n, dtype, tracer, link):
        """Resolve ``backend="auto"`` through the tuning policy.

        Returns ``(backend, shard_options, decision)``.  The policy's
        contract guarantees a decision (measured, interpolated, or
        static fallback with a typed reason) — this never raises on the
        solve path.  A measured process decision also carries the
        measured-best worker count, which fills a ``workers=None``
        shard configuration without overriding an explicit one.
        """
        from dataclasses import replace as dc_replace

        from repro.tune.policy import default_policy

        policy = self.policy if self.policy is not None else default_policy()
        decision = policy.decide(self.recurrence.signature, n, dtype)
        shard_options = self.shard_options
        if (
            decision.backend == "process"
            and decision.workers is not None
            and shard_options.workers is None
        ):
            shard_options = dc_replace(shard_options, workers=decision.workers)
        if tracer.enabled:
            tracer.instant(
                "tuning_decision",
                cat="solver",
                args={
                    "backend": decision.backend,
                    "source": decision.source,
                    "reason": decision.reason[:200],
                },
                link=link(),
            )
        return decision.backend, shard_options, decision

    def _solve_native(
        self, work, n, plan, table, factor_plan, dtype, tracer, link,
        shard_options=None,
    ):
        """Run the solve through a JIT-compiled C kernel.

        ``work`` is the post-map-stage, unpadded input.  The kernel is
        built from the *recursive-only* signature with one serial cell
        spanning each chunk (``x = m``) — the doubling hierarchy inside
        a chunk is a GPU shape; on a CPU the chunk-serial solve plus the
        carry spine plus the bulk correction is both less work and the
        layout OpenMP parallelizes cleanly.  The kernel pads internally,
        so the host neither maps nor pads twice.

        Raises :class:`~repro.core.errors.BackendError` /
        :class:`~repro.core.errors.CodegenError` when a kernel cannot be
        produced; the caller decides whether that degrades or fails.
        """
        from repro.codegen.ir import KernelIR
        from repro.codegen.jit import NativeAttempt, native_kernel

        ir = KernelIR(
            recurrence=Recurrence(self.recurrence.recursive_signature),
            plan=replace(plan, values_per_thread=plan.chunk_size),
            table=table,
            factor_plan=factor_plan,
            dtype=dtype,
        )
        kernel = native_kernel(ir)
        if shard_options is None:
            shard_options = self.shard_options

        # Sharding is opt-in for the native backend: the kernel already
        # parallelizes over chunks with OpenMP, so a process pool on top
        # would oversubscribe unless the caller asked for it.
        if shard_options.workers is not None:
            from repro.parallel.backend import solve_sharded
            from repro.parallel.sharding import resolve_workers, slab_spans

            m = plan.chunk_size
            num_chunks = plan.padded_n // m
            spans = slab_spans(
                num_chunks, resolve_workers(shard_options.workers, num_chunks)
            )
            if len(spans) > 1:
                padded = np.zeros(plan.padded_n, dtype=dtype)
                padded[:n] = work
                sharded_ctx = link()
                with tracer.span(
                    "solve_sharded",
                    cat="solver",
                    args={"chunks": num_chunks, "native": True}
                    if tracer.enabled
                    else None,
                    link=sharded_ctx,
                ):
                    corrected = solve_sharded(
                        padded,
                        table,
                        plan.values_per_thread,
                        options=shard_options,
                        tracer=tracer,
                        context=sharded_ctx,
                        native_so=str(kernel.library_path),
                    )
                record = NativeAttempt(
                    used=True,
                    digest=kernel.digest,
                    library_path=str(kernel.library_path),
                    sharded=True,
                )
                return corrected.reshape(-1)[:n], record

        with tracer.span(
            "native_kernel",
            cat="solver",
            args={"n": n, "digest": kernel.digest} if tracer.enabled else None,
            link=link(),
        ):
            out = kernel(work)
        record = NativeAttempt(
            used=True, digest=kernel.digest, library_path=str(kernel.library_path)
        )
        return out, record


def plr_solve(signature: str | Signature, values: np.ndarray) -> np.ndarray:
    """One-shot convenience: ``plr_solve("(1: 1)", x)`` -> prefix sum."""
    return PLRSolver(Recurrence(Signature.parse(signature)) if isinstance(signature, str) else Recurrence(signature)).solve(values)
