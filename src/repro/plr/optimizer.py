"""The domain-specific optimizations of Section 3.1.

PLR's "most important optimizations pertain to the correction factors":

* **shared-memory buffering** — the first 1024 factors of each list are
  cached in shared memory; merging starts with small chunks, so early
  (hot) factors always hit the buffer;
* **constant folding** — a factor list whose elements are all identical
  is replaced by a literal constant (standard prefix sum: all 1s);
* **zero/one conditional add** — lists containing only 0s and 1s use a
  conditional add instead of a multiply-add (tuple prefix sums);
* **repetition folding** — periodic lists are stored once per period;
* **decay truncation** — for stable IIR filters, factors decay below
  float32 precision; denormals are flushed to zero and whole warps
  whose factors are all zero skip their Phase 1 work;
* **term suppression** — corrections that would reference elements
  before the start of a chunk are never emitted (this one lives in
  :func:`repro.plr.phase1.merge_level` and the code generators).

The optimizer is an *analysis*: it inspects a
:class:`~repro.plr.factors.CorrectionFactorTable` and produces a
:class:`FactorPlan` describing how each factor list should be realized.
The code generators, the numpy solver, and the cost model all consume
the same plan, so "optimizations on" means the same thing everywhere —
including for Figure 10, which toggles them off via
:class:`OptimizationConfig`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.plr.factors import CorrectionFactorTable

__all__ = [
    "FactorRealization",
    "FactorDecision",
    "FactorPlan",
    "OptimizationConfig",
    "optimize_factors",
    "SHARED_MEMORY_FACTOR_CAPACITY",
]

SHARED_MEMORY_FACTOR_CAPACITY = 1024
"""Factors per list buffered in shared memory (Section 3.1)."""


class FactorRealization(enum.Enum):
    """How the generated code obtains one factor list's values."""

    GLOBAL_ARRAY = "global_array"  # unoptimized: loads from main memory
    BUFFERED_ARRAY = "buffered_array"  # first 1024 cached in shared memory
    CONSTANT = "constant"  # replaced by a literal
    ZERO_ONE = "zero_one"  # conditional add, no multiply
    PERIODIC = "periodic"  # only the first period stored
    TRUNCATED = "truncated"  # zero tail suppressed (decayed filter)
    SHIFT_OF_FIRST = "shift_of_first"  # scaled shift of factor list 0


@dataclass(frozen=True)
class FactorDecision:
    """The realization chosen for a single carry's factor list."""

    carry_index: int
    realization: FactorRealization
    constant: float | int | None = None  # for CONSTANT
    period: int | None = None  # for PERIODIC
    cutoff: int | None = None  # for TRUNCATED: first all-zero index
    scale: float | int | None = None  # for SHIFT_OF_FIRST

    @property
    def stored_elements(self) -> int | None:
        """How many factor values this realization keeps in memory.

        None means "the full list" (the caller knows m); the cost model
        and the memory accounting use this to size the constant arrays.
        """
        if self.realization in (FactorRealization.CONSTANT, FactorRealization.SHIFT_OF_FIRST):
            return 0
        if self.realization == FactorRealization.PERIODIC:
            return self.period
        if self.realization == FactorRealization.ZERO_ONE and self.period is not None:
            return self.period
        if self.realization == FactorRealization.TRUNCATED:
            return self.cutoff
        return None


@dataclass(frozen=True)
class OptimizationConfig:
    """Which Section 3.1 optimizations are enabled.

    ``OptimizationConfig()`` is the paper's "optimizations on";
    :meth:`disabled` is Figure 10's "optimizations off": factors are
    "always loaded from global memory and no special code is emitted
    for factors that are constants, only zero or one, repeat, or decay
    to zero after a certain point."
    """

    buffer_in_shared: bool = True
    fold_constants: bool = True
    zero_one_conditional: bool = True
    fold_repeats: bool = True
    truncate_decayed: bool = True
    suppress_shifted_duplicate: bool = False
    """Off by default: the paper lists this as future work; we implement
    it as an extension and benchmark it separately."""

    @classmethod
    def disabled(cls) -> "OptimizationConfig":
        return cls(
            buffer_in_shared=False,
            fold_constants=False,
            zero_one_conditional=False,
            fold_repeats=False,
            truncate_decayed=False,
            suppress_shifted_duplicate=False,
        )

    @classmethod
    def extended(cls) -> "OptimizationConfig":
        """All paper optimizations plus the future-work extensions."""
        return cls(suppress_shifted_duplicate=True)


@dataclass(frozen=True)
class FactorPlan:
    """The optimizer's output: one decision per carry plus globals.

    Attributes
    ----------
    decisions:
        One :class:`FactorDecision` per carry, in carry order.
    shared_buffer_elements:
        Factors per surviving list to stage in shared memory.
    phase1_active_elements:
        How many elements of each merge level actually need correcting;
        equals the chunk size unless decay truncation kicked in.  The
        generated code skips whole warps past this point.
    """

    table: CorrectionFactorTable
    config: OptimizationConfig
    decisions: tuple[FactorDecision, ...]
    shared_buffer_elements: int
    phase1_active_elements: int

    @property
    def uses_multiplies(self) -> bool:
        """False when every correction is a conditional add."""
        return any(
            d.realization
            not in (FactorRealization.ZERO_ONE, FactorRealization.CONSTANT)
            or (d.realization == FactorRealization.CONSTANT and d.constant not in (0, 1))
            for d in self.decisions
        )

    def stored_factor_words(self) -> int:
        """Total factor values materialized across all lists.

        Feeds the GPU memory accounting (Table 2) and the cost model's
        factor-load traffic term.
        """
        m = self.table.chunk_size
        total = 0
        for d in self.decisions:
            stored = d.stored_elements
            total += m if stored is None else stored
        return total

    def decision(self, carry_index: int) -> FactorDecision:
        return self.decisions[carry_index]


def _decide_one(
    table: CorrectionFactorTable,
    config: OptimizationConfig,
    carry_index: int,
    shifted_pair: tuple[int, int] | None,
) -> FactorDecision:
    """Pick the best realization for one factor list.

    Precedence: a constant beats everything (no storage, no load); the
    shifted-duplicate suppression beats per-list encodings (no storage);
    zero/one beats periodic (it also kills the multiply); periodic and
    truncated then shrink storage.
    """
    if config.fold_constants:
        const = table.constant_value(carry_index)
        if const is not None:
            return FactorDecision(
                carry_index, FactorRealization.CONSTANT, constant=const
            )
    if (
        config.suppress_shifted_duplicate
        and shifted_pair is not None
        and carry_index == shifted_pair[1]
    ):
        return FactorDecision(
            carry_index,
            FactorRealization.SHIFT_OF_FIRST,
            scale=table.signature.feedback[-1],
        )
    if config.zero_one_conditional and table.is_zero_one(carry_index):
        # Keep the period (if any): a periodic 0/1 pattern needs no
        # factor loads at all — the condition is an index computation.
        period = table.period(carry_index) if config.fold_repeats else None
        return FactorDecision(
            carry_index, FactorRealization.ZERO_ONE, period=period
        )
    if config.fold_repeats:
        period = table.period(carry_index)
        if period is not None:
            return FactorDecision(
                carry_index, FactorRealization.PERIODIC, period=period
            )
    if config.truncate_decayed:
        cutoff = table.decay_index(carry_index)
        if cutoff is not None:
            return FactorDecision(
                carry_index, FactorRealization.TRUNCATED, cutoff=cutoff
            )
    if config.buffer_in_shared:
        return FactorDecision(carry_index, FactorRealization.BUFFERED_ARRAY)
    return FactorDecision(carry_index, FactorRealization.GLOBAL_ARRAY)


def optimize_factors(
    table: CorrectionFactorTable,
    config: OptimizationConfig | None = None,
) -> FactorPlan:
    """Analyze a factor table and choose a realization per carry."""
    if config is None:
        config = OptimizationConfig()
    shifted = table.shifted_duplicate_rows() if config.suppress_shifted_duplicate else None
    decisions = tuple(
        _decide_one(table, config, j, shifted) for j in range(table.order)
    )

    shared = (
        min(SHARED_MEMORY_FACTOR_CAPACITY, table.chunk_size)
        if config.buffer_in_shared
        else 0
    )

    if config.truncate_decayed and table.max_decay_index is not None:
        active = max(1, table.max_decay_index)
    else:
        active = table.chunk_size

    return FactorPlan(
        table=table,
        config=config,
        decisions=decisions,
        shared_buffer_elements=shared,
        phase1_active_elements=min(active, table.chunk_size),
    )
