"""Phase 1: hierarchical pairwise chunk merging (Section 2.1).

Phase 1 turns each size-m chunk of the input into the locally correct
recurrence result (correct under the assumption that everything before
the chunk is zero).  It mirrors the generated CUDA code's structure:

1. *Thread-local step* — each thread solves its x consecutive values
   serially (a chunk of size x is trivially correct on its own).  On
   the GPU this is in-register work; here it is one vectorized sweep
   across all threads at once.
2. *Doubling steps* — chunk widths x, 2x, 4x, ..., m/2 are merged
   pairwise.  The second chunk of each pair is corrected by adding, for
   each carry j, ``factors[j][i] * carry_j`` to its element at offset
   i.  The first log2(warp_size) of these levels correspond to shuffle
   exchanges, the rest to shared-memory exchanges; the arithmetic is
   identical, which is what makes the approach hierarchical.

The key invariant (tested directly): after the level that produces
chunks of width w, the first w outputs of every chunk-aligned window
are final, and in particular the first w outputs of the whole sequence
equal the serial reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NumericalError
from repro.obs.tracer import NULL_TRACER
from repro.plr.factors import CorrectionFactorTable

__all__ = [
    "thread_local_solve",
    "merge_level",
    "phase1",
    "phase1_inplace",
    "doubling_widths",
    "check_integer_coefficients",
]


def check_integer_coefficients(coefficients, dtype: np.dtype) -> None:
    """Reject lossy coefficient casts before they corrupt a solve.

    Casting a fractional coefficient (``b = 0.5``) to an integer working
    dtype silently truncates it to 0, turning the recurrence into a
    different one without any error.  Integral-valued floats (``2.0``)
    cast losslessly and are allowed.  Raises
    :class:`~repro.core.errors.NumericalError` so callers (and the
    resilience chain) see a typed failure instead of corrupt output.
    """
    if not np.issubdtype(np.dtype(dtype), np.integer):
        return
    lossy = [c for c in coefficients if float(c) != int(c)]
    if lossy:
        raise NumericalError(
            f"coefficients {lossy} are fractional and cannot be computed in "
            f"{np.dtype(dtype).name} arithmetic without truncation; solve in "
            f"a floating-point dtype instead"
        )


def thread_local_solve(
    chunks: np.ndarray, feedback: list, x: int
) -> None:
    """Solve each width-x thread chunk serially, in place.

    ``chunks`` has shape (num_threads, x); column i receives
    ``sum_j b_j * column[i-j]`` for the in-chunk history only.  The loop
    runs over x (small: <= 11) and k, vectorized over all threads.

    The inner accumulation reuses one preallocated scratch column via
    ``np.multiply(..., out=)`` instead of building a fresh
    ``coeff * column`` array per (i, j) step — same values in the same
    order (bit-identical; pinned by the Phase 1 invariant tests), but
    no temporary churn in the hottest loop of the thread-local stage.
    """
    k = len(feedback)
    if np.issubdtype(chunks.dtype, np.integer):
        coeffs = [np.asarray(b, dtype=chunks.dtype) for b in feedback]
    else:
        coeffs = [chunks.dtype.type(b) for b in feedback]
    scratch = np.empty(chunks.shape[0], dtype=chunks.dtype)
    for i in range(1, x):
        column = chunks[:, i]
        for j in range(1, min(i, k) + 1):
            np.multiply(chunks[:, i - j], coeffs[j - 1], out=scratch)
            column += scratch


def merge_level(
    pairs: np.ndarray, table: CorrectionFactorTable, width: int
) -> None:
    """Merge adjacent chunk pairs of the given width, in place.

    ``pairs`` has shape (num_pairs, 2*width).  For each carry j that
    actually exists at this width (the paper's term-suppression
    optimization: carry w[width-1-j] only exists when j < width), the
    second half gets ``factors[j][:width] * carry_j`` added.  The
    per-width factor prefixes come pre-sliced from
    :meth:`~repro.plr.factors.CorrectionFactorTable.rows_for_width`.
    """
    second = pairs[:, width:]
    for j, factor_row in enumerate(table.rows_for_width(width)):
        carry = pairs[:, width - 1 - j]
        second += factor_row * carry[:, None]


def doubling_widths(x: int, chunk_size: int) -> list[int]:
    """The sequence of pair widths Phase 1 merges: x, 2x, ..., m/2.

    ``chunk_size`` must be x times a power of two; this is guaranteed by
    the planner (m = 1024 * x) and validated here.
    """
    widths = []
    width = x
    while width < chunk_size:
        widths.append(width)
        width *= 2
    if width != chunk_size:
        raise ValueError(
            f"chunk size {chunk_size} is not x={x} times a power of two"
        )
    return widths


def phase1_inplace(
    work: np.ndarray,
    table: CorrectionFactorTable,
    x: int,
    tracer=NULL_TRACER,
) -> None:
    """Run Phase 1 over a ``(num_chunks, m)`` chunk matrix, in place.

    The zero-copy core shared by :func:`phase1` (which copies first to
    keep its input pristine) and the multicore backend
    (:mod:`repro.parallel`), whose workers call this directly on their
    shared-memory slab views — each chunk row is independent, so any
    contiguous row range is a valid unit of work.  ``work`` must be a
    C-contiguous 2D buffer whose row length equals the table's chunk
    size; it is overwritten with the locally correct partial result.
    """
    m = table.chunk_size
    if work.ndim != 2 or work.shape[1] != m:
        raise ValueError(
            f"expected a (num_chunks, {m}) chunk matrix, got shape {work.shape}"
        )
    feedback = [
        b if isinstance(b, int) else float(b) for b in table.signature.feedback
    ]
    num_chunks = work.shape[0]

    if x > 1:
        thread_view = work.reshape(num_chunks * (m // x), x)
        with tracer.span(
            "thread_local_solve", cat="phase1", args={"x": x} if tracer.enabled else None
        ):
            thread_local_solve(thread_view, feedback, x)

    for width in doubling_widths(x, m):
        pairs = num_chunks * (m // (2 * width))
        pair_view = work.reshape(pairs, 2 * width)
        if tracer.enabled:
            with tracer.span(
                "merge_level", cat="phase1", args={"width": width, "pairs": pairs}
            ):
                merge_level(pair_view, table, width)
        else:
            merge_level(pair_view, table, width)


def phase1(
    padded: np.ndarray,
    table: CorrectionFactorTable,
    x: int,
    tracer=NULL_TRACER,
) -> np.ndarray:
    """Run Phase 1 over all chunks; returns the (num_chunks, m) partial.

    ``padded`` is the input after the map stage, zero-padded to a whole
    number of chunks, flattened.  The result is locally correct within
    each chunk; the last k columns are the *local carries* Phase 2
    consumes.  The input array is not modified.

    ``padded`` may also be a 2D ``(B, padded_n)`` batch of independent
    sequences sharing one signature; the result is then
    ``(B, num_chunks, m)``.  Phase 1 never mixes data across chunk
    borders, so the batch rows' chunks are processed as one flat chunk
    axis — the per-chunk arithmetic is bit-identical to B separate 1D
    calls, with the Python-level dispatch paid once.

    With an enabled ``tracer``, the thread-local solve and every
    merge-doubling level emit one span each (cat ``phase1``), recording
    the pair width and how many pairs merged — the numpy mirror of the
    simulator's per-block ``merge`` events.
    """
    m = table.chunk_size
    if padded.ndim not in (1, 2):
        raise ValueError(f"expected a 1D or 2D (batch) input, got shape {padded.shape}")
    if padded.shape[-1] % m:
        raise ValueError(
            f"padded length {padded.shape[-1]} is not a multiple of m={m}"
        )
    check_integer_coefficients(table.signature.feedback, padded.dtype)
    batched = padded.ndim == 2
    work = padded.reshape(-1, m).copy()
    phase1_inplace(work, table, x, tracer=tracer)
    if batched:
        return work.reshape(padded.shape[0], -1, m)
    return work
