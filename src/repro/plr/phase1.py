"""Phase 1: hierarchical pairwise chunk merging (Section 2.1).

Phase 1 turns each size-m chunk of the input into the locally correct
recurrence result (correct under the assumption that everything before
the chunk is zero).  It mirrors the generated CUDA code's structure:

1. *Thread-local step* — each thread solves its x consecutive values
   serially (a chunk of size x is trivially correct on its own).  On
   the GPU this is in-register work; here it is one vectorized sweep
   across all threads at once.
2. *Doubling steps* — chunk widths x, 2x, 4x, ..., m/2 are merged
   pairwise.  The second chunk of each pair is corrected by adding, for
   each carry j, ``factors[j][i] * carry_j`` to its element at offset
   i.  The first log2(warp_size) of these levels correspond to shuffle
   exchanges, the rest to shared-memory exchanges; the arithmetic is
   identical, which is what makes the approach hierarchical.

The key invariant (tested directly): after the level that produces
chunks of width w, the first w outputs of every chunk-aligned window
are final, and in particular the first w outputs of the whole sequence
equal the serial reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NumericalError
from repro.obs.tracer import NULL_TRACER
from repro.plr.factors import CorrectionFactorTable

__all__ = [
    "thread_local_solve",
    "merge_level",
    "phase1",
    "doubling_widths",
    "check_integer_coefficients",
]


def check_integer_coefficients(coefficients, dtype: np.dtype) -> None:
    """Reject lossy coefficient casts before they corrupt a solve.

    Casting a fractional coefficient (``b = 0.5``) to an integer working
    dtype silently truncates it to 0, turning the recurrence into a
    different one without any error.  Integral-valued floats (``2.0``)
    cast losslessly and are allowed.  Raises
    :class:`~repro.core.errors.NumericalError` so callers (and the
    resilience chain) see a typed failure instead of corrupt output.
    """
    if not np.issubdtype(np.dtype(dtype), np.integer):
        return
    lossy = [c for c in coefficients if float(c) != int(c)]
    if lossy:
        raise NumericalError(
            f"coefficients {lossy} are fractional and cannot be computed in "
            f"{np.dtype(dtype).name} arithmetic without truncation; solve in "
            f"a floating-point dtype instead"
        )


def thread_local_solve(
    chunks: np.ndarray, feedback: list, x: int
) -> None:
    """Solve each width-x thread chunk serially, in place.

    ``chunks`` has shape (num_threads, x); column i receives
    ``sum_j b_j * column[i-j]`` for the in-chunk history only.  The loop
    runs over x (small: <= 11) and k, vectorized over all threads.
    """
    k = len(feedback)
    if np.issubdtype(chunks.dtype, np.integer):
        coeffs = [np.asarray(b, dtype=chunks.dtype) for b in feedback]
    else:
        coeffs = [chunks.dtype.type(b) for b in feedback]
    for i in range(1, x):
        acc = chunks[:, i]
        for j in range(1, min(i, k) + 1):
            acc = acc + coeffs[j - 1] * chunks[:, i - j]
        chunks[:, i] = acc


def merge_level(
    pairs: np.ndarray, table: CorrectionFactorTable, width: int
) -> None:
    """Merge adjacent chunk pairs of the given width, in place.

    ``pairs`` has shape (num_pairs, 2*width).  For each carry j that
    actually exists at this width (the paper's term-suppression
    optimization: carry w[width-1-j] only exists when j < width), the
    second half gets ``factors[j][:width] * carry_j`` added.
    """
    k = table.order
    factors = table.factors
    second = pairs[:, width:]
    for j in range(min(k, width)):
        carry = pairs[:, width - 1 - j]
        second += factors[j, :width][None, :] * carry[:, None]


def doubling_widths(x: int, chunk_size: int) -> list[int]:
    """The sequence of pair widths Phase 1 merges: x, 2x, ..., m/2.

    ``chunk_size`` must be x times a power of two; this is guaranteed by
    the planner (m = 1024 * x) and validated here.
    """
    widths = []
    width = x
    while width < chunk_size:
        widths.append(width)
        width *= 2
    if width != chunk_size:
        raise ValueError(
            f"chunk size {chunk_size} is not x={x} times a power of two"
        )
    return widths


def phase1(
    padded: np.ndarray,
    table: CorrectionFactorTable,
    x: int,
    tracer=NULL_TRACER,
) -> np.ndarray:
    """Run Phase 1 over all chunks; returns the (num_chunks, m) partial.

    ``padded`` is the input after the map stage, zero-padded to a whole
    number of chunks, flattened.  The result is locally correct within
    each chunk; the last k columns are the *local carries* Phase 2
    consumes.  The input array is not modified.

    ``padded`` may also be a 2D ``(B, padded_n)`` batch of independent
    sequences sharing one signature; the result is then
    ``(B, num_chunks, m)``.  Phase 1 never mixes data across chunk
    borders, so the batch rows' chunks are processed as one flat chunk
    axis — the per-chunk arithmetic is bit-identical to B separate 1D
    calls, with the Python-level dispatch paid once.

    With an enabled ``tracer``, the thread-local solve and every
    merge-doubling level emit one span each (cat ``phase1``), recording
    the pair width and how many pairs merged — the numpy mirror of the
    simulator's per-block ``merge`` events.
    """
    m = table.chunk_size
    if padded.ndim not in (1, 2):
        raise ValueError(f"expected a 1D or 2D (batch) input, got shape {padded.shape}")
    if padded.shape[-1] % m:
        raise ValueError(
            f"padded length {padded.shape[-1]} is not a multiple of m={m}"
        )
    check_integer_coefficients(table.signature.feedback, padded.dtype)
    feedback = [
        b if isinstance(b, int) else float(b) for b in table.signature.feedback
    ]
    batched = padded.ndim == 2
    work = padded.reshape(-1, m).copy()
    num_chunks = work.shape[0]

    if x > 1:
        thread_view = work.reshape(num_chunks * (m // x), x)
        with tracer.span(
            "thread_local_solve", cat="phase1", args={"x": x} if tracer.enabled else None
        ):
            thread_local_solve(thread_view, feedback, x)

    for width in doubling_widths(x, m):
        pairs = num_chunks * (m // (2 * width))
        pair_view = work.reshape(pairs, 2 * width)
        if tracer.enabled:
            with tracer.span(
                "merge_level", cat="phase1", args={"width": width, "pairs": pairs}
            ):
                merge_level(pair_view, table, width)
        else:
            merge_level(pair_view, table, width)
    if batched:
        return work.reshape(padded.shape[0], -1, m)
    return work
