"""Correction-factor tables and their structural analysis.

A :class:`CorrectionFactorTable` holds the k factor lists of length m
that Phase 1 and Phase 2 consume (Section 3, code section 1: "k constant
arrays of size m that are initialized with the correction factors").

The table also answers the structural questions the PLR optimizer asks
(Section 3.1):

* is a factor list constant?  (standard prefix sum: every factor is 1)
* does it contain only zeros and ones?  (tuple prefix sums)
* is it periodic?  (tuple prefix sums again: 0,1,0,1,... patterns)
* does it decay to exactly zero after some index?  (stable IIR filters,
  after flushing denormals to zero)
* is one list a one-position shift of another?  (first vs last carry
  list for k > 1; the paper lists suppressing one of them as future
  work, we implement it)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.nnacci import correction_factors
from repro.core.signature import Signature
from repro.core.ztransform import poles
from repro.obs.metrics import global_metrics

__all__ = ["CorrectionFactorTable", "FLOAT32_SMALLEST_NORMAL"]

FLOAT32_SMALLEST_NORMAL = float(np.finfo(np.float32).tiny)
"""Magnitudes below this are denormal in float32 and get flushed to 0.

The paper: "To speed up this effect, we flush denormal values to zero."
"""


@dataclass(frozen=True)
class CorrectionFactorTable:
    """The k-by-m table of precomputed correction factors.

    Row ``j`` multiplies carry ``w[m-1-j]`` (most recent carry first);
    column ``i`` corrects the element at offset ``i`` past a chunk
    border.  Rows are materialized once per (signature, m, dtype) and
    shared by Phase 1, Phase 2, the code generators, and the cost model.
    """

    signature: Signature
    chunk_size: int
    factors: np.ndarray  # shape (k, chunk_size)
    flushed_denormals: bool
    spectral_radius: float | None = None
    """Largest pole magnitude of the recursive signature (float tables
    only).  The factor lists are n-nacci runs, i.e. geometric sequences
    with this growth rate: for spectral radius rho > 1 the factors grow
    like rho^m and overflow float32 long before the paper's m = 11264
    chunk size."""
    overflow_risk: bool = False
    """True when the spectral radius predicts (or the built table
    contains) values beyond the dtype's finite range.  Integer tables
    never set this: they wrap around like the 32-bit CUDA arithmetic
    they model."""
    _width_rows: dict = field(default_factory=dict, repr=False, compare=False)
    """Memoized per-width factor prefixes; see :meth:`rows_for_width`."""

    @classmethod
    def build(
        cls,
        signature: Signature,
        chunk_size: int,
        dtype: np.dtype | type,
        flush_denormals: bool = True,
    ) -> "CorrectionFactorTable":
        """Generate the table for the recursive part of ``signature``.

        Integer tables wrap around like the 32-bit CUDA arithmetic the
        paper's generated code uses.  Floating-point tables optionally
        flush denormals to zero, which is what makes stable filters'
        factor tails *exactly* zero and enables the warp-skipping
        optimization.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
        recursive = signature.recursive_part()
        dtype = np.dtype(dtype)
        k = recursive.order
        table = np.empty((k, chunk_size), dtype=dtype)
        flushed = False
        radius: float | None = None
        overflow = False
        if np.issubdtype(dtype, np.integer):
            info = np.iinfo(dtype)
            width = int(info.max) - int(info.min) + 1
            for j in range(k):
                exact = correction_factors(recursive, j, chunk_size)
                table[j, :] = [
                    ((int(v) - int(info.min)) % width) + int(info.min) for v in exact
                ]
        else:
            # Generate in float64 then cast, so that decay behaviour is
            # governed by the target precision, not by python floats.
            with np.errstate(over="ignore"):
                for j in range(k):
                    exact = correction_factors(recursive, j, chunk_size)
                    row = np.asarray([float(v) for v in exact], dtype=np.float64)
                    table[j, :] = row.astype(dtype)
            if flush_denormals and dtype == np.float32:
                mask = np.abs(table) < FLOAT32_SMALLEST_NORMAL
                if mask.any():
                    table[mask] = 0.0
                    flushed = True
            # Overflow prediction (resilience): factor row j is an
            # n-nacci run whose growth rate is the spectral radius, so
            # rho^(m-1) estimates the largest factor magnitude without
            # touching the (possibly already saturated) table values.
            radius = max((abs(p) for p in poles(recursive)), default=0.0)
            if radius > 1.0:
                log_peak = (chunk_size - 1) * math.log(radius)
                overflow = log_peak > math.log(float(np.finfo(dtype).max))
            if not overflow:
                overflow = not bool(np.isfinite(table).all())
        table.setflags(write=False)
        # Build accounting: every construction (cache misses, in
        # practice) is counted, and tables whose spectral radius
        # predicts float saturation are tallied separately so an
        # operator can spot overflow-prone signatures in a metrics
        # dump without scraping logs.
        registry = global_metrics()
        registry.counter("factor_table.builds").inc()
        if overflow:
            registry.counter("factor_table.overflow_risk").inc()
        if flushed:
            registry.counter("factor_table.flushed_denormals").inc()
        return cls(signature, chunk_size, table, flushed, radius, overflow)

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return int(self.factors.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.factors.dtype

    def row(self, carry_index: int) -> np.ndarray:
        """The factor list for carry ``w[m-1-carry_index]``."""
        return self.factors[carry_index]

    def rows_for_width(self, width: int) -> tuple[np.ndarray, ...]:
        """The factor prefixes ``factors[j, :width]`` for every carry
        that exists at this merge width (j < min(k, width)).

        Phase 1's doubling levels consume exactly these prefixes once
        per level; memoizing them here means ``merge_level`` re-slices
        nothing on the hot path — repeated solves under one table reuse
        the same read-only views.
        """
        rows = self._width_rows.get(width)
        if rows is None:
            rows = tuple(
                self.factors[j, :width] for j in range(min(self.order, width))
            )
            self._width_rows[width] = rows
        return rows

    # ------------------------------------------------------------------
    # Structural analyses feeding the Section 3.1 optimizations
    # ------------------------------------------------------------------
    def constant_value(self, carry_index: int) -> float | int | None:
        """The single value of a constant row, or None.

        "If it finds that all elements are identical within a
        correction-factor array, the array is suppressed and its
        accesses are replaced by the appropriate constant."
        """
        row = self.factors[carry_index]
        first = row[0]
        if np.all(row == first):
            return first.item()
        return None

    def is_zero_one(self, carry_index: int) -> bool:
        """True when every factor in the row is 0 or 1.

        "If all array elements are either zero or one, the code
        generator emits code to conditionally add the correction terms
        rather than multiplying them by the factors."
        """
        row = self.factors[carry_index]
        return bool(np.all((row == 0) | (row == 1)))

    MAX_PERIOD = 64
    """Longest repetition period the analysis looks for.  Real
    recurrences with periodic factors (tuple prefix sums, alternating
    signs) have tiny periods; bounding the search keeps the analysis
    O(MAX_PERIOD * m) instead of O(m^2) for the non-periodic rows."""

    def period(self, carry_index: int) -> int | None:
        """The smallest repetition period of the row, if any.

        "If the correction factors repeat, only the first 'repetition'
        is emitted."  A constant row has period 1; a row with no
        repetition (within :data:`MAX_PERIOD`) returns None.  The
        period need not divide the row length — ``row[i] == row[i-p]``
        for all i >= p is the test.
        """
        row = self.factors[carry_index]
        m = len(row)
        for p in range(1, min(self.MAX_PERIOD, m // 2) + 1):
            if np.array_equal(row[p:], row[:-p]):
                return p
        return None

    def decay_index(self, carry_index: int) -> int | None:
        """First index past which every factor is exactly zero.

        For stable IIR filters the factor lists are the (shifted)
        impulse response, which decays below float32 precision after a
        few hundred elements; with denormals flushed the tail becomes
        exactly zero and Phase 1 work for those positions can be
        skipped.  Returns None when the row never becomes all-zero
        (prefix sums), and 0 when the row is entirely zero.
        """
        row = self.factors[carry_index]
        nonzero = np.nonzero(row)[0]
        if len(nonzero) == 0:
            return 0
        last = int(nonzero[-1])
        if last == len(row) - 1:
            return None
        return last + 1

    @cached_property
    def max_decay_index(self) -> int | None:
        """Where *all* rows have decayed to zero, or None if any never does."""
        indices = [self.decay_index(j) for j in range(self.order)]
        if any(i is None for i in indices):
            return None
        return max(indices)  # type: ignore[type-var]

    def shifted_duplicate_rows(self) -> tuple[int, int] | None:
        """Detect the first/last-carry shift identity for k > 1.

        "The first and last correction-factor arrays always contain the
        same values except shifted by one position (for k > 1), so one
        of these two arrays could be suppressed" (Section 3.1, future
        work).  Returns the row pair (0, k-1) when row k-1 equals row 0
        shifted right by one position with the last feedback coefficient
        filling the hole, else None.

        Derivation: row 0 is the n-nacci run seeded 0,...,0,1 and row
        k-1 is seeded 1,0,...,0; both satisfy the same recurrence, and
        row_{k-1}[i] = b_k * row_0[i-1] for i >= 1 with
        row_{k-1}[0] = b_k.  We detect the scaled-shift relation for any
        b_k, which subsumes the paper's b_k = 1 pure-shift case.
        """
        if self.order < 2:
            return None
        first = self.factors[0]
        last = self.factors[self.order - 1]
        b_k = self.dtype.type(self.signature.feedback[-1])
        if last[0] != b_k:
            return None
        predicted = b_k * first[:-1]
        if np.issubdtype(self.dtype, np.integer):
            match = np.array_equal(last[1:], predicted)
        else:
            # The identity is exact in real arithmetic; the two float
            # evaluations differ by rounding only.  Code that derives
            # the suppressed row as b_k * first[i-1] at runtime stays
            # comfortably inside the paper's 1e-3 validation bound.
            eps = float(np.finfo(self.dtype).eps)
            scale = np.maximum(np.abs(last[1:]), 1.0)
            match = bool(np.all(np.abs(last[1:] - predicted) <= 64 * eps * scale))
        return (0, self.order - 1) if match else None

    def describe(self) -> str:
        """A short human-readable summary used by the CLI."""
        parts = []
        for j in range(self.order):
            props = []
            const = self.constant_value(j)
            if const is not None:
                props.append(f"constant={const}")
            elif self.is_zero_one(j):
                props.append("zero/one")
            p = self.period(j)
            if p is not None and const is None:
                props.append(f"period={p}")
            d = self.decay_index(j)
            if d is not None:
                props.append(f"decays@{d}")
            if not props:
                props.append("general")
            parts.append(f"carry {j}: " + ", ".join(props))
        return "; ".join(parts)
