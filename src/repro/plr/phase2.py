"""Phase 2: pipelined chunk correction with variable look-back (§2.2).

After Phase 1, every chunk is locally correct and has published its
*local carries* (its last k values).  Phase 2 turns local into *global*
correctness:

* the global carries of chunk c are its local carries corrected by the
  global carries of chunk c-1 through the k-by-k carry-transition
  matrix M (``G_c = L_c + M @ G_{c-1}``, O(k^2) per chunk);
* every element of chunk c is then corrected with
  ``sum_j factors[j][i] * G_{c-1}[j]``.

On the GPU this runs decoupled: a chunk takes the *most recent
available* global carries (distance c <= 32 back) plus all intervening
local carries and hops forward through M — Merrill & Garland's variable
look-back, which this module implements in :func:`lookback_combine`.
The numpy solver uses the sequential form (identical semantics: the
look-back recursion is exactly the same affine map, associated the same
way); the event-ordered GPU simulator exercises the decoupled protocol
itself, including out-of-order chunk completion.
"""

from __future__ import annotations

import numpy as np

from repro.core.nnacci import carry_transition_matrix
from repro.obs.tracer import NULL_TRACER, TracePid
from repro.plr.factors import CorrectionFactorTable

__all__ = [
    "transition_matrix",
    "local_carries",
    "propagate_carries",
    "lookback_combine",
    "apply_global_correction",
    "phase2",
]


def transition_matrix(table: CorrectionFactorTable) -> np.ndarray:
    """The k-by-k matrix M with ``G_c = L_c + M @ G_{c-1}``.

    Row r corresponds to the carry at offset m-1-r (most recent first).
    Read straight out of the factor table: M[r, j] = factors[j, m-1-r].
    Matches :func:`repro.core.nnacci.carry_transition_matrix`, which
    recomputes it from first principles and serves as the test oracle.
    """
    k = table.order
    m = table.chunk_size
    matrix = np.empty((k, k), dtype=table.dtype)
    for r in range(k):
        matrix[r, :] = table.factors[:, m - 1 - r]
    return matrix


def local_carries(partial: np.ndarray, order: int) -> np.ndarray:
    """Extract the (..., num_chunks, k) local carries, most recent first.

    Column j of the result is the chunk value at offset m-1-j, i.e. the
    carry w[m-1-j] that factor row j multiplies.  ``partial`` may carry
    leading batch axes before the (num_chunks, m) chunk matrix.
    """
    m = partial.shape[-1]
    if m < order:
        raise ValueError(f"chunk size {m} smaller than order {order}")
    # partial[..., m-1], partial[..., m-2], ..., partial[..., m-k]
    return partial[..., m - order : m][..., ::-1]


def propagate_carries(locals_: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Sequentially compute global carries for every chunk.

    ``G_0 = L_0`` (nothing precedes the first chunk) and
    ``G_c = L_c + M @ G_{c-1}``.  This is the serial spine of Phase 2 —
    O(num_chunks * k^2) work, tiny next to the O(n k) element
    correction.

    ``locals_`` may carry leading batch axes before (num_chunks, k);
    the spine then walks the chunk axis once while every batch row's
    matrix-vector product runs in the same vectorized step.
    """
    num_chunks = locals_.shape[-2]
    out = np.empty_like(locals_)
    if num_chunks == 0:
        return out
    out[..., 0, :] = locals_[..., 0, :]
    if locals_.ndim == 2:
        for c in range(1, num_chunks):
            out[c] = locals_[c] + matrix @ out[c - 1]
        return out
    transposed = matrix.T
    for c in range(1, num_chunks):
        out[..., c, :] = locals_[..., c, :] + out[..., c - 1, :] @ transposed
    return out


def lookback_combine(
    base_global: np.ndarray,
    intervening_locals: np.ndarray,
    matrix: np.ndarray,
) -> np.ndarray:
    """Hop global carries forward over intervening chunks (§2.3).

    Given the global carries of some chunk c-d and the local carries of
    chunks c-d+1, ..., c (in order), returns the global carries of
    chunk c by applying ``G <- L + M @ G`` once per hop — the O(c k^2)
    carry precomputation that lets Phase 2 start on a chunk before its
    immediate predecessor has finished.
    """
    carries = np.array(base_global, copy=True)
    for loc in intervening_locals:
        carries = loc + matrix @ carries
    return carries


def apply_global_correction(
    partial: np.ndarray,
    global_carries: np.ndarray,
    table: CorrectionFactorTable,
) -> np.ndarray:
    """Correct every chunk with its predecessor's global carries.

    ``partial`` is the (num_chunks, m) Phase 1 output — optionally with
    leading batch axes — and chunk 0 is already globally correct.
    Vectorized across chunks (and batch rows): for carry j, chunk c
    (c >= 1) gains ``factors[j] * G_{c-1}[j]``.
    """
    out = partial.copy()
    if out.shape[-2] <= 1:
        return out
    k = table.order
    factors = table.factors
    prev = global_carries[..., :-1, :]  # carries feeding chunks 1..end
    for j in range(k):
        out[..., 1:, :] += factors[j] * prev[..., j][..., None]
    return out


def phase2(
    partial: np.ndarray, table: CorrectionFactorTable, tracer=NULL_TRACER
) -> np.ndarray:
    """Run Phase 2 over the Phase 1 partial result; returns (chunks, m).

    The sequential-spine formulation: extract local carries, propagate
    them through M, then apply the element-wise correction.  Exactly
    the arithmetic the pipelined GPU version performs, in a
    deterministic order.

    ``partial`` may also be a batched ``(B, chunks, m)`` Phase 1 result
    (see :func:`repro.plr.phase1.phase1`); the carry spine then walks
    the chunk axis once for all B rows and the correction broadcasts
    over the batch, returning ``(B, chunks, m)``.

    With an enabled ``tracer``, the carry-propagation and correction
    stages emit spans, and every chunk c >= 1 emits one ``lookback``
    instant (cat ``phase2``, tid = chunk id, args chunk/base/distance).
    The spine is sequential here, so the distance is always 1 — the
    decoupled variable-look-back distances come from the GPU
    simulator's traces; the shared event name lets one profile reader
    consume both.
    """
    matrix = transition_matrix(table)
    locals_ = local_carries(partial, table.order)
    with tracer.span("propagate_carries", cat="phase2"):
        global_ = propagate_carries(locals_, matrix)
    if tracer.enabled:
        for c in range(1, partial.shape[-2]):
            tracer.instant(
                "lookback",
                cat="phase2",
                pid=TracePid.HOST,
                tid=c,
                args={"chunk": c, "base": c - 1, "distance": 1},
            )
    with tracer.span("apply_global_correction", cat="phase2"):
        return apply_global_correction(partial, global_, table)
