"""Phase 2: pipelined chunk correction with variable look-back (§2.2).

After Phase 1, every chunk is locally correct and has published its
*local carries* (its last k values).  Phase 2 turns local into *global*
correctness:

* the global carries of chunk c are its local carries corrected by the
  global carries of chunk c-1 through the k-by-k carry-transition
  matrix M (``G_c = L_c + M @ G_{c-1}``, O(k^2) per chunk);
* every element of chunk c is then corrected with
  ``sum_j factors[j][i] * G_{c-1}[j]``.

On the GPU this runs decoupled: a chunk takes the *most recent
available* global carries (distance c <= 32 back) plus all intervening
local carries and hops forward through M — Merrill & Garland's variable
look-back, which this module implements in :func:`lookback_combine`.
The numpy solver uses the sequential form (identical semantics: the
look-back recursion is exactly the same affine map, associated the same
way); the event-ordered GPU simulator exercises the decoupled protocol
itself, including out-of-order chunk completion.
"""

from __future__ import annotations

import numpy as np

from repro.core.nnacci import carry_transition_matrix
from repro.obs.tracer import NULL_TRACER, TracePid
from repro.plr.factors import CorrectionFactorTable

__all__ = [
    "transition_matrix",
    "local_carries",
    "propagate_carries",
    "lookback_combine",
    "add_carry_products",
    "apply_global_correction",
    "phase2",
    "LOOKBACK_SUMMARY_THRESHOLD",
]

LOOKBACK_SUMMARY_THRESHOLD = 64
"""Chunk count above which the traced sequential spine emits one
``lookback_summary`` instant instead of a per-chunk ``lookback`` loop.

Per-chunk instants are the right shape for small runs (one timeline row
per chunk in the trace viewer) but O(num_chunks) Python work for large
ones, where only the aggregate distribution matters;
:func:`repro.obs.profile.build_profile` consumes both forms."""


def transition_matrix(table: CorrectionFactorTable) -> np.ndarray:
    """The k-by-k matrix M with ``G_c = L_c + M @ G_{c-1}``.

    Row r corresponds to the carry at offset m-1-r (most recent first).
    Read straight out of the factor table: M[r, j] = factors[j, m-1-r].
    Matches :func:`repro.core.nnacci.carry_transition_matrix`, which
    recomputes it from first principles and serves as the test oracle.
    """
    k = table.order
    m = table.chunk_size
    matrix = np.empty((k, k), dtype=table.dtype)
    for r in range(k):
        matrix[r, :] = table.factors[:, m - 1 - r]
    return matrix


def local_carries(partial: np.ndarray, order: int) -> np.ndarray:
    """Extract the (..., num_chunks, k) local carries, most recent first.

    Column j of the result is the chunk value at offset m-1-j, i.e. the
    carry w[m-1-j] that factor row j multiplies.  ``partial`` may carry
    leading batch axes before the (num_chunks, m) chunk matrix.
    """
    m = partial.shape[-1]
    if m < order:
        raise ValueError(f"chunk size {m} smaller than order {order}")
    # partial[..., m-1], partial[..., m-2], ..., partial[..., m-k]
    return partial[..., m - order : m][..., ::-1]


def propagate_carries(
    locals_: np.ndarray, matrix: np.ndarray, base: np.ndarray | None = None
) -> np.ndarray:
    """Sequentially compute global carries for every chunk.

    ``G_0 = L_0`` (nothing precedes the first chunk) and
    ``G_c = L_c + M @ G_{c-1}``.  This is the serial spine of Phase 2 —
    O(num_chunks * k^2) work, tiny next to the O(n k) element
    correction.

    ``base`` supplies the global carries *entering* the first chunk
    (``G_0 = L_0 + M @ base``) — the multicore backend propagates each
    slab from its scan-computed base this way.  ``base=None`` is the
    zero-history case and matches the historical behaviour bit for bit.

    ``locals_`` may carry leading batch axes before (num_chunks, k);
    the spine then walks the chunk axis once while every batch row's
    matrix-vector product runs in the same vectorized step.
    """
    num_chunks = locals_.shape[-2]
    out = np.empty_like(locals_)
    if num_chunks == 0:
        return out
    if locals_.ndim == 2:
        if base is None:
            out[0] = locals_[0]
        else:
            out[0] = locals_[0] + matrix @ base
        for c in range(1, num_chunks):
            out[c] = locals_[c] + matrix @ out[c - 1]
        return out
    transposed = matrix.T
    if base is None:
        out[..., 0, :] = locals_[..., 0, :]
    else:
        out[..., 0, :] = locals_[..., 0, :] + np.asarray(base) @ transposed
    for c in range(1, num_chunks):
        out[..., c, :] = locals_[..., c, :] + out[..., c - 1, :] @ transposed
    return out


def lookback_combine(
    base_global: np.ndarray,
    intervening_locals: np.ndarray,
    matrix: np.ndarray,
) -> np.ndarray:
    """Hop global carries forward over intervening chunks (§2.3).

    Given the global carries of some chunk c-d and the local carries of
    chunks c-d+1, ..., c (in order), returns the global carries of
    chunk c by applying ``G <- L + M @ G`` once per hop — the O(c k^2)
    carry precomputation that lets Phase 2 start on a chunk before its
    immediate predecessor has finished.
    """
    carries = np.array(base_global, copy=True)
    for loc in intervening_locals:
        carries = loc + matrix @ carries
    return carries


_CORRECTION_BLOCK_BYTES = 1 << 20
"""Scratch budget for the blocked carry-product matmul.

Bounds the temporary :func:`add_carry_products` allocates to ~1 MiB no
matter how large the partial result is, so the in-place correction path
never re-creates the second ``(chunks, m)`` array it exists to avoid
(pinned by the tracemalloc regression test)."""


def add_carry_products(
    target: np.ndarray, prev: np.ndarray, factors: np.ndarray
) -> None:
    """Accumulate ``target[..., c, :] += prev[..., c, :] @ factors`` in place.

    ``target`` is a (..., C, m) block of chunk rows, ``prev`` the
    (..., C, k) carries feeding them, and ``factors`` the k-by-m table —
    one matmul fuses the k-carry correction loop.  Work is blocked along
    the chunk axis so the matmul scratch stays under
    :data:`_CORRECTION_BLOCK_BYTES` instead of materializing a full
    (..., C, m) product.  For k = 1 and for integer dtypes the result is
    bit-identical to the per-carry loop (one product per element, and
    wraparound integer arithmetic is exact); float k > 1 sums the carry
    terms in matmul order, within normal rounding of the loop order.
    """
    num_rows = target.shape[-2]
    if num_rows == 0:
        return
    m = target.shape[-1]
    leading = int(np.prod(target.shape[:-2], dtype=np.int64))
    row_bytes = max(1, leading * m * target.dtype.itemsize)
    block = max(1, _CORRECTION_BLOCK_BYTES // row_bytes)
    scratch = np.empty(
        target.shape[:-2] + (min(block, num_rows), m), dtype=target.dtype
    )
    for start in range(0, num_rows, block):
        stop = min(start + block, num_rows)
        view = scratch[..., : stop - start, :]
        np.matmul(prev[..., start:stop, :], factors, out=view)
        target[..., start:stop, :] += view


def apply_global_correction(
    partial: np.ndarray,
    global_carries: np.ndarray,
    table: CorrectionFactorTable,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Correct every chunk with its predecessor's global carries.

    ``partial`` is the (num_chunks, m) Phase 1 output — optionally with
    leading batch axes — and chunk 0 is already globally correct.
    Vectorized across chunks (and batch rows): chunk c (c >= 1) gains
    ``sum_j factors[j] * G_{c-1}[j]``, computed as one blocked matmul
    over the carry axis (:func:`add_carry_products`).

    ``out=None`` copies first (the historical behaviour, input left
    pristine); ``out=partial`` corrects the Phase 1 buffer in place with
    no second (chunks, m) allocation; any other ``out`` receives a copy
    of ``partial`` before correction.
    """
    if out is None:
        out = partial.copy()
    elif out is not partial:
        np.copyto(out, partial)
    if out.shape[-2] <= 1:
        return out
    prev = global_carries[..., :-1, :]  # carries feeding chunks 1..end
    add_carry_products(out[..., 1:, :], prev, table.factors)
    return out


def phase2(
    partial: np.ndarray,
    table: CorrectionFactorTable,
    tracer=NULL_TRACER,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Run Phase 2 over the Phase 1 partial result; returns (chunks, m).

    The sequential-spine formulation: extract local carries, propagate
    them through M, then apply the element-wise correction.  Exactly
    the arithmetic the pipelined GPU version performs, in a
    deterministic order.

    ``partial`` may also be a batched ``(B, chunks, m)`` Phase 1 result
    (see :func:`repro.plr.phase1.phase1`); the carry spine then walks
    the chunk axis once for all B rows and the correction broadcasts
    over the batch, returning ``(B, chunks, m)``.

    ``out`` is forwarded to :func:`apply_global_correction`;
    ``out=partial`` corrects the Phase 1 buffer in place (the local
    carries are read into the (chunks, k) spine before any element is
    touched, so self-correction is safe).

    With an enabled ``tracer``, the carry-propagation and correction
    stages emit spans.  For runs up to :data:`LOOKBACK_SUMMARY_THRESHOLD`
    corrected chunks, every chunk c >= 1 emits one ``lookback`` instant
    (cat ``phase2``, tid = chunk id, args chunk/base/distance); larger
    runs emit a single ``lookback_summary`` instant carrying the chunk
    count instead, keeping the traced hot path O(1) in Python.  The
    spine is sequential here, so the distance is always 1 — the
    decoupled variable-look-back distances come from the GPU
    simulator's traces; the shared event names let one profile reader
    consume both.
    """
    matrix = transition_matrix(table)
    locals_ = local_carries(partial, table.order)
    # Materialize the carries before any in-place correction: `locals_`
    # is a view into `partial`, which `out=partial` will overwrite.
    if out is partial:
        locals_ = np.ascontiguousarray(locals_)
    with tracer.span("propagate_carries", cat="phase2"):
        global_ = propagate_carries(locals_, matrix)
    if tracer.enabled:
        corrected = partial.shape[-2] - 1
        if corrected > LOOKBACK_SUMMARY_THRESHOLD:
            tracer.instant(
                "lookback_summary",
                cat="phase2",
                pid=TracePid.HOST,
                args={"first_chunk": 1, "chunks": corrected, "distance": 1},
            )
        else:
            for c in range(1, partial.shape[-2]):
                tracer.instant(
                    "lookback",
                    cat="phase2",
                    pid=TracePid.HOST,
                    tid=c,
                    args={"chunk": c, "base": c - 1, "distance": 1},
                )
    with tracer.span("apply_global_correction", cat="phase2"):
        return apply_global_correction(partial, global_, table, out=out)
