"""Execution planning: the m / x / register heuristics of Section 3.

"PLR sets the chunk size m for each thread block to 1024*x, where x is
the number of values each thread has to process.  x is the smallest
integer for which x * 1024 * T > n ...  Moreover, x <= 9 for
floating-point signatures and x <= 11 for integer signatures.  PLR
allocates 32 registers per thread for floating-point signatures as well
as for integer signatures that only contain ones and zeros ...  For
more complex integer signatures, it allocates 64 registers per thread."

T, the number of thread blocks the GPU can run simultaneously, follows
from the register budget: with 65,536 registers per SM, 1024-thread
blocks at 32 regs/thread give 2 resident blocks per SM; at 64
regs/thread, 1.

The paper notes these heuristics are crude and defers tuning m and x to
future work; :func:`tuned_plan` implements a SAM-style auto-tuner as
that extension.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.core.errors import PlanError
from repro.core.signature import Signature
from repro.gpusim.spec import MachineSpec

__all__ = ["ExecutionPlan", "plan_execution", "tuned_plan", "MAX_PIPELINE_DEPTH"]

MAX_PIPELINE_DEPTH = 32
"""Maximum look-back distance c; one warp handles the carries."""

CONSULT_DEFAULT_POLICY = object()
"""Sentinel for ``policy``: consult the process-wide tuning policy
(:func:`repro.tune.default_policy`).  Pass ``None`` to plan purely from
the paper's heuristics — what the tuner itself does while measuring, so
an existing table can never steer its own re-measurement."""

_MAX_X_FLOAT = 9
_MAX_X_INT = 11


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything the solver, simulator, and codegen need to agree on.

    Attributes
    ----------
    n:
        Input length in words.
    block_size:
        Threads per block (the paper always uses 1024).
    values_per_thread:
        The paper's x.
    chunk_size:
        The paper's m = block_size * x; Phase 1 stops here.
    registers_per_thread:
        32 or 64, per the paper's heuristic.
    resident_blocks:
        The paper's T — blocks the whole GPU holds concurrently.
    num_chunks:
        ceil(n / chunk_size); also the grid size.
    pipeline_depth:
        The paper's c <= 32.
    warp_size:
        Lanes per warp (32 on all NVIDIA parts the paper targets).
    is_integer:
        Whether the plan computes in integer arithmetic.
    """

    n: int
    block_size: int
    values_per_thread: int
    chunk_size: int
    registers_per_thread: int
    resident_blocks: int
    num_chunks: int
    pipeline_depth: int
    warp_size: int
    is_integer: bool

    @property
    def padded_n(self) -> int:
        """Input length rounded up to a whole number of chunks."""
        return self.num_chunks * self.chunk_size

    @property
    def warps_per_block(self) -> int:
        return self.block_size // self.warp_size

    def describe(self) -> str:
        return (
            f"n={self.n} m={self.chunk_size} x={self.values_per_thread} "
            f"blocks={self.num_chunks} resident={self.resident_blocks} "
            f"regs={self.registers_per_thread} c<={self.pipeline_depth}"
        )


def _measured_values_per_thread(
    policy, signature: Signature, n: int, dtype, is_integer: bool
) -> int | None:
    """A calibrated x for this exact bucket, or None for the heuristic.

    Lazy and fault-isolated: tuning is advisory, so any failure here —
    including an import failure in a stripped install — silently keeps
    the paper's plan.
    """
    try:
        if policy is CONSULT_DEFAULT_POLICY:
            from repro.tune.policy import default_policy

            policy = default_policy()
        if dtype is None:
            dtype = np.int32 if is_integer else np.float32
        return policy.recommend_values_per_thread(signature, n, dtype)
    except Exception:
        return None


def _signature_is_simple_integer(signature: Signature) -> bool:
    """Integer signatures whose coefficients are all 0/1 get 32 regs."""
    coeffs = signature.feedforward + signature.feedback
    return all(isinstance(c, int) and c in (0, 1) for c in coeffs)


def plan_execution(
    signature: Signature,
    n: int,
    machine: MachineSpec | None = None,
    policy=CONSULT_DEFAULT_POLICY,
    dtype=None,
) -> ExecutionPlan:
    """Build the execution plan for a given input size.

    The paper's m/x/T heuristics produce the base plan; when the
    machine has been calibrated (``plr tune``), a measured
    values-per-thread for this exact (signature class, n bucket, dtype)
    overrides the heuristic x — the paper defers tuning m and x to
    future work, and the calibration table is that future work.  Pass
    ``policy=None`` for the pure paper heuristics.

    Raises :class:`PlanError` for empty inputs or inputs beyond the
    4 GB / 2^30-word limit the paper states.
    """
    if machine is None:
        machine = MachineSpec.titan_x()
    if n < 1:
        raise PlanError(f"input length must be >= 1, got {n}")
    if n > 2**30:
        raise PlanError(
            f"input length {n} exceeds the 2^30-word (4 GB) limit PLR supports"
        )

    is_integer = signature.is_integer
    if not is_integer or _signature_is_simple_integer(signature):
        registers = 32
    else:
        registers = 64
    block_size = machine.max_threads_per_block
    blocks_per_sm = max(1, machine.registers_per_sm // (registers * block_size))
    resident = blocks_per_sm * machine.num_sms

    max_x = _MAX_X_INT if is_integer else _MAX_X_FLOAT
    # Smallest x with x * 1024 * T > n, clamped to the per-dtype maximum.
    x = max(1, -(-n // (block_size * resident)))
    if x * block_size * resident <= n:
        x += 1
    x = min(x, max_x)

    if policy is not None:
        measured_x = _measured_values_per_thread(
            policy, signature, n, dtype, is_integer
        )
        if measured_x is not None:
            x = min(max(1, measured_x), max_x)

    chunk_size = block_size * x
    num_chunks = -(-n // chunk_size)
    return ExecutionPlan(
        n=n,
        block_size=block_size,
        values_per_thread=x,
        chunk_size=chunk_size,
        registers_per_thread=registers,
        resident_blocks=resident,
        num_chunks=num_chunks,
        pipeline_depth=MAX_PIPELINE_DEPTH,
        warp_size=machine.warp_size,
        is_integer=is_integer,
    )


def tuned_plan(
    signature: Signature,
    n: int,
    objective: Callable[[ExecutionPlan], float] | None = None,
    machine: MachineSpec | None = None,
    candidate_x: Sequence[int] | None = None,
    policy=CONSULT_DEFAULT_POLICY,
) -> ExecutionPlan:
    """SAM-style auto-tuning of x (paper Section 3: future work).

    Evaluates ``objective`` (lower is better — e.g. modeled or measured
    runtime) over candidate values of x and returns the plan with the
    best score.  SAM "runs an auto-tuner upon installation that
    determines the optimal number of elements to assign to each thread
    for different problem sizes"; this is the same idea applied to PLR.

    With ``objective=None`` the calibration database *is* the
    objective: the plan uses the machine's measured values-per-thread
    when one exists (see :mod:`repro.tune`), and the paper's heuristic
    plan otherwise — install-time measurement standing in for a
    hand-written cost model.
    """
    if objective is None:
        return plan_execution(signature, n, machine, policy=policy)
    base = plan_execution(signature, n, machine, policy=None)
    max_x = _MAX_X_INT if base.is_integer else _MAX_X_FLOAT
    if candidate_x is None:
        candidate_x = range(1, max_x + 1)
    best: ExecutionPlan | None = None
    best_score = np.inf
    for x in candidate_x:
        if not 1 <= x <= max_x:
            raise PlanError(f"candidate x={x} outside [1, {max_x}]")
        chunk = base.block_size * x
        candidate = replace(
            base,
            values_per_thread=x,
            chunk_size=chunk,
            num_chunks=-(-n // chunk),
        )
        score = objective(candidate)
        if score < best_score:
            best, best_score = candidate, score
    assert best is not None  # candidate list is never empty
    return best
