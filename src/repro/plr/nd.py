"""Multi-dimensional recurrences: batched rows, 2D filters, SATs.

The paper's future work lists "multiple dimensions"; its two image-
processing baselines (Alg3, Rec) exist precisely because 2D recursive
filtering matters.  This module provides that on top of the 1D
machinery:

* :func:`solve_batch` — many independent sequences at once.  The
  algorithm is unchanged; the win is that Phase 1's merges and Phase
  2's carry spine vectorize across the batch (the per-chunk-index loop
  advances *every* row simultaneously), so filtering a 4096-row image
  costs barely more Python overhead than one row.
* :func:`filter_axis` — apply a recurrence along either axis of a 2D
  array (rows are independent sequences, exactly how Alg3/Rec treat
  scanlines).
* :func:`filter2d` — separable row-then-column filtering, the
  composition Nehab et al. optimize.
* :func:`summed_area_table` — prefix sums along both axes, the classic
  SAT primitive (Hensley et al.; cited in Related Work).

All of it validates against row-/column-wise serial references.
"""

from __future__ import annotations

import numpy as np

from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype
from repro.core.signature import Signature
from repro.obs.tracer import NULL_TRACER
from repro.plr.phase1 import check_integer_coefficients, phase1
from repro.plr.phase2 import phase2
from repro.plr.planner import ExecutionPlan, plan_execution
from repro.plr.solver import cached_factor_table

__all__ = ["solve_batch", "filter_axis", "filter2d", "summed_area_table"]


def _as_recurrence(recurrence: Recurrence | Signature | str) -> Recurrence:
    if isinstance(recurrence, str):
        return Recurrence.parse(recurrence)
    if isinstance(recurrence, Signature):
        return Recurrence(recurrence)
    return recurrence


def solve_batch(
    values: np.ndarray,
    recurrence: Recurrence | Signature | str,
    dtype: np.dtype | None = None,
    plan: ExecutionPlan | None = None,
    tracer=NULL_TRACER,
    backend: str = "single",
    shard_options=None,
) -> np.ndarray:
    """Compute the recurrence independently over every row of ``values``.

    ``values`` has shape (rows, n); each row is its own sequence with
    its own zero history.  Returns an array of the same shape.  This is
    the vectorized core the batched execution engine
    (:mod:`repro.batch`) builds on: Phase 1 runs over all (row, chunk)
    pairs at once and Phase 2's carry spine walks the chunk axis once
    for every row simultaneously.

    ``plan`` overrides the paper's planner (the batch engine passes the
    plan it grouped requests under); ``tracer`` threads an optional
    :class:`~repro.obs.tracer.Tracer` into the phase kernels.

    ``backend="process"`` shards the *batch axis* across a multicore
    pool (:func:`repro.parallel.solve_batch_sharded`): rows are
    independent, so each worker completes its rows end to end with no
    carry exchange; ``shard_options`` tunes the pool.
    """
    if backend not in ("single", "process"):
        raise ValueError(
            f"unknown backend {backend!r}; expected 'single' or 'process'"
        )
    recurrence = _as_recurrence(recurrence)
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"expected a 2D (rows, n) array, got shape {values.shape}")
    rows, n = values.shape
    if rows == 0 or n == 0:
        return values.astype(dtype or values.dtype)
    if dtype is None:
        dtype = resolve_dtype(recurrence.signature, values.dtype)
    dtype = np.dtype(dtype)
    check_integer_coefficients(
        recurrence.signature.feedforward + recurrence.signature.feedback, dtype
    )

    work = values.astype(dtype, copy=False)
    if recurrence.has_map_stage:
        ff = [
            a if isinstance(a, int) else float(a)
            for a in recurrence.signature.feedforward
        ]
        mapped = np.zeros_like(work)
        for j, a in enumerate(ff):
            if a == 0:
                continue
            coeff = np.asarray(a, dtype=dtype) if dtype.kind == "i" else dtype.type(a)
            if j == 0:
                mapped += coeff * work
            else:
                mapped[:, j:] += coeff * work[:, :-j]
        work = mapped

    if plan is None:
        plan = plan_execution(recurrence.signature, n)
    m = plan.chunk_size
    chunks = -(-n // m)
    padded = np.zeros((rows, chunks * m), dtype=dtype)
    padded[:, :n] = work

    table = cached_factor_table(recurrence.recursive_signature, m, dtype)

    if backend == "process":
        from repro.parallel.backend import solve_batch_sharded

        corrected = solve_batch_sharded(
            padded, table, plan.values_per_thread, options=shard_options, tracer=tracer
        )
        return corrected.reshape(rows, chunks * m)[:, :n]

    # Phase 1 treats every (row, chunk) pair as an independent chunk;
    # Phase 2 runs its carry spine once, vectorized across all rows.
    # `padded` is a fresh local buffer, so Phase 2 corrects the Phase 1
    # result in place — no second (rows * chunks, m) allocation.
    partial = phase1(padded, table, plan.values_per_thread, tracer=tracer)
    corrected = phase2(partial, table, tracer=tracer, out=partial)
    return corrected.reshape(rows, chunks * m)[:, :n]


def filter_axis(
    image: np.ndarray,
    recurrence: Recurrence | Signature | str,
    axis: int = 1,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Apply a recurrence along one axis of a 2D array.

    ``axis=1`` filters each row left to right (the paper's 1D case per
    scanline); ``axis=0`` filters each column top to bottom.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2D image, got shape {image.shape}")
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    if axis == 1:
        return solve_batch(image, recurrence, dtype=dtype)
    return solve_batch(image.T, recurrence, dtype=dtype).T


def filter2d(
    image: np.ndarray,
    row_recurrence: Recurrence | Signature | str,
    column_recurrence: Recurrence | Signature | str | None = None,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Separable 2D filtering: rows first, then columns.

    With ``column_recurrence`` omitted the same filter runs both ways —
    the symmetric case Alg3/Rec optimize for images.
    """
    if column_recurrence is None:
        column_recurrence = row_recurrence
    horizontal = filter_axis(image, row_recurrence, axis=1, dtype=dtype)
    return filter_axis(horizontal, column_recurrence, axis=0, dtype=dtype)


def summed_area_table(image: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
    """The summed-area table: SAT[i, j] = sum of image[:i+1, :j+1].

    Two passes of the standard prefix sum — the primitive behind fast
    box filtering (Hensley et al. 2005, cited by the paper).
    """
    return filter2d(image, Signature.prefix_sum(), dtype=dtype)
