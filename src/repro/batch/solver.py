"""The vectorized batch solver: B independent inputs, one pass.

:class:`BatchSolver` is the (B, n) counterpart of
:class:`~repro.plr.solver.PLRSolver`: every row is an independent
sequence with its own zero history, computed under one shared execution
plan and one shared correction-factor table.  There is no per-request
Python loop anywhere on the path — Phase 1 merges all (row, chunk)
pairs at once and Phase 2's carry spine advances every row per chunk
step (see :func:`repro.plr.nd.solve_batch`, which this class wraps with
planning, tracing, and empty-input handling).

Equivalence contract: for any row, ``BatchSolver.solve(batch)[i]``
equals ``PLRSolver.solve(batch[i])`` under the same plan — exactly for
integer dtypes (wrap-around arithmetic is chunking-invariant), and to
within a few ulps for floats (the spine uses a matrix product where the
single-request path uses a matrix-vector product).
"""

from __future__ import annotations

import numpy as np

from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype
from repro.core.signature import Signature
from repro.gpusim.spec import MachineSpec
from repro.obs.tracer import coerce_tracer
from repro.plr.nd import solve_batch
from repro.plr.planner import ExecutionPlan, plan_execution

__all__ = ["BatchSolver"]


class BatchSolver:
    """Computes one recurrence over a (B, n) batch in a single pass.

    Parameters
    ----------
    recurrence:
        The recurrence (or signature / signature string) every row
        computes.
    machine:
        The GPU whose planning heuristics to follow (default: the
        paper's Titan X) — rows share one plan chosen for the common
        row length.
    tracer:
        Observability hook (``True`` / a shared tracer / ``None``).
    backend:
        ``"single"`` (default) vectorizes in this process;
        ``"process"`` shards the batch axis across a multicore pool —
        rows are independent, so workers need no carry exchange at all
        (see :func:`repro.parallel.solve_batch_sharded`);
        ``"native"`` runs each row through the JIT-compiled C kernel
        (:mod:`repro.codegen.jit` — one compile per (signature, plan,
        dtype), then a dict lookup per row), degrading to the
        vectorized numpy pass with a ``native.fallbacks`` count when no
        compiler is available or compilation fails;
        ``"auto"`` consults the machine's calibration table
        (:mod:`repro.tune`) per solve and dispatches to whichever of
        the above measured fastest for this (signature class, row
        length, dtype), with the static heuristics as the cold-table
        fallback.
    workers / shard_options:
        Process-backend pool tuning, as on
        :class:`~repro.plr.solver.PLRSolver`.
    policy:
        ``backend="auto"`` only: the tuning policy to consult; the
        process-wide default when None.
    """

    def __init__(
        self,
        recurrence: Recurrence | Signature | str,
        machine: MachineSpec | None = None,
        tracer=None,
        backend: str = "single",
        workers: int | None = None,
        shard_options=None,
        policy=None,
    ) -> None:
        if isinstance(recurrence, str):
            recurrence = Recurrence.parse(recurrence)
        elif isinstance(recurrence, Signature):
            recurrence = Recurrence(recurrence)
        if backend not in ("single", "process", "native", "auto"):
            raise ValueError(
                f"unknown backend {backend!r}; expected 'single', 'process', "
                f"'native', or 'auto'"
            )
        self.recurrence = recurrence
        self.machine = machine or MachineSpec.titan_x()
        self.tracer = coerce_tracer(tracer)
        self.backend = backend
        self.policy = policy
        self._native_solver = None
        if shard_options is None:
            from repro.parallel.sharding import ShardOptions

            shard_options = ShardOptions(workers=workers)
        self.shard_options = shard_options

    def plan_for(self, n: int) -> ExecutionPlan:
        """The shared plan for rows of length n (same planner as PLR)."""
        return plan_execution(self.recurrence.signature, n, self.machine)

    def solve(
        self,
        values: np.ndarray,
        plan: ExecutionPlan | None = None,
        dtype: np.dtype | None = None,
    ) -> np.ndarray:
        """Compute the recurrence over every row of ``values``.

        ``values`` has shape (B, n); returns the same shape.  B = 0 or
        n = 0 short-circuits to an empty result (the planner cannot —
        and need not — plan a zero-length solve).
        """
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(
                f"expected a 2D (batch, n) array, got shape {values.shape}"
            )
        rows, n = values.shape
        if dtype is None:
            dtype = resolve_dtype(self.recurrence.signature, values.dtype)
        dtype = np.dtype(dtype)
        if rows == 0 or n == 0:
            return values.astype(dtype)
        backend = self.backend
        if backend == "auto":
            backend = self._resolve_auto(n, dtype)
        if plan is None:
            with self.tracer.span(
                "plan",
                cat="batch",
                args={"batch": rows, "n": n} if self.tracer.enabled else None,
            ):
                plan = self.plan_for(n)
        if backend == "native":
            out = self._solve_native(values, plan, dtype)
            if out is not None:
                return out
        with self.tracer.span(
            "batch_solve",
            cat="batch",
            args={"batch": rows, "n": n, "m": plan.chunk_size}
            if self.tracer.enabled
            else None,
        ):
            return solve_batch(
                values,
                self.recurrence,
                dtype=dtype,
                plan=plan,
                tracer=self.tracer,
                backend="single" if backend == "native" else backend,
                shard_options=self.shard_options,
            )

    def _resolve_auto(self, n: int, dtype) -> str:
        """One tuning decision for the whole batch (rows share a shape).

        The decision is per (signature class, row length, dtype) — the
        grouped pass already guarantees homogeneous rows, so one lookup
        steers every row.  Never raises; a cold table resolves to the
        static heuristics (see :class:`repro.tune.TuningPolicy`).
        """
        from repro.tune.policy import default_policy

        policy = self.policy if self.policy is not None else default_policy()
        decision = policy.decide(self.recurrence.signature, n, dtype)
        if self.tracer.enabled:
            self.tracer.instant(
                "tuning_decision",
                cat="batch",
                args={
                    "backend": decision.backend,
                    "source": decision.source,
                    "reason": decision.reason[:200],
                },
            )
        return decision.backend

    def _solve_native(self, values, plan, dtype):
        """Row loop through the compiled kernel; ``None`` → numpy pass.

        The kernel solves one sequence at a time, so the batch is a
        Python loop over rows — the per-row overhead is one memoized
        cache lookup plus the ctypes call, and the kernel itself is far
        faster than the vectorized pass, so the loop still wins for the
        row lengths the batch engine buckets.  Any typed backend failure
        degrades the whole group to the vectorized numpy pass.
        """
        from repro.core.errors import BackendError, CodegenError
        from repro.obs.metrics import global_metrics
        from repro.plr.solver import PLRSolver

        if self._native_solver is None:
            self._native_solver = PLRSolver(
                self.recurrence,
                machine=self.machine,
                tracer=self.tracer,
                backend="native",
                native_fallback=False,
            )
        try:
            with self.tracer.span(
                "batch_native",
                cat="batch",
                args={"batch": len(values)} if self.tracer.enabled else None,
            ):
                rows = [
                    self._native_solver.solve(row, plan=plan, dtype=dtype)
                    for row in values
                ]
            return np.stack(rows)
        except (BackendError, CodegenError):
            global_metrics().counter("native.fallbacks").inc()
            return None
