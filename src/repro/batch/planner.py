"""Grouping a mixed request queue into homogeneous sub-batches.

The batched engine (:mod:`repro.batch.engine`) only wins when many
requests share one vectorized pass, but a realistic queue mixes
signatures, dtypes, and lengths.  :class:`BatchPlanner` turns such a
queue into :class:`BatchGroup`\\ s that are homogeneous in all three:

* requests are keyed by ``(signature, dtype)`` — the pair that decides
  which correction-factor table and which arithmetic a solve uses, so
  each group builds its table exactly once through the process-wide
  LRU cache (:func:`repro.plr.solver.cached_factor_table`);
* within a key, lengths are bucketed to the next power of two (floor
  ``min_bucket``) and every request is right-padded with zeros to the
  bucket length.  Trailing zeros never influence earlier outputs, so
  slicing each padded row back to its true length is exact — the same
  argument the single-request solver uses for its chunk padding.

Bucketing trades a bounded amount of padding (< 2x, and the planner
reports exactly how much) for far fewer groups than exact-length
matching would produce on scattered lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype
from repro.core.signature import Signature

__all__ = ["BatchRequest", "BatchGroup", "BatchPlanner", "DEFAULT_MIN_BUCKET"]

DEFAULT_MIN_BUCKET = 64
"""Smallest padded length: below this, padding costs less than the
group fragmentation exact lengths would cause."""


def _as_signature(signature: Recurrence | Signature | str) -> Signature:
    if isinstance(signature, str):
        return Signature.parse(signature)
    if isinstance(signature, Recurrence):
        return signature.signature
    return signature


@dataclass
class BatchRequest:
    """One entry of the queue: a signature, its input, and a dtype.

    ``signature`` accepts a signature string, a :class:`Signature`, or
    a :class:`Recurrence`; ``dtype`` defaults to the paper's
    methodology via :func:`~repro.core.reference.resolve_dtype` (int32
    for integer signatures on integer data, float32 otherwise).
    ``tag`` is an opaque caller identifier carried through to the
    request's outcome.
    """

    signature: Signature
    values: np.ndarray
    dtype: np.dtype = None
    tag: object = None
    deadline: float | None = None
    """Absolute deadline on the :func:`time.monotonic` clock (or the
    engine's injected clock).  ``None`` means the request waits forever.
    The engine sheds an expired request before solving it and replies
    with a typed :class:`~repro.core.errors.DeadlineExceeded` when the
    deadline passes mid-solve — a late result is never returned."""

    trace: object | None = None
    """Optional :class:`~repro.obs.context.TraceContext` naming the
    request — the serving layer mints one per admitted request.  The
    engine parents its spans (group pass, isolation re-runs, worker
    lanes) under it so one request reconstructs as one trace tree."""

    def __post_init__(self) -> None:
        self.signature = _as_signature(self.signature)
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise ValueError(
                f"request values must be 1D, got shape {self.values.shape}"
            )
        if self.values.dtype.kind not in "biuf":
            raise ValueError(
                f"request values must be numeric, got dtype {self.values.dtype}"
            )
        if self.dtype is None:
            self.dtype = resolve_dtype(self.signature, self.values.dtype)
        self.dtype = np.dtype(self.dtype)
        if self.deadline is not None:
            self.deadline = float(self.deadline)

    @property
    def n(self) -> int:
        return self.values.size


@dataclass
class BatchGroup:
    """Requests sharing (signature, dtype, padded length) — one pass.

    ``indices`` are positions in the original queue, so outcomes can be
    reassembled in submission order.
    """

    signature: Signature
    dtype: np.dtype
    bucket: int
    requests: list[BatchRequest] = field(default_factory=list)
    indices: list[int] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.requests)

    @property
    def padding(self) -> int:
        """Total zero-padded elements across the group (waste metric)."""
        return sum(self.bucket - r.n for r in self.requests)

    def stacked(self) -> np.ndarray:
        """The (B, bucket) right-padded input matrix, group dtype."""
        out = np.zeros((len(self.requests), self.bucket), dtype=self.dtype)
        for row, request in enumerate(self.requests):
            out[row, : request.n] = np.asarray(request.values, dtype=self.dtype)
        return out


class BatchPlanner:
    """Groups a request queue into homogeneous, padded sub-batches.

    Parameters
    ----------
    min_bucket:
        Smallest padded length; lengths round up to the next power of
        two at or above this floor.
    max_batch:
        Optional cap on requests per group — groups beyond it split (in
        submission order), bounding the memory of one stacked pass.
    """

    def __init__(
        self, min_bucket: int = DEFAULT_MIN_BUCKET, max_batch: int | None = None
    ) -> None:
        if min_bucket < 1:
            raise ValueError(f"min_bucket must be >= 1, got {min_bucket}")
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.min_bucket = min_bucket
        self.max_batch = max_batch

    def bucket_for(self, n: int) -> int:
        """The padded length for a request of n values."""
        bucket = self.min_bucket
        while bucket < n:
            bucket *= 2
        return bucket

    def plan(self, requests: list[BatchRequest]) -> list[BatchGroup]:
        """Group the queue; empty requests (n=0) are skipped entirely.

        Groups come out keyed in first-occurrence order, and requests
        keep their submission order within a group.
        """
        groups: dict[tuple, BatchGroup] = {}
        for index, request in enumerate(requests):
            if request.n == 0:
                continue
            bucket = self.bucket_for(request.n)
            key = (request.signature, request.dtype.str, bucket)
            group = groups.get(key)
            if group is None:
                group = groups[key] = BatchGroup(
                    signature=request.signature,
                    dtype=request.dtype,
                    bucket=bucket,
                )
            group.requests.append(request)
            group.indices.append(index)
        if self.max_batch is None:
            return list(groups.values())
        split: list[BatchGroup] = []
        for group in groups.values():
            for start in range(0, group.batch_size, self.max_batch):
                stop = start + self.max_batch
                split.append(
                    BatchGroup(
                        signature=group.signature,
                        dtype=group.dtype,
                        bucket=group.bucket,
                        requests=group.requests[start:stop],
                        indices=group.indices[start:stop],
                    )
                )
        return split
