"""The batched execution engine: group, solve, isolate, reassemble.

:class:`BatchEngine` is the service-shaped front end of
:mod:`repro.batch`: it takes a mixed queue of
:class:`~repro.batch.planner.BatchRequest`\\ s, lets the
:class:`~repro.batch.planner.BatchPlanner` group them into homogeneous
(signature, dtype, padded-length) sub-batches, runs each group through
one vectorized :class:`~repro.batch.solver.BatchSolver` pass, and
returns one :class:`RequestOutcome` per request in submission order.

Failure isolation is per request: if a grouped pass raises a typed
error, or one row's output fails the numerical health check, the
affected request(s) are re-run *alone* through the resilience chain
(:func:`repro.resilience.solver.solve_request`) — so a single request
with a pathological signature or poisoned input degrades by itself
while its batch-mates keep their fast vectorized result.

The engine publishes ``batch.*`` metrics (request/group counters, a
group-size histogram, padding-waste and isolation counters) and emits
one ``batch_group`` span per grouped pass when traced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.errors import DeadlineExceeded, ReproError
from repro.core.recurrence import Recurrence
from repro.obs.context import TraceContext, new_span_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import coerce_tracer
from repro.batch.planner import BatchGroup, BatchPlanner, BatchRequest
from repro.batch.solver import BatchSolver
from repro.gpusim.spec import MachineSpec
from repro.resilience.solver import FallbackPolicy, solve_request

__all__ = ["BatchEngine", "RequestOutcome", "execute_batch"]


@dataclass
class RequestOutcome:
    """What one request produced: output or typed error, never both.

    ``engine`` records which path served it: ``"batch"`` (the
    vectorized group pass), ``"empty"`` (zero-length short circuit),
    ``"shed"`` (expired before its group was solved — a typed
    :class:`~repro.core.errors.DeadlineExceeded`, no work done), or
    the resilience chain's engine (``"plr"`` / ``"serial"``) when the
    request was isolated.
    """

    index: int
    tag: object
    ok: bool
    output: np.ndarray | None
    error: ReproError | None = None
    engine: str = "batch"
    degradations: list[str] = field(default_factory=list)

    @property
    def isolated(self) -> bool:
        return self.engine not in ("batch", "empty", "shed")


class BatchEngine:
    """Executes a mixed request queue with batched passes and isolation.

    Parameters
    ----------
    planner:
        The grouping policy; defaults to a fresh :class:`BatchPlanner`.
    policy:
        The :class:`~repro.resilience.solver.FallbackPolicy` used when
        a request is isolated into its own resilience chain.
    machine:
        Planning machine for the grouped passes (default: Titan X).
    metrics:
        Registry for the ``batch.*`` metrics; a private one by default
        (read it via :attr:`metrics`).
    tracer:
        Observability hook shared by the grouped passes and any
        isolated re-runs.
    clock:
        Monotonic time source for request deadlines (injectable in
        tests; :func:`time.monotonic` by default).  Deadlines on
        :class:`~repro.batch.planner.BatchRequest` are absolute values
        of this clock.
    backend / workers / shard_options:
        Execution backend, forwarded into the resilience chain for
        *isolated* re-runs: ``"process"`` lets an isolated request use
        the multicore sharded path (its worker lanes then appear in the
        request's trace).  ``"native"`` additionally switches the
        grouped pass itself to the JIT-compiled C kernels (per-row, one
        compile per kernel shape) with automatic numpy fallback.
        ``"auto"`` lets the machine's calibration table pick the
        grouped-pass backend per (signature class, row length, dtype)
        (:mod:`repro.tune`); isolated re-runs then use the
        deterministic single-process chain.  The process backend never
        applies to the grouped pass — batching and sharding compose
        badly for small groups.
    """

    def __init__(
        self,
        planner: BatchPlanner | None = None,
        policy: FallbackPolicy | None = None,
        machine: MachineSpec | None = None,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        clock=time.monotonic,
        backend: str = "single",
        workers: int | None = None,
        shard_options=None,
    ) -> None:
        self.planner = planner or BatchPlanner()
        self.policy = policy or FallbackPolicy()
        self.machine = machine or MachineSpec.titan_x()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = coerce_tracer(tracer)
        self.clock = clock
        self.backend = backend
        self.workers = workers
        self.shard_options = shard_options

    # ------------------------------------------------------------------
    def execute(
        self,
        requests: list[BatchRequest],
        context: TraceContext | None = None,
    ) -> list[RequestOutcome]:
        """Run the queue; outcomes line up with the submitted requests.

        ``context`` is the caller's span (the serving layer passes its
        flush span) — group spans and isolation chains parent under it.
        """
        requests = list(requests)
        self.metrics.counter("batch.requests").inc(len(requests))
        outcomes: list[RequestOutcome | None] = [None] * len(requests)

        for index, request in enumerate(requests):
            if request.n == 0:
                # The planner cannot plan a zero-length solve; the
                # answer is definitionally an empty array.
                self.metrics.counter("batch.empty_requests").inc()
                outcomes[index] = RequestOutcome(
                    index=index,
                    tag=request.tag,
                    ok=True,
                    output=np.zeros(0, dtype=request.dtype),
                    engine="empty",
                )

        # Shed requests that expired while queued *before* batch
        # formation: an expired request must not influence grouping or
        # bucketing, and its work must never run.
        for index, request in enumerate(requests):
            if outcomes[index] is None and self._expired(request):
                outcomes[index] = self._shed(request, index, "expired in queue")

        pending = [
            (index, request)
            for index, request in enumerate(requests)
            if outcomes[index] is None
        ]
        groups = self.planner.plan([request for _, request in pending])
        for group in groups:
            # Planner indices address the filtered list; translate them
            # back to submission-order positions.
            group.indices = [pending[j][0] for j in group.indices]
        self.metrics.counter("batch.groups").inc(len(groups))
        for group in groups:
            self.metrics.histogram("batch.group_size").observe(group.batch_size)
            self.metrics.counter("batch.padded_values").inc(group.padding)
            self._run_group(group, outcomes, context)

        assert all(o is not None for o in outcomes)
        return outcomes

    # ------------------------------------------------------------------
    def _expired(self, request: BatchRequest) -> bool:
        return request.deadline is not None and self.clock() >= request.deadline

    def _shed(self, request: BatchRequest, index: int, why: str) -> RequestOutcome:
        """Typed DeadlineExceeded for a request whose budget ran out."""
        self.metrics.counter("batch.shed_expired").inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "shed", cat="batch", args={"index": index, "why": why}
            )
        return RequestOutcome(
            index=index,
            tag=request.tag,
            ok=False,
            output=None,
            error=DeadlineExceeded(f"request deadline passed: {why}"),
            engine="shed",
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _group_context(
        group: BatchGroup, context: TraceContext | None
    ) -> TraceContext | None:
        """The span context for one group pass.

        A group serving exactly one traced request stays inside that
        request's trace (parented to the caller's span when one was
        given); a group covering several requests gets a span in the
        caller's trace — or a fresh one — and the member trace ids ride
        in the span args as links, since one span cannot belong to many
        traces.
        """
        traced = [r.trace for r in group.requests if r.trace is not None]
        if len(traced) == 1:
            sole = traced[0]
            return TraceContext(
                trace_id=sole.trace_id,
                span_id=new_span_id(),
                parent_id=context.span_id if context is not None else sole.span_id,
                sampled=sole.sampled,
            )
        if context is not None:
            return context.child()
        if traced:
            return TraceContext.new()
        return None

    def _run_group(
        self,
        group: BatchGroup,
        outcomes: list[RequestOutcome | None],
        context: TraceContext | None = None,
    ) -> None:
        # Cooperative cancellation checkpoint: requests that expired
        # between planning and this group's turn are shed now, and the
        # group shrinks to its live members before any solving happens.
        expired_rows = [
            row for row, request in enumerate(group.requests)
            if self._expired(request)
        ]
        if expired_rows:
            for row in expired_rows:
                index = group.indices[row]
                outcomes[index] = self._shed(
                    group.requests[row], index, "expired awaiting its group"
                )
            live = [
                row for row in range(group.batch_size) if row not in set(expired_rows)
            ]
            if not live:
                return
            group = BatchGroup(
                signature=group.signature,
                dtype=group.dtype,
                bucket=group.bucket,
                requests=[group.requests[row] for row in live],
                indices=[group.indices[row] for row in live],
            )
        group_ctx = self._group_context(group, context)
        span_args = None
        if self.tracer.enabled:
            span_args = {
                "signature": str(group.signature),
                "dtype": group.dtype.name,
                "batch": group.batch_size,
                "bucket": group.bucket,
                "padding": group.padding,
            }
            member_traces = sorted(
                {r.trace.trace_id for r in group.requests if r.trace is not None}
            )
            if len(member_traces) > 1:
                # One span cannot live in several traces; record the
                # members as span links instead.
                span_args["linked_traces"] = member_traces
        with self.tracer.span(
            "batch_group", cat="batch", args=span_args, link=group_ctx
        ):
            solver = BatchSolver(
                group.signature,
                machine=self.machine,
                tracer=self.tracer,
                # The grouped pass may run native kernels per row (or
                # let the calibration table pick); the process backend
                # stays isolation-only (batching and sharding compose
                # badly for small groups).
                backend=self.backend
                if self.backend in ("native", "auto")
                else "single",
            )
            try:
                # Overflow in one row is expected occasionally and the
                # per-row health check below is the detector; keep numpy
                # quiet during the grouped pass, like the resilience
                # chain does for its attempts.
                with np.errstate(over="ignore", invalid="ignore"):
                    stacked = solver.solve(group.stacked(), dtype=group.dtype)
            except ReproError as exc:
                # The whole pass failed with a typed error (factor table
                # predicted to overflow, lossy integer coefficients...).
                # Every member re-runs alone so each gets its own
                # degradation story instead of sharing one failure.
                for row, index in enumerate(group.indices):
                    outcomes[index] = self._isolate(
                        group, group.requests[row], index, str(exc), group_ctx
                    )
                return
            floating = np.issubdtype(group.dtype, np.floating)
            for row, index in enumerate(group.indices):
                request = group.requests[row]
                if self._expired(request):
                    # The group finished, but this member's deadline
                    # passed mid-solve; the contract says typed error,
                    # never a late result.
                    self.metrics.counter("batch.deadline_missed").inc()
                    outcomes[index] = RequestOutcome(
                        index=index,
                        tag=request.tag,
                        ok=False,
                        output=None,
                        error=DeadlineExceeded(
                            "request deadline passed while its group was solving"
                        ),
                        engine="shed",
                    )
                    continue
                output = stacked[row, : request.n].copy()
                if floating and not np.isfinite(output).all():
                    outcomes[index] = self._isolate(
                        group, request, index, "non-finite row output", group_ctx
                    )
                    continue
                outcomes[index] = RequestOutcome(
                    index=index, tag=request.tag, ok=True, output=output
                )

    def _isolate(
        self,
        group: BatchGroup,
        request: BatchRequest,
        index: int,
        why: str,
        group_ctx: TraceContext | None = None,
    ) -> RequestOutcome:
        """Re-run one request alone through the resilience chain."""
        if self._expired(request):
            return self._shed(request, index, "expired before isolation re-run")
        self.metrics.counter("batch.isolated").inc()
        # The isolation chain stays in the *request's* trace.  When the
        # group span shares that trace (sole traced member) it becomes
        # the parent; otherwise the chain hangs off the request root.
        if request.trace is not None:
            if group_ctx is not None and group_ctx.trace_id == request.trace.trace_id:
                iso_ctx = group_ctx.child()
            else:
                iso_ctx = request.trace.child()
        else:
            iso_ctx = group_ctx.child() if group_ctx is not None else None
        if self.tracer.enabled:
            self.tracer.instant(
                "isolate",
                cat="batch",
                args={"index": index, "why": why},
                link=iso_ctx,
            )
        policy = self.policy
        if request.deadline is not None:
            # Propagate the remaining budget into the degradation chain
            # so it stops escalating (and jumps to its fallback) instead
            # of burning time the caller no longer has.
            remaining = max(request.deadline - self.clock(), 1e-3)
            if policy.deadline_s is None or remaining < policy.deadline_s:
                policy = replace(policy, deadline_s=remaining)
        report = solve_request(
            Recurrence(request.signature),
            request.values,
            dtype=group.dtype,
            policy=policy,
            tracer=self.tracer,
            context=iso_ctx,
            # Isolation is the careful slow path: "auto" re-runs there
            # as the deterministic single-process chain so a typed
            # degradation story never depends on tuning state.
            backend="single" if self.backend == "auto" else self.backend,
            workers=self.workers,
            shard_options=self.shard_options,
        )
        return RequestOutcome(
            index=index,
            tag=request.tag,
            ok=report.ok,
            output=report.output,
            error=report.error,
            engine=report.engine or "plr",
            degradations=list(report.degradations),
        )


def execute_batch(
    requests: list[BatchRequest], **kwargs
) -> list[RequestOutcome]:
    """One-shot convenience: ``execute_batch(requests)`` on a fresh engine."""
    return BatchEngine(**kwargs).execute(requests)
