"""Batched execution: many recurrence requests, few vectorized passes.

A service fronting the PLR solver rarely sees one request at a time —
it sees a queue mixing signatures, dtypes, and lengths.  Solving each
request alone repeats per-call overhead (planning, factor-table lookup,
Python dispatch) that the paper's GPU amortizes across a whole grid.
This package amortizes it the same way on the numpy substrate:

* :class:`~repro.batch.solver.BatchSolver` — B independent inputs that
  share a signature solved in one vectorized (B, n) pass: Phase 1
  merges every (row, chunk) pair at once and Phase 2's carry spine
  advances all rows per chunk step, with no per-request Python loop;
* :class:`~repro.batch.planner.BatchPlanner` — groups a mixed queue
  into homogeneous sub-batches keyed by (signature, dtype) and
  length-bucketed with right-padding, so each group builds its
  correction-factor table once via the process-wide LRU cache;
* :class:`~repro.batch.engine.BatchEngine` — the queue front end:
  grouped passes, per-request failure isolation through the resilience
  chain, ``batch.*`` metrics, and per-group trace spans.

The invariant the tests pin: every outcome matches what a per-request
:class:`~repro.plr.solver.PLRSolver` would produce — exactly for
integer dtypes, to a tight ulp bound for floats.
"""

from repro.batch.engine import BatchEngine, RequestOutcome, execute_batch
from repro.batch.planner import BatchGroup, BatchPlanner, BatchRequest
from repro.batch.solver import BatchSolver

__all__ = [
    "BatchEngine",
    "BatchGroup",
    "BatchPlanner",
    "BatchRequest",
    "BatchSolver",
    "RequestOutcome",
    "execute_batch",
]
