"""The asyncio request server: coalesce, admit, solve, degrade, drain.

:class:`PLRServer` turns the one-shot batched engine into a long-lived
service.  The control flow is a single pipeline with robustness checks
at every stage boundary:

1. **Framing** — each connection reads newline-delimited JSON under a
   hard line-length limit and an idle-read timeout, so malformed frames
   get typed replies and slow-loris clients get disconnected instead of
   pinning a reader forever (:mod:`repro.serve.protocol`).
2. **Admission** — a solve frame is rejected *immediately* (typed
   :class:`~repro.core.errors.OverloadError`, never a hang) when the
   server is draining, the circuit breaker is open, or the bounded
   intake queue is full.
3. **Micro-batching** — an admitted request waits at most ``flush_ms``
   in the intake queue: the batcher flushes when the window closes or
   ``max_batch`` requests are pending, whichever comes first, so light
   traffic sees latency ≈ flush window and heavy traffic sees full
   buckets (adaptive micro-batching).
4. **Execution** — a flush runs through the
   :class:`~repro.batch.engine.BatchEngine` in a worker thread: grouped
   vectorized passes, per-request failure isolation via the resilience
   chain, and per-request deadlines enforced cooperatively (expired
   requests are shed before their group forms; a deadline that passes
   mid-solve yields a typed
   :class:`~repro.core.errors.DeadlineExceeded`, never a late result).
   Consecutive *flush-level* failures trip the circuit breaker into
   fast-reject until a cooldown passes.
5. **Drain** — on SIGTERM (or a ``{"op": "drain"}`` frame) the server
   stops accepting connections, rejects new solves, flushes every
   queued request, waits for in-flight replies to be written, snapshots
   its metrics, and only then closes.

Warm state across requests: factor tables (and their per-width
prefixes) are pinned in a bounded LRU keyed by (signature, dtype,
bucket), so the hottest signatures never rebuild their tables even if
the process-wide cache churns under a long mixed workload.
"""

from __future__ import annotations

import asyncio
import collections
import json
import signal
import time
from dataclasses import dataclass

import numpy as np

from repro.batch.engine import BatchEngine, RequestOutcome
from repro.batch.planner import BatchPlanner, BatchRequest
from repro.core.errors import OverloadError, ProtocolError, ReproError
from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry, exponential_buckets
from repro.obs.sampling import SamplingPolicy, TraceLog
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.tracer import coerce_tracer
from repro.plr.planner import plan_execution
from repro.plr.solver import cached_factor_table
from repro.serve.protocol import (
    ControlFrame,
    ServerError,
    SolveFrame,
    encode_reply,
    error_reply,
    parse_frame,
)

__all__ = [
    "CircuitBreaker",
    "PLRServer",
    "SERVE_LATENCY_BUCKETS_MS",
    "ServeConfig",
    "WarmTables",
]

LATENCY_BUCKETS_MS = (
    0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)
"""Legacy linear-ish bucket preset, kept for callers that imported it."""

SERVE_LATENCY_BUCKETS_MS = exponential_buckets(0.05, 2.0, 20)
"""Default serve-latency buckets: 50 µs to ~26 s, ×2 per bucket.  The
sub-millisecond range gets six buckets of its own, so a p99 below 1 ms
is resolved instead of flattened into one catch-all bucket."""


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of the serving layer; defaults suit a local service."""

    host: str = "127.0.0.1"
    port: int = 0
    """TCP port; 0 binds an ephemeral port (read it back from
    :attr:`PLRServer.address`)."""

    unix_path: str | None = None
    """When set, serve on this Unix domain socket instead of TCP."""

    max_queue: int = 256
    """Bound of the intake queue — the admission-control limit.  A solve
    frame arriving at a full queue is shed with a typed OverloadError."""

    max_batch: int = 64
    """Flush as soon as this many requests are pending (full bucket)."""

    flush_ms: float = 5.0
    """Micro-batch window: the longest an admitted request waits for
    batch-mates before its flush is forced."""

    default_deadline_ms: float | None = None
    """Deadline applied to requests that do not carry their own."""

    breaker_threshold: int = 5
    """Consecutive flush-level failures that trip the circuit breaker."""

    breaker_cooldown_s: float = 1.0
    """How long the tripped breaker fast-rejects before allowing a
    probe flush (half-open)."""

    max_line_bytes: int = 1 << 20
    """Hard frame-length limit; an overlong line closes the connection."""

    read_timeout_s: float = 30.0
    """Idle-read limit per connection — the slow-loris guard.  A client
    that neither completes a frame nor goes quiet-but-honest EOF within
    this window is disconnected."""

    min_bucket: int = 64
    """Smallest padded length for the planner's length bucketing."""

    warm_cache_size: int = 32
    """Entries in the warm factor-table LRU (signature, dtype, bucket)."""

    metrics_path: str | None = None
    """When set, the drain path writes the final metrics snapshot here."""

    latency_buckets_ms: tuple = SERVE_LATENCY_BUCKETS_MS
    """Bucket bounds of the ``serve.latency_ms`` histogram.  The default
    exponential preset resolves sub-millisecond latencies; pass your own
    increasing tuple to match a different latency regime."""

    slo_latency_ms: float = 50.0
    """The latency objective: a reply is *good* only if it is ok AND at
    or under this many milliseconds."""

    slo_target: float = 0.99
    """Target fraction of good replies (the SLO itself)."""

    slo_windows_s: tuple = (300.0, 3600.0)
    """Burn-rate windows (seconds) reported by ``{"op": "slo"}``."""

    trace_log_path: str | None = None
    """When set, sampled per-request records append to this JSONL file
    (see :class:`repro.obs.sampling.TraceLog`)."""

    trace_head_rate: float = 1.0
    """Head-sampling rate for the trace log: fraction of trace ids kept
    up front.  Errors and slow requests are tail-rescued regardless."""

    trace_tail_slow_ms: float | None = None
    """Latency above which an unsampled request is tail-rescued into the
    trace log; None disables the slow rescue."""

    backend: str = "single"
    """Execution backend of the batch engine: ``"single"`` (numpy,
    default), ``"native"`` (JIT-compiled C kernels for the grouped pass
    and isolated re-runs, with automatic typed fallback to numpy when no
    compiler is available — a server must never die for lack of a
    toolchain), ``"process"`` (multicore sharding for isolated re-runs
    only), or ``"auto"`` (the machine's calibration table picks the
    grouped-pass backend per signature class / length / dtype; see
    :mod:`repro.tune`)."""

    workers: int | None = None
    """Worker-pool size forwarded to the backend (isolated re-runs)."""

    def __post_init__(self) -> None:
        if self.backend not in ("single", "native", "process", "auto"):
            raise ValueError(
                "backend must be single|native|process|auto, "
                f"got {self.backend!r}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.flush_ms < 0:
            raise ValueError(f"flush_ms must be >= 0, got {self.flush_ms}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.read_timeout_s <= 0:
            raise ValueError(
                f"read_timeout_s must be positive, got {self.read_timeout_s}"
            )
        buckets = tuple(float(b) for b in self.latency_buckets_ms)
        if not buckets or any(
            b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])
        ):
            raise ValueError(
                "latency_buckets_ms must be a non-empty increasing "
                f"sequence, got {self.latency_buckets_ms!r}"
            )
        object.__setattr__(self, "latency_buckets_ms", buckets)
        if self.slo_latency_ms <= 0:
            raise ValueError(
                f"slo_latency_ms must be positive, got {self.slo_latency_ms}"
            )
        object.__setattr__(
            self, "slo_windows_s", tuple(float(w) for w in self.slo_windows_s)
        )


class CircuitBreaker:
    """Trip to fast-reject after consecutive failures; probe after cooldown.

    The unit of accounting is one *flush* (a whole batched execution),
    not one request: per-request typed errors are normal service, but a
    flush that fails outright means the execution path itself is sick,
    and admitting more traffic would just grow the failure pile.
    """

    def __init__(
        self, threshold: int, cooldown_s: float, clock=time.monotonic
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0

    @property
    def open(self) -> bool:
        """True while fast-rejecting (cooldown not yet elapsed)."""
        if self.opened_at is None:
            return False
        if self.clock() - self.opened_at >= self.cooldown_s:
            return False  # half-open: let a probe through
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            if self.opened_at is None:
                self.trips += 1
            self.opened_at = self.clock()


class WarmTables:
    """Bounded LRU pinning the hottest correction-factor tables.

    The process-wide cache (:func:`repro.plr.solver.cached_factor_table`)
    is shared by every solver in the process and can evict a hot entry
    under a long mixed workload.  The server pins its own references —
    tables are immutable, so holding one costs only memory — keyed by
    the serving triple (signature, dtype, length bucket), and touches
    the per-width factor prefixes so a warmed table serves its first
    request with zero rebuild work.
    """

    def __init__(self, max_entries: int, metrics: MetricsRegistry) -> None:
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: collections.OrderedDict = collections.OrderedDict()

    def touch(self, signature, dtype: np.dtype, bucket: int) -> None:
        if self.max_entries < 1:
            return
        key = (signature, np.dtype(dtype).str, bucket)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.metrics.counter("serve.warm.hits").inc()
            return
        self.metrics.counter("serve.warm.builds").inc()
        plan = plan_execution(signature, bucket)
        table = cached_factor_table(signature, plan.chunk_size, dtype)
        # Prefix views for every doubling width Phase 1 will use.
        width = 1
        while width < plan.chunk_size:
            table.rows_for_width(min(2 * width, plan.chunk_size))
            width *= 2
        self._entries[key] = table
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        self.metrics.gauge("serve.warm.size").set(len(self._entries))


class _Pending:
    """One admitted request riding the intake queue."""

    __slots__ = ("request", "future", "arrival", "reply_id", "ctx")

    def __init__(
        self,
        request: BatchRequest,
        future: asyncio.Future,
        arrival: float,
        reply_id: object,
        ctx: TraceContext,
    ) -> None:
        self.request = request
        self.future = future
        self.arrival = arrival
        self.reply_id = reply_id
        self.ctx = ctx


_SHUTDOWN = object()


class PLRServer:
    """A long-running JSONL solve server over TCP or a Unix socket.

    Parameters
    ----------
    config:
        The :class:`ServeConfig`; defaults bind an ephemeral local port.
    engine:
        The execution back end; a :class:`~repro.batch.engine.BatchEngine`
        sharing this server's metrics registry by default.  The chaos
        harness injects misbehaving engines here.
    metrics:
        Registry for the ``serve.*`` (and the engine's ``batch.*``)
        metrics; queried live via ``{"op": "metrics"}``.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        engine: BatchEngine | None = None,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = coerce_tracer(tracer)
        self.engine = engine or BatchEngine(
            planner=BatchPlanner(
                min_bucket=self.config.min_bucket,
                max_batch=self.config.max_batch,
            ),
            metrics=self.metrics,
            tracer=self.tracer,
            backend=self.config.backend,
            workers=self.config.workers,
        )
        self.clock = getattr(self.engine, "clock", time.monotonic)
        self.sampling = SamplingPolicy(
            head_rate=self.config.trace_head_rate,
            tail_slow_ms=self.config.trace_tail_slow_ms,
        )
        self.trace_log = (
            TraceLog(self.config.trace_log_path, policy=self.sampling)
            if self.config.trace_log_path
            else None
        )
        self.slo = SLOTracker(
            SLOConfig(
                latency_objective_ms=self.config.slo_latency_ms,
                target=self.config.slo_target,
                windows_s=self.config.slo_windows_s,
            ),
            clock=self.clock,
        )
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_s,
            clock=self.clock,
        )
        self.warm = WarmTables(self.config.warm_cache_size, self.metrics)
        self.final_snapshot: dict | None = None
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._batcher: asyncio.Task | None = None
        self._reply_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._drained: asyncio.Event | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the batcher; returns when ready."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.config.backend in ("native", "auto"):
            await asyncio.to_thread(self._warm_native)
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._drained = asyncio.Event()
        if self.config.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_conn,
                path=self.config.unix_path,
                limit=self.config.max_line_bytes,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_conn,
                host=self.config.host,
                port=self.config.port,
                limit=self.config.max_line_bytes,
            )
        self._batcher = asyncio.create_task(self._batch_loop())

    def _warm_native(self) -> None:
        """Pre-compile a native kernel before the socket binds.

        The first native solve pays compiler discovery, compile-cache
        directory creation, and a full cc invocation — hundreds of
        milliseconds no request should eat.  Warming compiles a
        representative kernel untimed at startup; other signatures
        still compile on first sight, but against a probed toolchain
        and an existing on-disk cache.  A missing compiler only counts
        a metric — the engine's own typed per-request fallback owns
        that degradation.
        """
        started = time.perf_counter()
        try:
            from repro.plr.solver import PLRSolver

            solver = PLRSolver("(1: 1)", backend="native", native_fallback=False)
            solver.solve(np.ones(max(self.config.min_bucket, 2), dtype=np.int32))
        except Exception:  # noqa: BLE001 — warmup is best-effort
            self.metrics.counter("serve.native_warmup_failures").inc()
            return
        self.metrics.counter("serve.native_warmups").inc()
        self.metrics.gauge("serve.native_warmup_ms").set(
            round((time.perf_counter() - started) * 1000.0, 3)
        )

    @property
    def address(self) -> tuple[str, int] | str:
        """Bound address: (host, port) for TCP, the path for Unix."""
        if self._server is None:
            raise RuntimeError("server not started")
        if self.config.unix_path:
            return self.config.unix_path
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self, install_signal_handlers: bool = True) -> dict:
        """Serve until drained (SIGTERM/SIGINT or a drain frame).

        Returns the final metrics snapshot taken by the drain path.
        """
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        signum, lambda: asyncio.ensure_future(self.drain())
                    )
                except (NotImplementedError, RuntimeError):
                    pass  # platforms without signal support in the loop
        await self._drained.wait()
        assert self.final_snapshot is not None
        return self.final_snapshot

    async def drain(self) -> dict:
        """Graceful shutdown: stop accepting, flush, snapshot, close."""
        if self._draining:
            await self._drained.wait()
            return self.final_snapshot
        self._draining = True
        self.metrics.gauge("serve.draining").set(1)
        # 1. Stop accepting new connections (existing ones keep their
        #    reader loops, but admission rejects their solve frames).
        self._server.close()
        await self._server.wait_closed()
        # 2. Flush everything admitted before the drain began.  The
        #    queue is FIFO, so a sentinel enqueued now is processed only
        #    after every earlier request has been flushed.
        await self._queue.put(_SHUTDOWN)
        await self._batcher
        # 3. Wait for in-flight replies to reach their sockets.
        if self._reply_tasks:
            await asyncio.gather(*list(self._reply_tasks), return_exceptions=True)
        # 4. Snapshot metrics, persist if asked, release connections.
        self.final_snapshot = self.metrics.snapshot()
        if self.config.metrics_path:
            with open(self.config.metrics_path, "w") as handle:
                json.dump(self.final_snapshot, handle, indent=1)
        if self.trace_log is not None:
            self.trace_log.close()
        for writer in list(self._conn_writers):
            writer.close()
        self._drained.set()
        return self.final_snapshot

    async def aclose(self) -> None:
        """Hard stop (tests): cancel everything, close every socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None and not self._batcher.done():
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        for task in list(self._reply_tasks):
            task.cancel()
        for writer in list(self._conn_writers):
            writer.close()

    # -- connection handling --------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.counter("serve.connections").inc()
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        conn_replies: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.config.read_timeout_s
                    )
                except asyncio.TimeoutError:
                    # Slow loris: a frame that never completes.  Close;
                    # anything already admitted still gets solved, its
                    # reply just has nowhere to go.
                    self.metrics.counter("serve.idle_disconnects").inc()
                    break
                except ValueError:
                    # The line outgrew the frame limit: the stream can
                    # no longer be framed.  Final typed reply, then close.
                    self.metrics.counter("serve.protocol_errors").inc()
                    await self._write(
                        writer,
                        write_lock,
                        error_reply(
                            None,
                            ProtocolError(
                                f"frame exceeds {self.config.max_line_bytes} "
                                "bytes; closing connection"
                            ),
                        ),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # clean EOF
                if not line.strip():
                    continue
                await self._dispatch(line, writer, write_lock, conn_replies)
        finally:
            # Let pipelined replies finish writing before the socket
            # goes away (EOF on the read side does not mean the client
            # stopped listening).
            if conn_replies:
                await asyncio.gather(*conn_replies, return_exceptions=True)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, reply: dict
    ) -> bool:
        try:
            async with lock:
                writer.write(encode_reply(reply))
                await writer.drain()
            return True
        except (ConnectionError, OSError):
            # Client hung up mid-reply; nothing to corrupt, nothing to
            # retry — count it and move on.
            self.metrics.counter("serve.dropped_replies").inc()
            return False

    async def _dispatch(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        conn_replies: set[asyncio.Task],
    ) -> None:
        try:
            frame = parse_frame(line)
        except ProtocolError as exc:
            self.metrics.counter("serve.protocol_errors").inc()
            await self._write(writer, write_lock, error_reply(None, exc))
            return
        if isinstance(frame, ControlFrame):
            await self._control(frame, writer, write_lock)
            return
        reply = self._admit(frame)
        if reply is not None:  # rejected: typed reply, never a hang
            await self._write(writer, write_lock, reply)
            return
        pending = self._pending_from(frame)
        if isinstance(pending, dict):  # request construction failed
            await self._write(writer, write_lock, pending)
            return
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.metrics.counter("serve.shed_overload").inc()
            await self._write(
                writer,
                write_lock,
                error_reply(
                    frame.id,
                    OverloadError(
                        f"intake queue full ({self.config.max_queue}); retry"
                    ),
                ),
            )
            return
        self.metrics.counter("serve.admitted").inc()
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        task = asyncio.create_task(
            self._reply_when_done(pending, writer, write_lock)
        )
        conn_replies.add(task)
        self._reply_tasks.add(task)
        task.add_done_callback(conn_replies.discard)
        task.add_done_callback(self._reply_tasks.discard)

    def _admit(self, frame: SolveFrame) -> dict | None:
        """Admission control: a typed rejection reply, or None to admit."""
        if self._draining:
            self.metrics.counter("serve.shed_draining").inc()
            return error_reply(
                frame.id, OverloadError("server is draining; not accepting work")
            )
        if self.breaker.open:
            self.metrics.counter("serve.breaker_rejections").inc()
            return error_reply(
                frame.id,
                OverloadError(
                    "circuit breaker open after "
                    f"{self.breaker.consecutive_failures} consecutive batch "
                    f"failures; retry in {self.config.breaker_cooldown_s:g}s"
                ),
            )
        return None

    def _mint_context(self, frame: SolveFrame) -> TraceContext:
        """The request's root trace context, minted at admission.

        A client-supplied ``trace`` joins the request to the caller's
        trace: its trace_id is adopted (so the head-sampling decision is
        deterministic across retries and processes) and its span_id, if
        any, becomes the parent of the server's root span.
        """
        if frame.trace is not None:
            trace_id = frame.trace["trace_id"]
            parent_id = frame.trace.get("span_id")
        else:
            trace_id = new_trace_id()
            parent_id = None
        return TraceContext(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            sampled=self.sampling.sample_head(trace_id),
        )

    def _pending_from(self, frame: SolveFrame) -> _Pending | dict:
        """Build the queued request, or a typed reply if that fails."""
        now = self.clock()
        deadline_ms = frame.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        deadline = None if deadline_ms is None else now + deadline_ms / 1000.0
        ctx = self._mint_context(frame)
        try:
            values = np.asarray(frame.values)
            request = BatchRequest(
                frame.signature,
                values,
                dtype=np.dtype(frame.dtype) if frame.dtype else None,
                tag=frame.id,
                deadline=deadline,
                trace=ctx,
            )
        except ReproError as exc:
            self.metrics.counter("serve.rejected_requests").inc()
            return error_reply(frame.id, exc)
        except (TypeError, ValueError) as exc:
            self.metrics.counter("serve.rejected_requests").inc()
            return error_reply(frame.id, ProtocolError(f"bad request: {exc}"))
        future = asyncio.get_running_loop().create_future()
        return _Pending(request, future, arrival=now, reply_id=frame.id, ctx=ctx)

    async def _reply_when_done(
        self,
        pending: _Pending,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        reply = await pending.future
        latency_ms = (self.clock() - pending.arrival) * 1000.0
        ok = bool(reply.get("ok"))
        reply.setdefault("trace_id", pending.ctx.trace_id)
        self.metrics.histogram(
            "serve.latency_ms", self.config.latency_buckets_ms
        ).observe(latency_ms)
        self.slo.record(ok=ok, latency_ms=latency_ms)
        if self.tracer.enabled:
            # The request's root span: admission to reply, parent of the
            # whole engine/resilience/worker tree.
            dur_us = latency_ms * 1000.0
            self.tracer.complete(
                "serve_request",
                self.tracer.now() - dur_us,
                dur_us,
                cat="serve",
                args={"ok": ok, "engine": reply.get("engine")},
                link=pending.ctx,
            )
        if self.trace_log is not None:
            self.trace_log.record(
                trace_id=pending.ctx.trace_id,
                ok=ok,
                latency_ms=latency_ms,
                error=reply.get("error"),
                engine=reply.get("engine"),
            )
        await self._write(writer, write_lock, reply)

    # -- control ops -----------------------------------------------------
    async def _control(
        self,
        frame: ControlFrame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if frame.op == "ping":
            await self._write(
                writer,
                write_lock,
                {"id": frame.id, "ok": True, "op": "ping"},
            )
        elif frame.op == "metrics":
            if frame.format == "prometheus":
                reply = {
                    "id": frame.id,
                    "ok": True,
                    "op": "metrics",
                    "format": "prometheus",
                    "body": prometheus_text(self.metrics),
                }
            else:
                reply = self._metrics_reply(frame.id)
            await self._write(writer, write_lock, reply)
        elif frame.op == "slo":
            await self._write(
                writer,
                write_lock,
                {"id": frame.id, "ok": True, "op": "slo", "slo": self.slo.report()},
            )
        elif frame.op == "drain":
            # Acknowledge first — once the drain completes, this
            # connection is closing.
            await self._write(
                writer,
                write_lock,
                {"id": frame.id, "ok": True, "op": "drain", "draining": True},
            )
            asyncio.ensure_future(self.drain())

    def _metrics_reply(self, reply_id: object) -> dict:
        latency = self.metrics.histogram(
            "serve.latency_ms", self.config.latency_buckets_ms
        )
        occupancy = self.metrics.histogram("serve.batch_occupancy")
        return {
            "id": reply_id,
            "ok": True,
            "op": "metrics",
            "metrics": self.metrics.snapshot(),
            "serving": {
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "draining": self._draining,
                "breaker": {
                    "open": self.breaker.open,
                    "consecutive_failures": self.breaker.consecutive_failures,
                    "trips": self.breaker.trips,
                },
                "latency_ms": {
                    "count": latency.count,
                    "p50": latency.percentile(50),
                    "p99": latency.percentile(99),
                },
                "batch_occupancy": {
                    "count": occupancy.count,
                    "mean": occupancy.mean,
                },
                "tracing": {
                    "dropped_events": self.tracer.dropped,
                    "trace_log": (
                        self.trace_log.stats()
                        if self.trace_log is not None
                        else None
                    ),
                },
                "tuning": self._tuning_info(),
            },
        }

    @staticmethod
    def _tuning_info() -> dict | None:
        """The process-wide tuning policy's view of itself, or None.

        Reported regardless of the configured backend — an operator
        asking ``{"op": "metrics"}`` wants to know whether switching to
        ``backend="auto"`` would run measured (table status "ok") or
        fall back to the static heuristics.
        """
        try:
            from repro.tune.policy import default_policy

            return default_policy().describe()
        except Exception:  # noqa: BLE001 — metrics must never fail
            return None

    # -- the micro-batcher ----------------------------------------------
    async def _batch_loop(self) -> None:
        """Coalesce the intake queue into flushes; never dies."""
        loop = asyncio.get_running_loop()
        shutting_down = False
        while not shutting_down:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            batch = [item]
            flush_at = loop.time() + self.config.flush_ms / 1000.0
            while len(batch) < self.config.max_batch:
                remaining = flush_at - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _SHUTDOWN:
                    shutting_down = True
                    break
                batch.append(nxt)
            self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
            self.metrics.histogram("serve.batch_occupancy").observe(len(batch))
            self.metrics.counter("serve.flushes").inc()
            await self._execute_flush(batch)

    def _flush_context(self, batch: list[_Pending]) -> TraceContext | None:
        """The trace context of one flush.

        A single-request flush belongs to that request's trace (child of
        its root span); a multi-request flush is shared work, so it gets
        a trace of its own with the member traces attached as span links
        (``linked_traces``) rather than claiming any one request's tree.
        """
        if not self.tracer.enabled:
            return None
        if len(batch) == 1:
            return batch[0].ctx.child()
        return TraceContext.new()

    async def _execute_flush(self, batch: list[_Pending]) -> None:
        requests = [p.request for p in batch]
        flush_ctx = self._flush_context(batch)
        span_args: dict = {"batch": len(batch)}
        if flush_ctx is not None and len(batch) > 1:
            members = sorted({p.ctx.trace_id for p in batch})
            span_args["linked_traces"] = members
        try:
            with self.tracer.span(
                "serve_flush", cat="serve", args=span_args, link=flush_ctx
            ):
                outcomes = await asyncio.to_thread(
                    self._execute_sync, requests, flush_ctx
                )
        except ReproError as exc:
            self._fail_flush(batch, exc)
            return
        except Exception as exc:  # noqa: BLE001 — invariant: typed reply always
            self._fail_flush(
                batch, ServerError(f"{type(exc).__name__}: {exc}")
            )
            return
        self.breaker.record_success()
        self.metrics.gauge("serve.breaker_open").set(0)
        for pending, outcome in zip(batch, outcomes):
            if not pending.future.done():
                pending.future.set_result(
                    self._outcome_reply(pending.reply_id, outcome)
                )

    def _execute_sync(
        self,
        requests: list[BatchRequest],
        context: TraceContext | None = None,
    ) -> list[RequestOutcome]:
        """Worker-thread body: prewarm hot tables, then execute."""
        planner = self.engine.planner
        seen = set()
        for request in requests:
            if request.n == 0:
                continue
            key = (request.signature, request.dtype.str)
            if key in seen:
                continue
            seen.add(key)
            try:
                self.warm.touch(
                    request.signature,
                    request.dtype,
                    planner.bucket_for(request.n),
                )
            except ReproError:
                # Unplannable/overflowing table: the engine's own path
                # will surface the typed error per request.
                pass
        return self.engine.execute(requests, context=context)

    def _fail_flush(self, batch: list[_Pending], error: ReproError) -> None:
        """A whole flush failed: typed replies, breaker accounting."""
        self.metrics.counter("serve.flush_failures").inc()
        trips_before = self.breaker.trips
        self.breaker.record_failure()
        if self.breaker.trips > trips_before:
            self.metrics.counter("serve.breaker_trips").inc()
        self.metrics.gauge("serve.breaker_open").set(int(self.breaker.open))
        for pending in batch:
            if not pending.future.done():
                pending.future.set_result(
                    error_reply(pending.reply_id, error)
                )

    @staticmethod
    def _outcome_reply(reply_id: object, outcome: RequestOutcome) -> dict:
        if outcome.ok:
            reply = {
                "id": reply_id,
                "ok": True,
                "output": np.asarray(outcome.output).tolist(),
                "engine": outcome.engine,
            }
            if outcome.degradations:
                reply["degradations"] = list(outcome.degradations)
            return reply
        return error_reply(reply_id, outcome.error)
