"""Wire protocol of the serving layer: JSON objects, one per line.

The protocol is deliberately minimal — newline-delimited JSON over a
byte stream (TCP or a Unix socket) — because the robustness properties
live in how frames are *validated*, not in how they are framed:

* every inbound line must parse to a JSON **object**; anything else
  (invalid JSON, arrays, bare scalars, missing fields, wrong field
  types) yields a typed :class:`~repro.core.errors.ProtocolError`
  **reply** and the connection survives;
* a line longer than the configured limit cannot be framed at all —
  the reader cannot tell where the next frame starts — so that is the
  one protocol fault that closes the connection (after a final typed
  reply);
* replies always carry ``ok`` plus either the result or a typed error
  name, so a client can dispatch on ``reply["error"]`` without parsing
  prose.

Solve frames::

    {"id": 7, "signature": "(1: 2, -1)", "values": [1, 2, 3],
     "dtype": "int32", "deadline_ms": 50,
     "trace": {"trace_id": "4bf9...", "span_id": "a1b2..."}}

``id`` is echoed verbatim in the reply (any JSON value); ``dtype``,
``deadline_ms``, and ``trace`` are optional.  ``trace`` lets a caller
join the request to its own distributed trace: ``trace_id`` (lowercase
hex) is adopted for every span the server emits for this request, and
``span_id``, if present, becomes the parent of the server's root span.
Control frames carry an ``op`` instead: ``{"op": "ping"}``,
``{"op": "metrics"}`` (optionally ``"format": "prometheus"``),
``{"op": "slo"}``, ``{"op": "drain"}``.

Replies::

    {"id": 7, "ok": true, "output": [...], "engine": "batch"}
    {"id": 7, "ok": false, "error": "DeadlineExceeded", "detail": "..."}
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.core.errors import ProtocolError, ReproError
from repro.obs.context import is_valid_id

__all__ = [
    "CONTROL_OPS",
    "ControlFrame",
    "MAX_LINE_BYTES",
    "METRICS_FORMATS",
    "ServerError",
    "SolveFrame",
    "encode_reply",
    "error_reply",
    "parse_frame",
]

MAX_LINE_BYTES = 1 << 20
"""Default hard limit on one frame.  A line this long cannot be a
reasonable solve request; refusing it bounds the memory one client can
pin and defeats endless-line slow-loris streams."""

CONTROL_OPS = ("ping", "metrics", "slo", "drain")

METRICS_FORMATS = ("json", "prometheus")


class ServerError(ReproError):
    """The server failed internally while executing a flush.

    The affected requests were not completed and received this as their
    typed reply; the failure counts toward the circuit breaker.  This
    class exists so an *unexpected* exception inside the execution path
    still produces a typed reply — the invariant holds even for bugs.
    """


@dataclass(frozen=True)
class ControlFrame:
    """An operational request: no solving, no queueing.

    ``format`` only applies to ``op == "metrics"`` — ``"json"`` (the
    default) or ``"prometheus"`` text exposition.
    """

    op: str
    id: object = None
    format: str | None = None


@dataclass(frozen=True)
class SolveFrame:
    """One validated solve request, still in wire types (lists, str).

    ``trace`` is the caller's trace-context dict (``trace_id`` required,
    ``span_id`` optional) — shape-validated here, adopted at admission.
    """

    id: object
    signature: str
    values: list
    dtype: str | None = None
    deadline_ms: float | None = None
    trace: dict | None = None


def parse_frame(line: bytes | str) -> ControlFrame | SolveFrame:
    """Parse one line into a frame, or raise a typed ProtocolError.

    Validation here covers the *shape* of the frame (types and required
    fields); semantic validation — does the signature parse, are the
    values numeric — happens where the corresponding typed errors
    (:class:`~repro.core.errors.SignatureError`, ...) are raised.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )

    if "op" in obj:
        op = obj["op"]
        if op not in CONTROL_OPS:
            raise ProtocolError(
                f"unknown op {op!r}; known ops: {', '.join(CONTROL_OPS)}"
            )
        fmt = obj.get("format")
        if fmt is not None:
            if op != "metrics":
                raise ProtocolError(
                    f"format only applies to op 'metrics', not {op!r}"
                )
            if fmt not in METRICS_FORMATS:
                raise ProtocolError(
                    f"unknown metrics format {fmt!r}; "
                    f"known formats: {', '.join(METRICS_FORMATS)}"
                )
        return ControlFrame(op=op, id=obj.get("id"), format=fmt)

    missing = [key for key in ("signature", "values") if key not in obj]
    if missing:
        raise ProtocolError(f"frame is missing {', '.join(missing)}")
    signature = obj["signature"]
    if not isinstance(signature, str):
        raise ProtocolError(
            f"signature must be a string, got {type(signature).__name__}"
        )
    values = obj["values"]
    if not isinstance(values, list):
        raise ProtocolError(
            f"values must be a JSON array, got {type(values).__name__}"
        )
    dtype = obj.get("dtype")
    if dtype is not None and not isinstance(dtype, str):
        raise ProtocolError(
            f"dtype must be a string, got {type(dtype).__name__}"
        )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ProtocolError(
                f"deadline_ms must be a number, got {type(deadline_ms).__name__}"
            )
        if not math.isfinite(deadline_ms) or deadline_ms < 0:
            raise ProtocolError(
                f"deadline_ms must be finite and >= 0, got {deadline_ms}"
            )
    trace = obj.get("trace")
    if trace is not None:
        if not isinstance(trace, dict):
            raise ProtocolError(
                f"trace must be a JSON object, got {type(trace).__name__}"
            )
        if not is_valid_id(trace.get("trace_id")):
            raise ProtocolError(
                "trace.trace_id must be 1-64 lowercase hex chars, "
                f"got {trace.get('trace_id')!r}"
            )
        span_id = trace.get("span_id")
        if span_id is not None and not is_valid_id(span_id):
            raise ProtocolError(
                "trace.span_id must be 1-64 lowercase hex chars, "
                f"got {span_id!r}"
            )
    return SolveFrame(
        id=obj.get("id"),
        signature=signature,
        values=values,
        dtype=dtype,
        deadline_ms=deadline_ms,
        trace=trace,
    )


def error_reply(request_id: object, error: BaseException) -> dict:
    """The typed-error reply: error class name + human detail."""
    return {
        "id": request_id,
        "ok": False,
        "error": type(error).__name__,
        "detail": str(error),
    }


def encode_reply(reply: dict) -> bytes:
    """One reply, JSON-encoded, newline-terminated, UTF-8."""
    return (json.dumps(reply, separators=(",", ":")) + "\n").encode("utf-8")
