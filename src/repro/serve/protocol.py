"""Wire protocol of the serving layer: JSON objects, one per line.

The protocol is deliberately minimal — newline-delimited JSON over a
byte stream (TCP or a Unix socket) — because the robustness properties
live in how frames are *validated*, not in how they are framed:

* every inbound line must parse to a JSON **object**; anything else
  (invalid JSON, arrays, bare scalars, missing fields, wrong field
  types) yields a typed :class:`~repro.core.errors.ProtocolError`
  **reply** and the connection survives;
* a line longer than the configured limit cannot be framed at all —
  the reader cannot tell where the next frame starts — so that is the
  one protocol fault that closes the connection (after a final typed
  reply);
* replies always carry ``ok`` plus either the result or a typed error
  name, so a client can dispatch on ``reply["error"]`` without parsing
  prose.

Solve frames::

    {"id": 7, "signature": "(1: 2, -1)", "values": [1, 2, 3],
     "dtype": "int32", "deadline_ms": 50}

``id`` is echoed verbatim in the reply (any JSON value); ``dtype`` and
``deadline_ms`` are optional.  Control frames carry an ``op`` instead:
``{"op": "ping"}``, ``{"op": "metrics"}``, ``{"op": "drain"}``.

Replies::

    {"id": 7, "ok": true, "output": [...], "engine": "batch"}
    {"id": 7, "ok": false, "error": "DeadlineExceeded", "detail": "..."}
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.core.errors import ProtocolError, ReproError

__all__ = [
    "CONTROL_OPS",
    "ControlFrame",
    "MAX_LINE_BYTES",
    "ServerError",
    "SolveFrame",
    "encode_reply",
    "error_reply",
    "parse_frame",
]

MAX_LINE_BYTES = 1 << 20
"""Default hard limit on one frame.  A line this long cannot be a
reasonable solve request; refusing it bounds the memory one client can
pin and defeats endless-line slow-loris streams."""

CONTROL_OPS = ("ping", "metrics", "drain")


class ServerError(ReproError):
    """The server failed internally while executing a flush.

    The affected requests were not completed and received this as their
    typed reply; the failure counts toward the circuit breaker.  This
    class exists so an *unexpected* exception inside the execution path
    still produces a typed reply — the invariant holds even for bugs.
    """


@dataclass(frozen=True)
class ControlFrame:
    """An operational request: no solving, no queueing."""

    op: str
    id: object = None


@dataclass(frozen=True)
class SolveFrame:
    """One validated solve request, still in wire types (lists, str)."""

    id: object
    signature: str
    values: list
    dtype: str | None = None
    deadline_ms: float | None = None


def parse_frame(line: bytes | str) -> ControlFrame | SolveFrame:
    """Parse one line into a frame, or raise a typed ProtocolError.

    Validation here covers the *shape* of the frame (types and required
    fields); semantic validation — does the signature parse, are the
    values numeric — happens where the corresponding typed errors
    (:class:`~repro.core.errors.SignatureError`, ...) are raised.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )

    if "op" in obj:
        op = obj["op"]
        if op not in CONTROL_OPS:
            raise ProtocolError(
                f"unknown op {op!r}; known ops: {', '.join(CONTROL_OPS)}"
            )
        return ControlFrame(op=op, id=obj.get("id"))

    missing = [key for key in ("signature", "values") if key not in obj]
    if missing:
        raise ProtocolError(f"frame is missing {', '.join(missing)}")
    signature = obj["signature"]
    if not isinstance(signature, str):
        raise ProtocolError(
            f"signature must be a string, got {type(signature).__name__}"
        )
    values = obj["values"]
    if not isinstance(values, list):
        raise ProtocolError(
            f"values must be a JSON array, got {type(values).__name__}"
        )
    dtype = obj.get("dtype")
    if dtype is not None and not isinstance(dtype, str):
        raise ProtocolError(
            f"dtype must be a string, got {type(dtype).__name__}"
        )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ProtocolError(
                f"deadline_ms must be a number, got {type(deadline_ms).__name__}"
            )
        if not math.isfinite(deadline_ms) or deadline_ms < 0:
            raise ProtocolError(
                f"deadline_ms must be finite and >= 0, got {deadline_ms}"
            )
    return SolveFrame(
        id=obj.get("id"),
        signature=signature,
        values=values,
        dtype=dtype,
        deadline_ms=deadline_ms,
    )


def error_reply(request_id: object, error: BaseException) -> dict:
    """The typed-error reply: error class name + human detail."""
    return {
        "id": request_id,
        "ok": False,
        "error": type(error).__name__,
        "detail": str(error),
    }


def encode_reply(reply: dict) -> bytes:
    """One reply, JSON-encoded, newline-terminated, UTF-8."""
    return (json.dumps(reply, separators=(",", ":")) + "\n").encode("utf-8")
