"""Server-level chaos: hostile clients and dying workers vs the server.

Extends the resilience chaos harness (:mod:`repro.resilience.chaos`)
from single solves to the serving layer.  Each phase starts a real
:class:`~repro.serve.server.PLRServer` on an ephemeral local port and
attacks it one way:

* ``pipelined``  — a well-behaved client pipelines a mixed request
  stream (every reply must be bit-correct or typed);
* ``malformed``  — garbage bytes, invalid JSON, wrong shapes, unknown
  ops, oversized lines (typed ProtocolError replies; only the
  unframeable line closes the connection);
* ``slowloris``  — a client dribbles a never-ending frame (the idle
  read timeout must disconnect it; the server keeps serving others);
* ``deadline_storm`` — every request carries a tiny deadline while the
  engine is artificially slow (ok or typed DeadlineExceeded, never a
  late result, never a hang);
* ``overload``   — a flood beyond the intake bound while flushes are
  slow (typed OverloadError sheds, bounded queue, no hang);
* ``worker_death`` — the engine raises WorkerError for consecutive
  flushes (typed replies, circuit-breaker trip to fast-reject, then
  recovery after cooldown);
* ``disconnect`` — clients vanish before reading replies (server
  survives, counts dropped replies, keeps serving);
* ``drain``      — graceful drain completes every in-flight request
  and snapshots metrics.

The invariant, verbatim from the single-solve harness, now over a
server's lifetime: **every request ends in a correct output or a typed
error — never a hang, crash, or silent corruption.**
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.batch.engine import BatchEngine
from repro.batch.planner import BatchPlanner
from repro.core.coefficients import table1_signatures
from repro.core.errors import ReproError, WorkerError
from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype, serial_full
from repro.core.validation import compare_results
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeClient
from repro.serve.protocol import ServerError
from repro.serve.server import PLRServer, ServeConfig

__all__ = [
    "FaultSchedule",
    "FaultyEngine",
    "ServerChaosOutcome",
    "ServerChaosReport",
    "run_server_chaos",
]


def _typed_error_names() -> frozenset[str]:
    """Every ReproError subclass name — the legal ``error`` values."""
    names = {ReproError.__name__, ServerError.__name__}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            names.add(sub.__name__)
            stack.append(sub)
    return frozenset(names)


TYPED_ERROR_NAMES = _typed_error_names()


@dataclass
class FaultSchedule:
    """Mutable injection state shared with the server's engine."""

    die_remaining: int = 0
    """Raise WorkerError for this many upcoming flushes."""

    delay_s: float = 0.0
    """Sleep this long inside every flush (builds queue pressure)."""


class FaultyEngine(BatchEngine):
    """A BatchEngine that honours a :class:`FaultSchedule`.

    Models the two server-relevant failure families: a flush that dies
    outright (worker death mid-batch) and a flush that is merely slow
    (load, contention) — the former must become typed replies and
    breaker pressure, the latter queue growth and deadline/overload
    sheds.
    """

    def __init__(self, *args, schedule: FaultSchedule | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.schedule = schedule or FaultSchedule()

    def execute(self, requests, context=None):
        if self.schedule.die_remaining > 0:
            self.schedule.die_remaining -= 1
            raise WorkerError("injected worker death mid-batch")
        if self.schedule.delay_s > 0:
            time.sleep(self.schedule.delay_s)
        return super().execute(requests, context=context)


@dataclass(frozen=True)
class ServerChaosOutcome:
    """How one chaos interaction ended."""

    phase: str
    status: str  # "correct" | "typed_error" | "expected" | "violation"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "violation"


@dataclass
class ServerChaosReport:
    """Aggregate result of a server chaos run."""

    outcomes: list[ServerChaosOutcome] = field(default_factory=list)
    final_metrics: dict | None = None

    def add(self, phase: str, status: str, detail: str = "") -> None:
        self.outcomes.append(ServerChaosOutcome(phase, status, detail))

    @property
    def violations(self) -> list[ServerChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for o in self.outcomes:
            key = f"{o.phase}:{o.status}"
            tally[key] = tally.get(key, 0) + 1
        return tally

    def phase_counts(self, phase: str) -> dict[str, int]:
        tally: dict[str, int] = {}
        for o in self.outcomes:
            if o.phase == phase:
                tally[o.status] = tally.get(o.status, 0) + 1
        return tally

    def describe(self) -> str:
        lines = [f"server chaos: {len(self.outcomes)} checks"]
        phases = []
        for o in self.outcomes:
            if o.phase not in phases:
                phases.append(o.phase)
        for phase in phases:
            breakdown = ", ".join(
                f"{v} {k}" for k, v in sorted(self.phase_counts(phase).items())
            )
            lines.append(f"  {phase}: {breakdown}")
        for o in self.violations:
            lines.append(f"  VIOLATION [{o.phase}] {o.detail}")
        if self.ok:
            lines.append(
                "invariant held: typed error reply or correct result for "
                "every injected fault, and graceful drain completed"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# harness plumbing


def _chaos_values(recurrence: Recurrence, n: int, rng) -> np.ndarray:
    if recurrence.is_integer:
        return rng.integers(-40, 40, size=n).astype(np.int32)
    return rng.standard_normal(n).astype(np.float32)


def _check_solve_reply(
    report: ServerChaosReport,
    phase: str,
    reply: dict | None,
    signature: str,
    values: np.ndarray,
) -> None:
    """One reply against the invariant: correct output or typed error."""
    if reply is None:
        report.add(phase, "violation", f"no reply for {signature}")
        return
    if reply.get("ok"):
        recurrence = Recurrence.parse(signature)
        dtype = resolve_dtype(recurrence.signature, values.dtype)
        expected = serial_full(values, recurrence.signature, dtype=dtype)
        got = np.asarray(reply["output"])
        if got.shape != expected.shape:
            report.add(
                phase, "violation",
                f"{signature}: output shape {got.shape} != {expected.shape}",
            )
            return
        verdict = compare_results(got.astype(expected.dtype), expected)
        if verdict.ok:
            report.add(phase, "correct")
        else:
            report.add(
                phase, "violation",
                f"silent corruption on {signature}: {verdict.describe()}",
            )
        return
    error = reply.get("error")
    if error in TYPED_ERROR_NAMES:
        report.add(phase, "typed_error", str(error))
    else:
        report.add(phase, "violation", f"untyped error reply: {reply!r}")


class _phase_server:
    """Async context manager: a fresh server wired to a fault schedule."""

    def __init__(self, **config_kwargs) -> None:
        self.schedule = FaultSchedule()
        metrics = MetricsRegistry()
        config = ServeConfig(**config_kwargs)
        engine = FaultyEngine(
            planner=BatchPlanner(
                min_bucket=config.min_bucket, max_batch=config.max_batch
            ),
            metrics=metrics,
            schedule=self.schedule,
        )
        self.server = PLRServer(config, engine=engine, metrics=metrics)

    async def __aenter__(self) -> "_phase_server":
        await self.server.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.server.aclose()


# ----------------------------------------------------------------------
# phases


async def _phase_pipelined(report: ServerChaosReport, rng, requests: int) -> None:
    table = table1_signatures()
    names = sorted(table)
    async with _phase_server(flush_ms=2.0, min_bucket=16) as ctx:
        client = await ServeClient.connect(ctx.server.address)
        sent = []
        for i in range(requests):
            name = names[int(rng.integers(len(names)))]
            signature = str(table[name])
            recurrence = Recurrence(table[name])
            values = _chaos_values(recurrence, int(rng.integers(1, 200)), rng)
            sent.append((signature, values))
            await client.send(
                {"id": i, "signature": signature, "values": values.tolist()}
            )
        replies: dict[int, dict] = {}
        for _ in range(requests):
            reply = await client.recv(timeout=15)
            if reply is None:
                break
            replies[reply.get("id")] = reply
        for i, (signature, values) in enumerate(sent):
            _check_solve_reply(
                report, "pipelined", replies.get(i), signature, values
            )
        await client.close()


async def _phase_malformed(report: ServerChaosReport) -> None:
    async with _phase_server(max_line_bytes=4096, min_bucket=16) as ctx:
        frames = [
            b"this is not json\n",
            b"[1, 2, 3]\n",
            b"42\n",
            b'{"signature": "(1: 1)"}\n',                       # missing values
            b'{"values": [1, 2]}\n',                            # missing signature
            b'{"signature": 7, "values": [1]}\n',               # wrong type
            b'{"signature": "(1: 1)", "values": "nope"}\n',     # wrong type
            b'{"signature": "(1: 1)", "values": [1], "deadline_ms": "soon"}\n',
            b'{"signature": "(1: 1)", "values": [1], "deadline_ms": -5}\n',
            b'{"op": "reboot"}\n',
            b'{"signature": "(1: ", "values": [1, 2]}\n',       # unparsable sig
            b'{"signature": "(1: 1)", "values": [1, "x", 3]}\n',  # non-numeric
            b'\xff\xfe{"signature"\n',                          # not UTF-8
        ]
        client = await ServeClient.connect(ctx.server.address)
        for frame in frames:
            await client.send_raw(frame)
            reply = await client.recv(timeout=10)
            if reply is None:
                report.add(
                    "malformed", "violation",
                    f"connection died on recoverable frame {frame[:40]!r}",
                )
                client = await ServeClient.connect(ctx.server.address)
                continue
            if not reply.get("ok") and reply.get("error") in TYPED_ERROR_NAMES:
                report.add("malformed", "typed_error", str(reply.get("error")))
            else:
                report.add(
                    "malformed", "violation",
                    f"frame {frame[:40]!r} got non-typed reply {reply!r}",
                )
        # The connection must still serve a valid request after all that.
        values = np.arange(1, 6, dtype=np.int32)
        reply = await client.solve("(1: 1)", values.tolist(), request_id="ok")
        _check_solve_reply(report, "malformed", reply, "(1: 1)", values)

        # An unframeable line: typed reply, then the connection closes.
        hostile = await ServeClient.connect(ctx.server.address)
        await hostile.send_raw(b"x" * 8192 + b"\n")
        reply = await hostile.recv(timeout=10)
        if reply is not None and reply.get("error") == "ProtocolError":
            report.add("malformed", "typed_error", "oversized line")
        else:
            report.add(
                "malformed", "violation",
                f"oversized line expected ProtocolError close, got {reply!r}",
            )
        after = await hostile.recv(timeout=10)
        if after is None:
            report.add("malformed", "expected", "oversized line closed connection")
        else:
            report.add(
                "malformed", "violation",
                f"connection stayed open past unframeable line: {after!r}",
            )
        await hostile.close()
        await client.close()


async def _phase_slowloris(report: ServerChaosReport) -> None:
    async with _phase_server(read_timeout_s=0.25, min_bucket=16) as ctx:
        loris = await ServeClient.connect(ctx.server.address)
        start = time.monotonic()
        # Dribble an endless, never-terminated frame.
        closed = False
        for _ in range(40):
            try:
                await loris.send_raw(b'{"signature": ')
            except (ConnectionError, OSError):
                closed = True
                break
            try:
                line = await asyncio.wait_for(loris.reader.readline(), 0.1)
                if not line:
                    closed = True
                    break
            except asyncio.TimeoutError:
                pass
        elapsed = time.monotonic() - start
        if closed and elapsed < 5.0:
            report.add(
                "slowloris", "expected",
                f"disconnected after {elapsed:.2f}s",
            )
        else:
            report.add(
                "slowloris", "violation",
                f"slow-loris client not disconnected (closed={closed} "
                f"after {elapsed:.2f}s)",
            )
        await loris.close()
        # The server must still serve a healthy client afterwards.
        client = await ServeClient.connect(ctx.server.address)
        values = np.arange(1, 9, dtype=np.int32)
        reply = await client.solve("(1: 1)", values.tolist())
        _check_solve_reply(report, "slowloris", reply, "(1: 1)", values)
        await client.close()


async def _phase_deadline_storm(
    report: ServerChaosReport, rng, requests: int
) -> None:
    async with _phase_server(flush_ms=1.0, min_bucket=16, max_batch=4) as ctx:
        ctx.schedule.delay_s = 0.03  # every flush is slow
        client = await ServeClient.connect(ctx.server.address)
        sent = []
        for i in range(requests):
            values = np.arange(1, int(rng.integers(2, 40)), dtype=np.int32)
            deadline = float(rng.choice([0.0, 0.5, 2.0, 10.0, 200.0]))
            sent.append(values)
            await client.send(
                {
                    "id": i,
                    "signature": "(1: 1)",
                    "values": values.tolist(),
                    "deadline_ms": deadline,
                }
            )
        deadline_replies = 0
        replies: dict[int, dict] = {}
        for _ in range(requests):
            reply = await client.recv(timeout=15)
            if reply is None:
                break
            replies[reply.get("id")] = reply
            if reply.get("error") == "DeadlineExceeded":
                deadline_replies += 1
        for i, values in enumerate(sent):
            _check_solve_reply(report, "deadline_storm", replies.get(i), "(1: 1)", values)
        if deadline_replies:
            report.add(
                "deadline_storm", "expected",
                f"{deadline_replies} typed DeadlineExceeded replies",
            )
        else:
            report.add(
                "deadline_storm", "violation",
                "zero-deadline requests were not shed",
            )
        await client.close()


async def _phase_overload(report: ServerChaosReport, requests: int) -> None:
    async with _phase_server(
        flush_ms=1.0, min_bucket=16, max_batch=2, max_queue=4
    ) as ctx:
        ctx.schedule.delay_s = 0.08
        client = await ServeClient.connect(ctx.server.address)
        values = np.arange(1, 17, dtype=np.int32)
        for i in range(requests):
            await client.send(
                {"id": i, "signature": "(1: 1)", "values": values.tolist()}
            )
        sheds = 0
        answered = 0
        for _ in range(requests):
            reply = await client.recv(timeout=20)
            if reply is None:
                break
            answered += 1
            if reply.get("error") == "OverloadError":
                sheds += 1
                report.add("overload", "typed_error", "OverloadError")
            else:
                _check_solve_reply(report, "overload", reply, "(1: 1)", values)
        if answered < requests:
            report.add(
                "overload", "violation",
                f"only {answered}/{requests} replies before timeout",
            )
        elif sheds:
            report.add("overload", "expected", f"{sheds} requests shed")
        else:
            report.add(
                "overload", "violation",
                f"queue bound {ctx.server.config.max_queue} never shed "
                f"under a {requests}-request flood",
            )
        await client.close()


async def _phase_worker_death(report: ServerChaosReport) -> None:
    threshold = 3
    async with _phase_server(
        flush_ms=1.0,
        min_bucket=16,
        breaker_threshold=threshold,
        breaker_cooldown_s=0.25,
    ) as ctx:
        client = await ServeClient.connect(ctx.server.address)
        values = np.arange(1, 9, dtype=np.int32)
        ctx.schedule.die_remaining = threshold
        # Each of these requests rides a flush that dies mid-batch.
        for i in range(threshold):
            reply = await client.solve(
                "(1: 1)", values.tolist(), request_id=f"dead-{i}", timeout=10
            )
            if reply is not None and reply.get("error") == "WorkerError":
                report.add("worker_death", "typed_error", "WorkerError")
            else:
                report.add(
                    "worker_death", "violation",
                    f"dying flush replied {reply!r}",
                )
        # The breaker has tripped: fast-reject without queueing.
        reply = await client.solve(
            "(1: 1)", values.tolist(), request_id="rejected", timeout=10
        )
        if reply is not None and reply.get("error") == "OverloadError":
            report.add("worker_death", "expected", "breaker fast-reject")
        else:
            report.add(
                "worker_death", "violation",
                f"tripped breaker replied {reply!r}",
            )
        # After the cooldown the engine is healthy again; the probe
        # flush must close the breaker and serve correctly.
        await asyncio.sleep(0.3)
        reply = await client.solve(
            "(1: 1)", values.tolist(), request_id="probe", timeout=10
        )
        _check_solve_reply(report, "worker_death", reply, "(1: 1)", values)
        metrics_reply = await client.metrics()
        trips = (
            metrics_reply["metrics"]["counters"].get("serve.breaker_trips", 0)
            if metrics_reply
            else 0
        )
        if trips >= 1:
            report.add("worker_death", "expected", f"breaker tripped {trips:g}x")
        else:
            report.add("worker_death", "violation", "breaker never tripped")
        await client.close()


async def _phase_disconnect(report: ServerChaosReport) -> None:
    async with _phase_server(flush_ms=1.0, min_bucket=16) as ctx:
        ctx.schedule.delay_s = 0.05
        values = np.arange(1, 33, dtype=np.int32)
        # Vanish before reading any reply.
        for _ in range(3):
            ghost = await ServeClient.connect(ctx.server.address)
            await ghost.send(
                {"id": "ghost", "signature": "(1: 1)", "values": values.tolist()}
            )
            ghost.writer.close()  # no wait_closed: slam the door
        await asyncio.sleep(0.3)  # let the flushes land on dead sockets
        ctx.schedule.delay_s = 0.0
        client = await ServeClient.connect(ctx.server.address)
        reply = await client.solve("(1: 1)", values.tolist())
        _check_solve_reply(report, "disconnect", reply, "(1: 1)", values)
        await client.close()


async def _phase_drain(report: ServerChaosReport) -> None:
    async with _phase_server(flush_ms=5.0, min_bucket=16) as ctx:
        ctx.schedule.delay_s = 0.02
        client = await ServeClient.connect(ctx.server.address)
        sent = []
        for i in range(6):
            values = np.arange(1, 10 + i, dtype=np.int32)
            sent.append(values)
            await client.send(
                {"id": i, "signature": "(1: 1)", "values": values.tolist()}
            )
        await client.send({"op": "drain", "id": "drain"})
        replies: dict[object, dict] = {}
        while len(replies) < len(sent) + 1:
            reply = await client.recv(timeout=15)
            if reply is None:
                break
            replies[reply.get("id")] = reply
        for i, values in enumerate(sent):
            _check_solve_reply(report, "drain", replies.get(i), "(1: 1)", values)
        drain_reply = replies.get("drain")
        if drain_reply is not None and drain_reply.get("ok"):
            report.add("drain", "expected", "drain acknowledged")
        else:
            report.add("drain", "violation", f"drain reply was {drain_reply!r}")
        # The server must have completed its drain and snapshotted.
        for _ in range(50):
            if ctx.server.final_snapshot is not None:
                break
            await asyncio.sleep(0.05)
        if ctx.server.final_snapshot is not None:
            report.add("drain", "expected", "metrics snapshot taken")
            report.final_metrics = ctx.server.final_snapshot
        else:
            report.add("drain", "violation", "drain never completed")
        await client.close()


# ----------------------------------------------------------------------


async def _run(seed: int, requests: int) -> ServerChaosReport:
    rng = np.random.default_rng(seed)
    report = ServerChaosReport()
    await _phase_pipelined(report, rng, requests)
    await _phase_malformed(report)
    await _phase_slowloris(report)
    await _phase_deadline_storm(report, rng, requests)
    await _phase_overload(report, max(requests, 24))
    await _phase_worker_death(report)
    await _phase_disconnect(report)
    await _phase_drain(report)
    return report


def run_server_chaos(seed: int = 0, requests: int = 24) -> ServerChaosReport:
    """Run the full server chaos matrix; returns the aggregate report.

    ``requests`` scales the pipelined / deadline-storm / overload
    phases.  Everything randomized is derived from ``seed``; timing
    -dependent *counts* (how many requests were shed) vary run to run,
    but the invariant — typed error or correct result, never a hang —
    must hold for every interaction regardless.
    """
    return asyncio.run(_run(seed, requests))
