"""A minimal asyncio client for the JSONL serving protocol.

Used by ``plr serve --self-test``, the server chaos harness, and the
test suite; thin enough that a third-party client in any language can
be written from its behaviour (send one JSON object per line, read one
JSON object per line).
"""

from __future__ import annotations

import asyncio
import json

from repro.core.errors import ProtocolError

__all__ = ["ServeClient"]


class ServeClient:
    """One connection to a :class:`~repro.serve.server.PLRServer`.

    Replies are read in arrival order; the protocol carries request ids
    so callers can correlate out-of-order usage themselves when they
    pipeline.  All methods raise :class:`ProtocolError` if the server's
    reply cannot be parsed (which would be a server bug).
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(
        cls, address: tuple[str, int] | str, limit: int = 1 << 20
    ) -> "ServeClient":
        if isinstance(address, str):
            reader, writer = await asyncio.open_unix_connection(
                address, limit=limit
            )
        else:
            host, port = address
            reader, writer = await asyncio.open_connection(
                host, port, limit=limit
            )
        return cls(reader, writer)

    async def send(self, frame: dict) -> None:
        self.writer.write((json.dumps(frame) + "\n").encode("utf-8"))
        await self.writer.drain()

    async def send_raw(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def recv(self, timeout: float = 30.0) -> dict | None:
        """The next reply, or None on EOF/connection loss."""
        try:
            line = await asyncio.wait_for(self.reader.readline(), timeout)
        except (ConnectionError, OSError):
            return None
        if not line:
            return None
        try:
            reply = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"unparseable reply from server: {exc}") from exc
        if not isinstance(reply, dict):
            raise ProtocolError(f"non-object reply from server: {reply!r}")
        return reply

    async def request(self, frame: dict, timeout: float = 30.0) -> dict | None:
        """Send one frame and read one reply (no pipelining)."""
        await self.send(frame)
        return await self.recv(timeout)

    async def solve(
        self,
        signature: str,
        values,
        dtype: str | None = None,
        deadline_ms: float | None = None,
        request_id: object = None,
        trace: dict | None = None,
        timeout: float = 30.0,
    ) -> dict | None:
        frame: dict = {"id": request_id, "signature": signature, "values": list(values)}
        if dtype is not None:
            frame["dtype"] = dtype
        if deadline_ms is not None:
            frame["deadline_ms"] = deadline_ms
        if trace is not None:
            frame["trace"] = trace
        return await self.request(frame, timeout)

    async def metrics(
        self, format: str | None = None, timeout: float = 30.0
    ) -> dict | None:
        frame: dict = {"op": "metrics"}
        if format is not None:
            frame["format"] = format
        return await self.request(frame, timeout)

    async def slo(self, timeout: float = 30.0) -> dict | None:
        return await self.request({"op": "slo"}, timeout)

    async def ping(self, timeout: float = 30.0) -> dict | None:
        return await self.request({"op": "ping"}, timeout)

    async def drain(self, timeout: float = 30.0) -> dict | None:
        return await self.request({"op": "drain"}, timeout)

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
