"""repro.serve — the robust serving layer.

A long-running asyncio server speaking newline-delimited JSON over TCP
or a Unix socket.  Requests are coalesced into
:class:`~repro.batch.planner.BatchPlanner` groups under adaptive
micro-batching; robustness is load-bearing: per-request deadlines with
cooperative cancellation, admission control over a bounded intake
queue, typed load shedding, a circuit breaker, per-request failure
isolation, graceful drain, and warm factor-table state.

See ``docs/serving.md`` for the protocol and semantics, and
:mod:`repro.serve.chaos` for the hostile-client test harness.
"""

from repro.serve.protocol import (
    CONTROL_OPS,
    MAX_LINE_BYTES,
    ControlFrame,
    ServerError,
    SolveFrame,
    encode_reply,
    error_reply,
    parse_frame,
)
from repro.serve.server import CircuitBreaker, PLRServer, ServeConfig, WarmTables
from repro.serve.client import ServeClient

__all__ = [
    "CONTROL_OPS",
    "CircuitBreaker",
    "ControlFrame",
    "MAX_LINE_BYTES",
    "PLRServer",
    "ServeClient",
    "ServeConfig",
    "ServerError",
    "SolveFrame",
    "WarmTables",
    "encode_reply",
    "error_reply",
    "parse_frame",
]
