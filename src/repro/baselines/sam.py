"""SAM: the auto-tuned higher-order/tuple prefix-sum model.

SAM (Maleki, Yang & Burtscher, PLDI 2016) is the paper's strongest
competitor on prefix-sum variants.  Its two distinguishing features,
both visible in the figures:

* an **install-time auto-tuner** picks the elements-per-thread grain
  per problem size — SAM is the fastest code on small inputs in every
  integer figure;
* for order-r prefix sums it "only repeats the computation but not the
  reading in and writing out of the values": one 2n-movement pass with
  r in-register scan sweeps, which beats CUB's r full passes and stays
  ahead of PLR by 50%/38%/33% at orders 2/3/4;
* for s-tuples it "computes s independent interleaved scalar prefix
  sums" in one pass.

Like CUB, SAM's domain is prefix sums with all-ones carries; arbitrary
coefficients are unsupported.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.core.classify import RecurrenceClass
from repro.core.errors import UnsupportedRecurrenceError
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.l2cache import AccessStreamSummary
from repro.gpusim.spec import MachineSpec

__all__ = ["SamScan"]

_TILE = 4096


class SamScan(RecurrenceCode):
    """The SAM model: single-pass, in-register repetition, auto-tuned."""

    name = "SAM"

    def check_supported(self, workload: Workload, machine: MachineSpec) -> None:
        super().check_supported(workload, machine)
        cls = workload.recurrence.classification
        if not cls.is_prefix_sum_family:
            raise UnsupportedRecurrenceError(
                "SAM only supports prefix sums (scalar, tuple, higher-order); "
                f"got {workload.recurrence.signature}"
            )

    # ------------------------------------------------------------------
    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        cls = recurrence.classification
        values = np.asarray(values)
        with np.errstate(over="ignore"):
            if cls.kind == RecurrenceClass.TUPLE_PREFIX_SUM and cls.tuple_size > 1:
                return self._interleaved_scan(values, cls.tuple_size)
            out = values
            # One read, r in-register scan sweeps, one write: modeled
            # faithfully at tile granularity — the repetition happens
            # on the full sequence but SAM's memory behaviour (single
            # read/write) is what the traffic model charges.
            for _ in range(cls.sum_order or 1):
                out = np.cumsum(out, dtype=values.dtype)
        return out

    def _interleaved_scan(self, values: np.ndarray, size: int) -> np.ndarray:
        """s independent interleaved scalar prefix sums, one pass."""
        n = values.size
        out = np.empty_like(values)
        for lane in range(size):
            with np.errstate(over="ignore"):
                out[lane::size] = np.cumsum(values[lane::size], dtype=values.dtype)
        return out

    # ------------------------------------------------------------------
    def tuned_elements_per_thread(self, n: int) -> int:
        """The auto-tuner's grain choice (coarse model of SAM's table).

        Small inputs get small grains so enough blocks exist to fill
        the machine; large inputs get the bandwidth-optimal maximum.
        """
        for grain, limit in ((1, 1 << 16), (2, 1 << 18), (4, 1 << 21), (8, 1 << 24)):
            if n <= limit:
                return grain
        return 12

    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        n = workload.n
        cls = workload.recurrence.classification
        repeats = cls.sum_order or 1
        tuple_size = cls.tuple_size or 1
        # Single pass over the data regardless of order...
        read = float(workload.input_bytes)
        write = float(workload.input_bytes)
        # ...with the scan computation repeated in registers: each
        # repetition re-runs the tile-local scan *and* lengthens the
        # in-tile dependence chains (growing superlinearly with the
        # order, which is why SAM's lead over PLR shrinks at higher
        # orders).  The scalar one-pass cost matches CUB's.
        ops = float(n) * (
            29.0 + 12.4 * (repeats - 1) + 11.0 * (tuple_size - 1)
        )
        # One fused, auto-tuned kernel: minimal fixed overhead, which
        # is SAM's visible advantage on small inputs in every figure.
        return Traffic(
            hbm_read_bytes=read,
            hbm_write_bytes=write,
            l2_read_bytes=float(n // _TILE) * 2 * repeats * tuple_size * WORD_BYTES,
            aux_ops=ops,
            kernel_launches=1,
        )

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 2: "SAM requires only one more megabyte" than memcpy.
        tiles = -(-workload.n // _TILE)
        tuple_size = workload.recurrence.classification.tuple_size or 1
        descriptors = tiles * (2 * tuple_size * WORD_BYTES + 8)
        pad = 1024 * 1024 - descriptors if descriptors < 1024 * 1024 else 0
        return (
            machine.baseline_context_bytes
            + self._io_buffers_bytes(workload)
            + descriptors
            + pad
        )

    def l2_read_miss_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 3: single pass -> cold input misses plus tile state.
        summary = AccessStreamSummary(machine)
        summary.cold_pass(workload.input_bytes)
        tiles = -(-workload.n // _TILE)
        summary.resident_structure(tiles * 2 * WORD_BYTES * (workload.order))
        return summary.total_read_miss_bytes
