"""Alg3: the Nehab et al. GPU-efficient recursive-filter model.

Nehab et al. (SIGGRAPH Asia 2011) process 2D images block-wise with an
"overlapping" scheme: a first pass computes block-local filter results
and block-boundary state (but *discards* the bulk results to save
bandwidth), the boundary states are fixed up across blocks, and a
second pass **re-reads the input** and recomputes each block with the
correct incoming state.  Recomputing instead of storing is the
defining bandwidth trade: it halves writes at the cost of reading the
input twice — exactly what Table 3 shows (550.6 MB of read misses for
a 256 MB input) and why Alg3 cannot reach memcpy throughput on large
1D sequences (Figures 6-8).

Restrictions mirrored from the paper:

* at most one non-recursive coefficient ("Neither Alg3 nor Rec
  currently support recursive filters with more than one non-recursive
  coefficient"), so the Table 1 high-pass filters are unsupported;
* floating-point filters only (it is an image-processing code);
* inputs up to 2 GB (2^29 words) — Figures 6-8 stop there;
* always filters in both the positive and negative horizontal
  direction ("we were unable to turn off the extra filter operation"),
  so its traffic includes a second (anticausal) filter pass over the
  data; our *computed result* is the causal filter only, so it stays
  comparable with the serial reference.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.core.errors import UnsupportedRecurrenceError
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.l2cache import AccessStreamSummary
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase2 import transition_matrix

__all__ = ["Alg3Filter"]

_BLOCK = 1024  # words per processing block (a 32x32 image tile row-major)


class Alg3Filter(RecurrenceCode):
    """The Alg3 model: block filtering with recompute-not-store."""

    name = "Alg3"

    max_words = 2**29  # 2 GB of 32-bit words

    def check_supported(self, workload: Workload, machine: MachineSpec) -> None:
        super().check_supported(workload, machine)
        sig = workload.recurrence.signature
        if len(sig.feedforward) > 1:
            raise UnsupportedRecurrenceError(
                "Alg3 supports at most one non-recursive coefficient; "
                f"got {sig}"
            )
        if sig.is_integer:
            raise UnsupportedRecurrenceError(
                "Alg3 is a floating-point image-filtering code"
            )
        if workload.n > self.max_words:
            raise UnsupportedRecurrenceError("Alg3 only supports inputs up to 2 GB")

    # ------------------------------------------------------------------
    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        """Two-pass block filtering: state fix-up, then recompute.

        Pass 1 filters each block from zero state, keeping only the
        last-k boundary state per block.  The boundary states are then
        corrected sequentially through the same carry-transition
        algebra PLR uses (the underlying math is shared — both codes
        propagate k-element filter states across block borders).
        Pass 2 re-reads the input and refilters each block, seeded with
        its predecessor's corrected state.
        """
        values = np.asarray(values, dtype=np.float32)
        sig = recurrence.signature
        scale = np.float32(sig.feedforward[0])
        feedback = [np.float32(b) for b in sig.feedback]
        k = len(feedback)
        n = values.size
        blocks = -(-n // _BLOCK)
        padded = np.zeros(blocks * _BLOCK, dtype=np.float32)
        padded[:n] = values * scale
        grid = padded.reshape(blocks, _BLOCK)

        # Pass 1: block-local filtering; keep only boundary states.
        local_state = np.zeros((blocks, k), dtype=np.float32)
        table = CorrectionFactorTable.build(
            recurrence.recursive_signature, _BLOCK, np.float32
        )
        for b in range(blocks):
            tail = self._filter_block_tail_only(grid[b], feedback, k)
            local_state[b] = tail

        # Fix-up: global boundary states via the carry transition.
        matrix = transition_matrix(table)
        global_state = np.empty_like(local_state)
        global_state[0] = local_state[0]
        for b in range(1, blocks):
            global_state[b] = local_state[b] + matrix @ global_state[b - 1]

        # Pass 2: re-read the input, recompute each block with state.
        out = np.empty_like(grid)
        for b in range(blocks):
            incoming = global_state[b - 1] if b > 0 else np.zeros(k, dtype=np.float32)
            out[b] = self._filter_block(grid[b], feedback, incoming)
        return out.reshape(-1)[:n]

    @staticmethod
    def _filter_block(
        block: np.ndarray, feedback: list, state: np.ndarray
    ) -> np.ndarray:
        """Serial IIR over one block with incoming state (y[-1], ..., y[-k])."""
        k = len(feedback)
        out = np.empty_like(block)
        history = list(state[:k])  # most recent first
        for i in range(block.size):
            acc = block[i]
            for j in range(k):
                acc += feedback[j] * history[j]
            out[i] = acc
            history = [acc] + history[: k - 1]
        return out

    @classmethod
    def _filter_block_tail_only(
        cls, block: np.ndarray, feedback: list, k: int
    ) -> np.ndarray:
        """Pass 1: filter from zero state, return the last k outputs."""
        filtered = cls._filter_block(
            block, feedback, np.zeros(k, dtype=block.dtype)
        )
        return filtered[-k:][::-1].copy()

    # ------------------------------------------------------------------
    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        n, k = workload.n, workload.order
        bytes_in = float(workload.input_bytes)
        # Causal direction: read input twice (pass 1 + recompute pass),
        # write once.  The untunable anticausal filter doubles the
        # whole pipeline ("Alg3 still filters in both ... directions").
        directions = 2
        read = directions * 2 * bytes_in
        write = directions * bytes_in
        blocks = n / _BLOCK
        return Traffic(
            hbm_read_bytes=read,
            hbm_write_bytes=write,
            l2_read_bytes=blocks * 2 * k * WORD_BYTES,
            fma_ops=directions * 2.0 * n * k,
            aux_ops=directions * 2.0 * n,
            kernel_launches=4 * directions,  # per-stage kernels per direction
            serial_hops=2.0,
        )

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 2: Alg3 allocates 274-306 MB beyond the buffers, growing
        # ~16 MB per order: transposition buffers and per-block state
        # arrays sized to the 2D layout.
        base_extra = 274 * 1024 * 1024 + (workload.order - 1) * 16 * 1024 * 1024
        return (
            machine.baseline_context_bytes
            + self._io_buffers_bytes(workload)
            + base_extra
        )

    def l2_read_miss_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 3: ~550-632 MB for a 256 MB input — the second read of
        # the input misses again (working set >> 2 MB L2), plus the
        # extra buffers it streams (grows with order).
        summary = AccessStreamSummary(machine)
        summary.cold_pass(workload.input_bytes)
        summary.repeat_pass(workload.input_bytes)
        extra = (38 + 41 * (workload.order - 1)) * 1024 * 1024
        summary.cold_pass(extra)
        return summary.total_read_miss_bytes
