"""PLR itself, wrapped in the evaluation interface.

The executable path is :class:`~repro.plr.solver.PLRSolver`.  The
traffic model is derived mechanically from the same
:class:`~repro.plr.optimizer.FactorPlan` the code generators consume,
so Figure 10's "optimizations on/off" comparison toggles *one*
configuration object and everything — generated code, simulator, cost
model — moves together:

* per-correction costs depend on the factor realization (a folded
  constant needs no load; a 0/1 factor needs no multiply; a truncated
  list shrinks the correction counts themselves);
* factor loads hit the shared-memory buffer below index 1024 and the
  L2 beyond it (or always the L2 with buffering disabled);
* 64-register plans halve occupancy, throttling compute throughput —
  why higher-order integer sums are PLR's weakest class (Figures 4-5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.l2cache import AccessStreamSummary
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import (
    FactorRealization,
    OptimizationConfig,
    optimize_factors,
)
from repro.plr.phase1 import doubling_widths
from repro.plr.planner import plan_execution
from repro.plr.solver import PLRSolver

__all__ = ["PLRCode", "CorrectionCounts"]


@dataclass(frozen=True)
class CorrectionCounts:
    """How many corrections one chunk performs, and what they load.

    ``fma`` — corrections that multiply by a loaded/derived factor;
    ``truncated`` — multiply corrections guarded by the decay cutoff;
    ``predicated`` / ``predicated_mod`` — 0/1-factor conditional adds
    (no multiply), the latter paying a non-power-of-two modulo;
    ``constant`` — folded-constant corrections (no load);
    ``denormal`` — corrections multiplying denormal factors (only with
    flushing disabled), which hit the slow arithmetic path;
    ``shared_loads`` / ``l2_loads`` — where the factor values come from.
    """

    fma: float
    truncated: float
    predicated: float
    predicated_mod: float
    constant: float
    denormal: float
    shared_loads: float
    l2_loads: float

    @property
    def total(self) -> float:
        return (
            self.fma
            + self.truncated
            + self.predicated
            + self.predicated_mod
            + self.constant
        )


class PLRCode(RecurrenceCode):
    """The paper's system: auto-generated two-phase recurrence code."""

    name = "PLR"

    def __init__(self, optimization: OptimizationConfig | None = None) -> None:
        self.optimization = optimization or OptimizationConfig()

    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        return PLRSolver(recurrence, optimization=self.optimization).solve(values)

    # ------------------------------------------------------------------
    def correction_counts(
        self, workload: Workload, machine: MachineSpec, plan=None
    ) -> CorrectionCounts:
        """Count one chunk's Phase 1 + Phase 2 correction work."""
        if plan is None:
            plan = plan_execution(workload.recurrence.signature, workload.n, machine)
        dtype = np.int32 if workload.is_integer else np.float32
        table = CorrectionFactorTable.build(
            workload.recurrence.recursive_signature, plan.chunk_size, dtype
        )
        fplan = optimize_factors(table, self.optimization)
        m, x, k = plan.chunk_size, plan.values_per_thread, workload.order
        buffered = fplan.shared_buffer_elements
        active = fplan.phase1_active_elements

        fma = predicated = predicated_mod = constant = 0.0
        truncated = denormal = shared = l2 = 0.0

        def account(
            j: int, count_below: float, count_above: float, span: int
        ) -> None:
            """Add corrections for carry j split at the buffer boundary.

            ``span`` is how far past the border this batch of
            corrections reaches (the factor indices touched are
            0..span-1); it locates the denormal tail.
            """
            nonlocal fma, predicated, predicated_mod, constant
            nonlocal truncated, denormal, shared, l2
            decision = fplan.decisions[j]
            count = count_below + count_above
            real = decision.realization
            if real == FactorRealization.CONSTANT:
                constant += count
            elif real == FactorRealization.ZERO_ONE:
                if decision.period is not None:
                    # Periodic 0/1 pattern: the condition is an index
                    # computation, no factor load at all.  Non-power-
                    # of-two periods need a modulo ("PLR's performance
                    # advantage is higher on tuple sizes that are
                    # powers of two").
                    if decision.period & (decision.period - 1) == 0:
                        predicated += count
                    else:
                        predicated_mod += count
                else:
                    predicated += count
                    l2 += count
            elif real in (FactorRealization.PERIODIC, FactorRealization.SHIFT_OF_FIRST):
                # A short period stays resident in registers/shared.
                fma += count
                shared += count
            elif real == FactorRealization.TRUNCATED:
                # The surviving prefix (a few hundred factors for the
                # Table 1 filters) fits entirely in the shared buffer.
                truncated += count
                shared += count
            elif real == FactorRealization.BUFFERED_ARRAY:
                # General factor lists: every fetch consumes on-chip
                # bandwidth whether it hits the shared buffer or the
                # L2 — which is why the paper measures only ~3% gain
                # from buffering on the higher-order prefix sums.
                fma += count
                l2 += count
            else:  # GLOBAL_ARRAY: optimizations off — everything from L2
                fma += count
                l2 += count
                if not fplan.config.truncate_decayed:
                    # Without denormal flushing, corrections in the
                    # decayed tail multiply by denormal operands, which
                    # Maxwell executes on a slow path.
                    flushed = table.decay_index(j)
                    if flushed is not None and span > flushed:
                        denormal += count * (span - flushed) / span

        # Phase 1 doubling levels.
        for width in doubling_widths(x, m):
            pairs = m // (2 * width)
            limit = min(width, active)
            for j in range(min(k, width)):
                below = float(pairs) * min(limit, buffered)
                above = float(pairs) * max(0, limit - buffered)
                account(j, below, above, limit)
        # Phase 2 correction of the whole chunk (truncation shrinks it).
        p2_limit = active if active < m else m
        for j in range(k):
            account(
                j,
                float(min(p2_limit, buffered)),
                float(max(0, p2_limit - buffered)),
                p2_limit,
            )
        return CorrectionCounts(
            fma,
            truncated,
            predicated,
            predicated_mod,
            constant,
            denormal,
            shared,
            l2,
        )

    # Calibrated per-event instruction costs.  The absolute scale is
    # set jointly with CostModel.compute_efficiency against the paper's
    # anchors (PLR==memcpy on prefix sums and 1-stage filters, the
    # SAM/PLR higher-order gaps, the Figure 10 on/off ratios); the
    # *relative* values follow the instruction mix: a multiply-add with
    # its offset arithmetic, a cheaper predicated add, a pure constant
    # add, bounds-guard overhead on truncated rows, the Maxwell
    # denormal slow path, and load-port pressure per factor fetch.
    _OPS_FMA = 1.0
    _OPS_TRUNCATED = 3.4  # fma + decay-cutoff guard and warp-exit logic
    _OPS_PREDICATED = 1.2
    _OPS_PREDICATED_MOD = 2.2  # non-power-of-two period: modulo per index
    _OPS_CONSTANT = 1.0
    _OPS_DENORMAL = 10.0  # Maxwell's denormal-operand slow path
    _OPS_SHARED_LOAD = 0.4
    _OPS_L2_LOAD = 0.6
    _PIPELINE_FILL_HOPS = 16  # look-back chain warm-up at kernel start

    def traffic(self, workload: Workload, machine: MachineSpec, plan=None) -> Traffic:
        """Resource demands; ``plan`` overrides the default heuristics
        (used by the auto-tuner to score candidate x values)."""
        n, k = workload.n, workload.order
        if plan is None:
            plan = plan_execution(workload.recurrence.signature, n, machine)
        counts = self.correction_counts(workload, machine, plan=plan)
        chunks = plan.num_chunks
        per_chunk_ops = (
            counts.fma * self._OPS_FMA
            + counts.truncated * self._OPS_TRUNCATED
            + counts.predicated * self._OPS_PREDICATED
            + counts.predicated_mod * self._OPS_PREDICATED_MOD
            + counts.constant * self._OPS_CONSTANT
            + counts.denormal * self._OPS_DENORMAL
            + counts.shared_loads * self._OPS_SHARED_LOAD
            + counts.l2_loads * self._OPS_L2_LOAD
        )
        # Thread-local serial solve and the FIR map stage.
        p = workload.recurrence.signature.fir_order
        per_chunk_ops += plan.chunk_size * (min(plan.values_per_thread - 1, k))
        map_ops = float(n) * (p + 1) if workload.recurrence.has_map_stage else 0.0

        # 64-register plans fit one block per SM instead of two: half
        # the occupancy, half the realized op throughput.
        occupancy = plan.block_size * (
            machine.registers_per_sm
            // (plan.registers_per_thread * plan.block_size)
        ) / machine.max_threads_per_sm
        occupancy = max(min(occupancy, 1.0), 0.25)
        ops = (per_chunk_ops * chunks + map_ops) / occupancy

        carries_bytes = chunks * (2 * k * WORD_BYTES + 8) * 2.0  # r+w
        waves = -(-chunks // plan.resident_blocks)
        # Fewer chunks than resident-block slots leaves SMs idle; the
        # memory system cannot be saturated from a partial grid.  The
        # floor models bandwidth scaling linearly with occupancy up to
        # full residency (this is what makes oversized x lose on small
        # inputs and gives the auto-tuner a real trade-off).
        utilization = min(1.0, chunks / plan.resident_blocks)
        bandwidth_floor = (
            (float(workload.input_bytes) * 2.0)
            / (machine.peak_bandwidth_bytes * 0.834)
            / max(utilization, 1e-6)
        )
        return Traffic(
            # The FIR map stage over-fetches each thread range's left
            # neighbours (p extra words per thread boundary, partially
            # uncoalesced) — the source of the order-independent ~17%
            # high-pass vs low-pass gap in Figure 9.
            hbm_read_bytes=float(workload.input_bytes) * (1.0 + 0.5 * p),
            hbm_write_bytes=float(workload.input_bytes),
            l2_read_bytes=counts.l2_loads * WORD_BYTES * chunks
            + carries_bytes,
            fma_ops=0.0,
            aux_ops=ops,
            kernel_launches=2,  # counter reset + main kernel
            serial_hops=float(waves + self._PIPELINE_FILL_HOPS),
            min_time_s=bandwidth_floor,
        )

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 2: "PLR between two and three more megabytes" — the
        # factor arrays in the module image, carries, and flags.
        plan = plan_execution(workload.recurrence.signature, workload.n, machine)
        dtype = np.int32 if workload.is_integer else np.float32
        table = CorrectionFactorTable.build(
            workload.recurrence.recursive_signature, plan.chunk_size, dtype
        )
        fplan = optimize_factors(table, self.optimization)
        factors = fplan.stored_factor_words() * WORD_BYTES
        chunks = plan.num_chunks
        aux = chunks * (2 * workload.order * WORD_BYTES + 8)
        module_pad = 2 * 1024 * 1024
        return (
            machine.baseline_context_bytes
            + self._io_buffers_bytes(workload)
            + factors
            + aux
            + module_pad
        )

    def l2_read_miss_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 3: cold input misses plus < 1 MB of factors and carries.
        summary = AccessStreamSummary(machine)
        summary.cold_pass(workload.input_bytes)
        plan = plan_execution(workload.recurrence.signature, workload.n, machine)
        summary.resident_structure(
            workload.order * plan.chunk_size * WORD_BYTES
        )
        summary.resident_structure(plan.num_chunks * 2 * workload.order * WORD_BYTES)
        return summary.total_read_miss_bytes
