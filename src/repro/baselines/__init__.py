"""The comparison codes of the paper's evaluation, plus PLR itself.

Every class here implements :class:`~repro.baselines.base.RecurrenceCode`:
executable semantics validated against the serial reference, a traffic
model for the throughput figures, and memory/L2 accounting for
Tables 2 and 3.
"""

from repro.baselines.alg3 import Alg3Filter
from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.baselines.cub import CubScan, decoupled_lookback_scan
from repro.baselines.memcpy import MemcpyBound
from repro.baselines.plr_code import PLRCode
from repro.baselines.rec import RecFilter
from repro.baselines.registry import CODE_FACTORIES, all_code_names, make_code
from repro.baselines.sam import SamScan
from repro.baselines.scan_blelloch import (
    BlellochScan,
    companion_matrix,
    encode_elements,
    scan_operator,
)
from repro.baselines.serial import SerialReference

__all__ = [
    "Alg3Filter",
    "BlellochScan",
    "CODE_FACTORIES",
    "CubScan",
    "MemcpyBound",
    "PLRCode",
    "RecFilter",
    "RecurrenceCode",
    "SamScan",
    "SerialReference",
    "WORD_BYTES",
    "Workload",
    "all_code_names",
    "companion_matrix",
    "decoupled_lookback_scan",
    "encode_elements",
    "make_code",
    "scan_operator",
]
