"""Name -> code lookup used by the evaluation harness and the CLI."""

from __future__ import annotations

from typing import Callable

from repro.baselines.alg3 import Alg3Filter
from repro.baselines.base import RecurrenceCode
from repro.baselines.cub import CubScan
from repro.baselines.memcpy import MemcpyBound
from repro.baselines.plr_code import PLRCode
from repro.baselines.rec import RecFilter
from repro.baselines.sam import SamScan
from repro.baselines.scan_blelloch import BlellochScan
from repro.baselines.serial import SerialReference
from repro.core.errors import ReproError
from repro.plr.optimizer import OptimizationConfig

__all__ = ["CODE_FACTORIES", "make_code", "all_code_names"]

CODE_FACTORIES: dict[str, Callable[[], RecurrenceCode]] = {
    "memcpy": MemcpyBound,
    "serial": SerialReference,
    "Scan": BlellochScan,
    "CUB": CubScan,
    "SAM": SamScan,
    "Alg3": Alg3Filter,
    "Rec": RecFilter,
    "PLR": PLRCode,
    "PLR-noopt": lambda: PLRCode(OptimizationConfig.disabled()),
}


def make_code(name: str) -> RecurrenceCode:
    """Instantiate an evaluated code by its figure/table name."""
    try:
        factory = CODE_FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown code {name!r}; known: {', '.join(CODE_FACTORIES)}"
        ) from None
    return factory()


def all_code_names() -> tuple[str, ...]:
    return tuple(CODE_FACTORIES)
