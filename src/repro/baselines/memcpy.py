"""The memory-copy upper bound.

"For reference, the memory-copy throughput is also given, which
represents an upper bound on the achievable throughput since it just
copies the input sequence to the output without any computation."
Any code that reads each input once and writes each output once cannot
beat it; PLR reaching this bound on prefix sums and 1-stage filters is
the paper's headline optimality claim.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RecurrenceCode, Workload
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.spec import MachineSpec

__all__ = ["MemcpyBound"]


class MemcpyBound(RecurrenceCode):
    """cudaMemcpyDeviceToDevice over the input buffer."""

    name = "memcpy"

    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        # Not a recurrence solver: the "result" is the input, copied.
        # Exists so the harness can time/account it uniformly.
        return np.array(values, copy=True)

    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        return Traffic(
            hbm_read_bytes=workload.input_bytes,
            hbm_write_bytes=workload.input_bytes,
            kernel_launches=1,
        )

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 2: the memcpy program holds only the context plus the
        # two buffers (109.5 MB + 512 MB for the 2^26-word input).
        return machine.baseline_context_bytes + self._io_buffers_bytes(workload)

    def l2_read_miss_bytes(
        self, workload: Workload, machine: MachineSpec
    ) -> int | None:
        # "We cannot show cache misses for the memory-copy code because
        # it does not incur any, i.e., it does not appear to use the L2."
        return None
