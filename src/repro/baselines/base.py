"""The common interface every evaluated code implements.

The paper compares six codes — PLR, CUB, SAM, Scan, Alg3, Rec — plus a
memory-copy upper bound, along three axes: throughput (Figures 1-9),
GPU memory usage (Table 2), and L2 read misses (Table 3).  Each code in
:mod:`repro.baselines` therefore provides:

* :meth:`RecurrenceCode.compute` — executable semantics on numpy
  arrays, validated against the serial reference like the paper
  validates against its serial CPU run;
* :meth:`RecurrenceCode.traffic` — the resource demands fed to the
  analytical :class:`~repro.gpusim.cost.CostModel` to produce the
  throughput curves;
* :meth:`RecurrenceCode.memory_usage_bytes` — the NVML-style total of
  Table 2;
* :meth:`RecurrenceCode.l2_read_miss_bytes` — the nvprof-style misses
  of Table 3 (None when the code bypasses the L2, like memcpy);
* :meth:`RecurrenceCode.supports` — the code's domain restrictions
  (Alg3/Rec accept one non-recursive coefficient; Scan's memory blows
  up; nothing accepts > 2^30 words).

All byte quantities assume the paper's 32-bit words.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.errors import UnsupportedRecurrenceError
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.spec import MachineSpec

__all__ = ["WORD_BYTES", "Workload", "RecurrenceCode"]

WORD_BYTES = 4
"""The paper evaluates 32-bit integer and float words throughout."""

MAX_WORDS = 2**30
"""No tested code supports inputs above 4 GB (Section 5)."""


@dataclass(frozen=True)
class Workload:
    """One evaluation point: a recurrence at a given input size."""

    recurrence: Recurrence
    n: int

    @property
    def order(self) -> int:
        return self.recurrence.order

    @property
    def input_bytes(self) -> int:
        return self.n * WORD_BYTES

    @property
    def is_integer(self) -> bool:
        return self.recurrence.is_integer


class RecurrenceCode(abc.ABC):
    """One evaluated implementation (PLR, a baseline, or memcpy)."""

    #: Short name used in figures and tables ("CUB", "SAM", ...).
    name: str = "?"

    # ------------------------------------------------------------------
    def supports(self, workload: Workload, machine: MachineSpec) -> bool:
        """Whether this code can run the workload at all."""
        try:
            self.check_supported(workload, machine)
        except UnsupportedRecurrenceError:
            return False
        return True

    def check_supported(self, workload: Workload, machine: MachineSpec) -> None:
        """Raise :class:`UnsupportedRecurrenceError` with the reason."""
        if workload.n < 1:
            raise UnsupportedRecurrenceError("empty input")
        if workload.n > MAX_WORDS:
            raise UnsupportedRecurrenceError(
                f"{self.name} supports at most 2^30 words, got {workload.n}"
            )
        required = self.memory_usage_bytes(workload, machine)
        if required > machine.global_memory_bytes:
            raise UnsupportedRecurrenceError(
                f"{self.name} needs {required / 2**20:.1f} MB for n={workload.n}, "
                f"machine has {machine.global_memory_bytes / 2**20:.1f} MB"
            )

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        """Run the code's algorithm; must match the serial reference."""

    @abc.abstractmethod
    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        """Resource demands for the analytical throughput model."""

    @abc.abstractmethod
    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        """Total device memory (NVML view) including context overhead."""

    def l2_read_miss_bytes(
        self, workload: Workload, machine: MachineSpec
    ) -> int | None:
        """L2 read misses in bytes (nvprof view); None if unmeasurable."""
        return None

    # ------------------------------------------------------------------
    def _io_buffers_bytes(self, workload: Workload) -> int:
        """Input + output arrays, the part every code allocates."""
        return 2 * workload.input_bytes
