"""Scan: Blelloch's general recurrence-as-prefix-scan construction.

Blelloch (1990) showed that any order-k linear recurrence can be
computed with a prefix scan by encoding each element as a pair of a
k-by-k matrix and a k-element vector, under the associative operator

    (M2, v2) . (M1, v1) = (M2 @ M1,  M2 @ v1 + v2).

For ``y[i] = t[i] + b1 y[i-1] + ... + bk y[i-k]`` the element encoding
is the companion matrix C of the feedback coefficients with the vector
``t[i] * e1``; the inclusive scan's vector component carries the state
``(y[i], y[i-1], ..., y[i-k+1])``.

This is the only comparison code that, like PLR, supports *every*
signature, and the paper's foil for efficiency: each element occupies
``k^2 + k`` words instead of 1, so Scan moves 2x/6x/12x the memory for
k = 1/2/3 (Table 3), needs 1024/3072/6144 MB just for its encoded
input and output at 2^26 words (Table 2), and delivers roughly half
the memcpy throughput already at k = 1 (Figure 1).

The executable path here materializes the encoding and runs a genuine
O(n log n) inclusive scan over it (Hillis-Steele doubling with numpy
batch matmul), exactly the "use CUB to run the actual scan" structure
the paper describes.  The map stage (2) reuses PLR's FIR code, as the
paper's own Scan implementation does ("our Scan implementation uses
the same code as PLR for computing the map operation").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.core.errors import UnsupportedRecurrenceError
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.l2cache import AccessStreamSummary
from repro.gpusim.spec import MachineSpec

__all__ = ["BlellochScan", "companion_matrix", "encode_elements", "scan_operator"]


def companion_matrix(feedback: tuple, dtype: np.dtype) -> np.ndarray:
    """The k-by-k companion matrix C of the feedback coefficients.

    State s[i] = (y[i], ..., y[i-k+1]) evolves as s[i] = C s[i-1] + t[i] e1:
    the first row holds (b1, ..., bk), the subdiagonal shifts history.
    """
    k = len(feedback)
    matrix = np.zeros((k, k), dtype=dtype)
    matrix[0, :] = feedback
    for r in range(1, k):
        matrix[r, r - 1] = 1
    return matrix


def encode_elements(values: np.ndarray, feedback: tuple) -> tuple[np.ndarray, np.ndarray]:
    """Encode every element as its (matrix, vector) scan monoid element."""
    k = len(feedback)
    n = values.size
    companion = companion_matrix(feedback, values.dtype)
    matrices = np.broadcast_to(companion, (n, k, k)).copy()
    vectors = np.zeros((n, k), dtype=values.dtype)
    vectors[:, 0] = values
    return matrices, vectors


def scan_operator(
    m2: np.ndarray, v2: np.ndarray, m1: np.ndarray, v1: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Blelloch's associative combine, batched over leading axes."""
    matrix = np.matmul(m2, m1)
    vector = np.einsum("...ij,...j->...i", m2, v1) + v2
    return matrix, vector


class BlellochScan(RecurrenceCode):
    """The matrix-encoded scan over arbitrary signatures."""

    name = "Scan"

    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        work = np.asarray(values)
        if recurrence.has_map_stage:
            work = recurrence.apply_map_stage(work)
        feedback = tuple(
            b if isinstance(b, int) else work.dtype.type(b)
            for b in recurrence.signature.feedback
        )
        matrices, vectors = encode_elements(work, feedback)
        # Hillis-Steele inclusive scan by doubling: after the pass with
        # stride d, element i holds the combination of elements
        # (i-2d+1 .. i); O(n log n) monoid applications like a
        # work-inefficient GPU scan, but trivially batched in numpy.
        n = work.size
        stride = 1
        with np.errstate(over="ignore"):
            while stride < n:
                m_shift, v_shift = matrices[:-stride], vectors[:-stride]
                matrices[stride:], vectors[stride:] = scan_operator(
                    matrices[stride:], vectors[stride:], m_shift, v_shift
                )
                stride *= 2
        return vectors[:, 0].copy()

    # ------------------------------------------------------------------
    def _words_per_element(self, order: int) -> int:
        return order * order + order

    def check_supported(self, workload: Workload, machine: MachineSpec) -> None:
        super().check_supported(workload, machine)
        if workload.order == 1 and workload.n > 2**29:
            # Figure 1: "it only supports problem sizes up to 2^29".
            raise UnsupportedRecurrenceError(
                "Scan's 1x1-matrix encoding exceeds device memory beyond 2^29 words"
            )

    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        n, k = workload.n, workload.order
        words = self._words_per_element(k)
        encoded = float(n * words * WORD_BYTES)
        # The timed kernel scans the encoded representation: it reads
        # one encoded array and writes the other (the paper's profile
        # shows exactly (k^2+k) x the input in cold read misses, i.e.
        # the encode/decode does not re-stream the raw input inside the
        # measured region).
        hbm_read = encoded
        hbm_write = encoded
        # Each element combine is a k^3 matmul + k^2 matvec; the scan
        # applies ~2 combines per element in the decoupled single pass.
        combines = 2.0 * n
        fma = combines * (k**3 + k**2)
        # Register pressure: k^2+k live words per element throttles
        # issue ("suffers from correspondingly higher register
        # pressure") — modeled as extra per-element overhead ops.
        aux = combines * words * 2.0
        return Traffic(
            hbm_read_bytes=hbm_read,
            hbm_write_bytes=hbm_write,
            l2_read_bytes=float(n) * k * WORD_BYTES * 0.05,  # lookback state
            fma_ops=fma,
            aux_ops=aux,
            kernel_launches=2,
        )

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 2: two encoded arrays dominate (1024/3072/6144 MB at
        # 2^26 words for k=1/2/3) plus carries/flags noise.
        n, k = workload.n, workload.order
        encoded = 2 * n * self._words_per_element(k) * WORD_BYTES
        chunks = -(-n // 2048)
        aux = chunks * (2 * k * WORD_BYTES + 8) + (k * k + k) * WORD_BYTES
        return machine.baseline_context_bytes + encoded + aux

    def l2_read_miss_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 3: cold misses are (k^2+k)x the input's (512/1536/3074
        # MB at 2^26 words) "plus an additional 0.3 to 2.1 megabytes"
        # of lookback/carry state.
        summary = AccessStreamSummary(machine)
        encoded = workload.n * self._words_per_element(workload.order) * WORD_BYTES
        summary.cold_pass(encoded)
        chunks = -(-workload.n // 2048)
        k = workload.order
        summary.resident_structure(chunks * (k * k + k) * WORD_BYTES)
        return summary.total_read_miss_bytes
