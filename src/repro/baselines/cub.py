"""CUB: the single-pass decoupled-lookback prefix-scan library model.

CUB (Merrill & Garland) is the fastest published scalar prefix sum:
a work-efficient single pass with 2n data movement.  Its recurrence
coverage, per the paper:

* standard prefix sum — the native scalar scan;
* s-tuple prefix sums — "CUB computes a prefix sum on 2-element
  vectors": the sequence is viewed as packed s-vectors and scanned
  with element-wise addition;
* order-r prefix sums — "CUB repeats the entire code": r full passes,
  each reading and writing all n words, which is why CUB trails SAM
  and PLR as the order grows (Figures 4-5).

Arbitrary coefficients and IIR filters are outside CUB's domain ("CUB
and SAM only directly support recurrences whose correction factors are
all 1").

The executable path implements the decoupled-lookback structure
honestly at chunk granularity: chunk-local scans, local/inclusive
prefix publication, carry addition — the same single-pass skeleton
PLR's Phase 2 adopted, specialized to all-ones correction factors.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.core.classify import RecurrenceClass
from repro.core.errors import UnsupportedRecurrenceError
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.l2cache import AccessStreamSummary
from repro.gpusim.spec import MachineSpec

__all__ = ["CubScan", "decoupled_lookback_scan"]

_TILE = 2048  # words per scan tile (CUB's grain at 512 threads x 4)


def decoupled_lookback_scan(values: np.ndarray) -> np.ndarray:
    """One single-pass inclusive sum scan, tile-structured like CUB.

    Tiles compute local inclusive scans independently, publish their
    tile aggregate, and add the running exclusive prefix — the
    numpy rendering of the decoupled-lookback pipeline (the actual
    flag/wait protocol is exercised in :mod:`repro.gpusim.executor`).
    """
    n = values.size
    if n == 0:
        return values.copy()
    tiles = -(-n // _TILE)
    padded = np.zeros(tiles * _TILE, dtype=values.dtype)
    padded[:n] = values
    grid = padded.reshape(tiles, _TILE)
    with np.errstate(over="ignore"):
        local = np.cumsum(grid, axis=1, dtype=values.dtype)
        aggregates = local[:, -1]
        exclusive = np.zeros(tiles, dtype=values.dtype)
        np.cumsum(aggregates[:-1], dtype=values.dtype, out=exclusive[1:])
        result = local + exclusive[:, None]
    return result.reshape(-1)[:n]


class CubScan(RecurrenceCode):
    """The CUB model: scalar/vector scans, repeated for higher orders."""

    name = "CUB"

    def check_supported(self, workload: Workload, machine: MachineSpec) -> None:
        super().check_supported(workload, machine)
        cls = workload.recurrence.classification
        if not cls.is_prefix_sum_family:
            raise UnsupportedRecurrenceError(
                "CUB only supports prefix sums (scalar, tuple, higher-order); "
                f"got {workload.recurrence.signature}"
            )

    # ------------------------------------------------------------------
    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        cls = recurrence.classification
        values = np.asarray(values)
        if cls.kind == RecurrenceClass.TUPLE_PREFIX_SUM and cls.tuple_size > 1:
            return self._tuple_scan(values, cls.tuple_size)
        out = values
        for _ in range(cls.sum_order or 1):
            out = decoupled_lookback_scan(out)
        return out

    def _tuple_scan(self, values: np.ndarray, size: int) -> np.ndarray:
        """Scan of packed s-vectors with element-wise addition."""
        n = values.size
        groups = -(-n // size)
        padded = np.zeros(groups * size, dtype=values.dtype)
        padded[:n] = values
        as_vectors = padded.reshape(groups, size)
        with np.errstate(over="ignore"):
            scanned = np.cumsum(as_vectors, axis=0, dtype=values.dtype)
        return scanned.reshape(-1)[:n]

    # ------------------------------------------------------------------
    def _passes(self, workload: Workload) -> int:
        cls = workload.recurrence.classification
        return cls.sum_order or 1

    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        n = workload.n
        cls = workload.recurrence.classification
        passes = self._passes(workload)
        tuple_size = cls.tuple_size or 1
        per_pass = Traffic(
            hbm_read_bytes=float(workload.input_bytes),
            hbm_write_bytes=float(workload.input_bytes),
            # Tile scan cost per element: raking shared-memory scan,
            # lookback participation, and data rearrangement — roughly
            # at parity with the bandwidth bound for the scalar path
            # (CUB hugs memcpy in Figure 1), growing with the tuple
            # size in the generic vector path ("CUB's and SAM's
            # throughputs consistently decrease with larger tuple
            # sizes as they use the same code base").
            fma_ops=0.0,
            aux_ops=float(n) * (31.0 + 9.5 * (tuple_size - 1)),
            l2_read_bytes=float(n // _TILE) * 2 * tuple_size * WORD_BYTES,
            kernel_launches=2,  # init + scan kernels per pass
        )
        total = per_pass
        for _ in range(passes - 1):
            total = total + per_pass
        return total

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 2: "CUB two more megabytes" than the bare buffers —
        # tile descriptors (aggregate + inclusive prefix + status per
        # tile) and module code.
        tiles = -(-workload.n // _TILE)
        tuple_size = workload.recurrence.classification.tuple_size or 1
        descriptors = tiles * (2 * tuple_size * WORD_BYTES + 8)
        module_code = 2 * 1024 * 1024 - descriptors if descriptors < 2 * 1024 * 1024 else 0
        return (
            machine.baseline_context_bytes
            + self._io_buffers_bytes(workload)
            + descriptors
            + module_code
        )

    def l2_read_miss_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 3: "PLR, CUB, and SAM only incur a tiny amount of
        # additional L2-cache read misses (less than one megabyte)".
        summary = AccessStreamSummary(machine)
        passes = self._passes(workload)
        summary.cold_pass(workload.input_bytes)
        for _ in range(passes - 1):
            # Later passes re-stream the previous output, which exceeds
            # the L2 for the table's 2^26-word input.
            summary.repeat_pass(workload.input_bytes)
        tiles = -(-workload.n // _TILE)
        summary.resident_structure(tiles * 2 * WORD_BYTES)
        return summary.total_read_miss_bytes