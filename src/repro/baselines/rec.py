"""Rec: the Chaurasia et al. Halide-generated recursive-filter model.

Chaurasia et al. (HPG 2015) generate tiled recursive-filter GPU code
from a Halide-based DSL.  The traits the paper measures and we model:

* tiled processing of square 2D inputs with *serial* combination of
  tile carries ("Chaurasia et al.'s code serially combines the local
  carries to produce the global carries" — unlike PLR, which
  parallelizes every stage);
* not communication-efficient: the input is effectively read twice
  (Table 3: 528 MB of read misses for a 256 MB input), so Rec wins
  only while the working set still fits in the 2 MB L2 — "PLR starts
  outperforming Rec at a size of one million entries, which is the
  smallest problem size that exceeds the L2 capacity";
* many small filter kernels over tiles rather than one long filter
  ("Rec executes many small filter operations on a square input"),
  which keeps its fixed overhead low on small inputs — Rec is the
  fastest float code below ~1M elements in Figure 6;
* at most one non-recursive coefficient, float only, inputs to 1 GB.

The executable path is a genuine tiled two-phase filter over a square
reshape of the sequence (row-major continuation preserves 1D
semantics), with the tile carries combined serially.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.core.errors import UnsupportedRecurrenceError
from repro.core.recurrence import Recurrence
from repro.gpusim.cost import Traffic
from repro.gpusim.l2cache import AccessStreamSummary
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase2 import transition_matrix

__all__ = ["RecFilter"]

_TILE = 256  # words per tile (a 16x16 Halide tile, row-major)


class RecFilter(RecurrenceCode):
    """The Rec model: tiled filtering with serial carry combination."""

    name = "Rec"

    max_words = 2**28  # 1 GB of 32-bit words

    def check_supported(self, workload: Workload, machine: MachineSpec) -> None:
        super().check_supported(workload, machine)
        sig = workload.recurrence.signature
        if len(sig.feedforward) > 1:
            raise UnsupportedRecurrenceError(
                "Rec supports at most one non-recursive coefficient; "
                f"got {sig}"
            )
        if sig.is_integer:
            raise UnsupportedRecurrenceError(
                "Rec is a floating-point image-filtering code"
            )
        if workload.n > self.max_words:
            raise UnsupportedRecurrenceError("Rec only supports inputs up to 1 GB")

    # ------------------------------------------------------------------
    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        """Tiled filter: local tiles, serial carry chain, final fix-up."""
        values = np.asarray(values, dtype=np.float32)
        sig = recurrence.signature
        scale = np.float32(sig.feedforward[0])
        feedback = [np.float32(b) for b in sig.feedback]
        k = len(feedback)
        n = values.size
        tiles = -(-n // _TILE)
        padded = np.zeros(tiles * _TILE, dtype=np.float32)
        padded[:n] = values * scale
        grid = padded.reshape(tiles, _TILE)

        # Tile-local filtering (parallel on the GPU; vectorized here
        # across tiles, serial within a tile like the generated code).
        out = grid.copy()
        for i in range(1, _TILE):
            acc = out[:, i]
            for j in range(1, min(i, k) + 1):
                acc = acc + feedback[j - 1] * out[:, i - j]
            out[:, i] = acc

        # Serial combination of tile carries — Rec's distinguishing
        # (and non-parallel) stage.
        table = CorrectionFactorTable.build(
            recurrence.recursive_signature, _TILE, np.float32
        )
        matrix = transition_matrix(table)
        local = out[:, _TILE - k :][:, ::-1]
        global_ = np.empty_like(local)
        global_[0] = local[0]
        for t in range(1, tiles):
            global_[t] = local[t] + matrix @ global_[t - 1]

        # Fix-up pass over the tiles with the incoming carries.
        for j in range(k):
            out[1:] += table.factors[j][None, :] * global_[:-1, j][:, None]
        return out.reshape(-1)[:n]

    # ------------------------------------------------------------------
    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        n, k = workload.n, workload.order
        bytes_in = float(workload.input_bytes)
        tiles = n / _TILE
        # The fix-up pass re-reads the input; while it still fits in
        # the L2 that re-read is (almost) free, beyond it, it goes to
        # HBM — the paper pins Rec's crossover against PLR to exactly
        # this point ("one million entries, which is the smallest
        # problem size that exceeds the L2 capacity").
        if bytes_in <= machine.l2_cache_bytes:
            reread_hbm = 0.0
            reread_l2 = bytes_in
        else:
            reread_hbm = bytes_in
            reread_l2 = 0.0
        # Rec decomposes filters above order 2 into a cascade of
        # lower-order passes ("a higher-order filter can be decomposed
        # into an equivalent set of several lower-order filters"); the
        # intermediate plane costs extra traffic (partially L2-served).
        cascade_bytes = float(workload.input_bytes) if k > 2 else 0.0
        return Traffic(
            hbm_read_bytes=bytes_in + reread_hbm + cascade_bytes,
            hbm_write_bytes=bytes_in + bytes_in,  # tile results + final
            l2_read_bytes=reread_l2 + tiles * 2 * k * WORD_BYTES,
            fma_ops=2.0 * n * k,
            aux_ops=1.0 * n,
            # Many small tiled kernels with little fixed overhead —
            # Rec's advantage on small inputs in Figures 6-8.
            kernel_launches=2,
            serial_hops=min(tiles, 64.0) * 0.05,
        )

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 2: 17-49 MB extra, ~16 MB per order: per-tile state
        # arrays in 2D layout.
        base_extra = 17 * 1024 * 1024 + (workload.order - 1) * 16 * 1024 * 1024
        return (
            machine.baseline_context_bytes
            + self._io_buffers_bytes(workload)
            + base_extra
        )

    def l2_read_miss_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        # Table 3: 528-563 MB for a 256 MB input — the fix-up re-read
        # misses beyond the L2 capacity, plus per-order tile state.
        summary = AccessStreamSummary(machine)
        summary.cold_pass(workload.input_bytes)
        summary.repeat_pass(workload.input_bytes)
        extra = (16 + 17 * (workload.order - 1)) * 1024 * 1024
        summary.cold_pass(extra)
        return summary.total_read_miss_bytes

    # ------------------------------------------------------------------
    @staticmethod
    def square_side(n: int) -> int:
        """The 2D side length the paper would use (multiple of 32)."""
        side = int(math.sqrt(n))
        return max(32, (side // 32) * 32)
