"""The serial CPU code, as an evaluated implementation.

The paper uses the serial loop both as the correctness oracle and as
the implicit CPU comparison point ("the serial code running on a CPU
has to be slower" than any code transferring 264 GB/s).  Wrapping it in
the :class:`RecurrenceCode` interface lets the harness validate every
parallel code against it uniformly and lets benchmarks quantify the
PLR-vs-serial gap on the host we actually have.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WORD_BYTES, RecurrenceCode, Workload
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.gpusim.cost import Traffic
from repro.gpusim.spec import MachineSpec

__all__ = ["SerialReference"]


class SerialReference(RecurrenceCode):
    """The Section 2 serial loop (run on the CPU in the paper)."""

    name = "serial"

    def compute(self, values: np.ndarray, recurrence: Recurrence) -> np.ndarray:
        return serial_full(values, recurrence.signature)

    def traffic(self, workload: Workload, machine: MachineSpec) -> Traffic:
        # A single dependent chain of n O(k) steps on one CPU core.  The
        # floor assumes ~1.5 G dependent k-term updates per second — a
        # generous desktop-CPU figure that still leaves the serial code
        # an order of magnitude below the parallel GPU codes, matching
        # the paper's dismissal of the CPU ("has to be slower").
        n, k = workload.n, workload.order
        return Traffic(
            hbm_read_bytes=workload.input_bytes,
            hbm_write_bytes=workload.input_bytes,
            fma_ops=float(n) * k,
            min_time_s=n * max(k, 1) / 1.5e9,
            kernel_launches=0,
        )

    def memory_usage_bytes(self, workload: Workload, machine: MachineSpec) -> int:
        return self._io_buffers_bytes(workload) + workload.order * WORD_BYTES

    def l2_read_miss_bytes(
        self, workload: Workload, machine: MachineSpec
    ) -> int | None:
        return None  # runs on the host; GPU L2 untouched
