"""repro — Automatic Hierarchical Parallelization of Linear Recurrences.

A from-scratch reproduction of Maleki & Burtscher's PLR system
(ASPLOS 2018): the signature DSL, the n-nacci correction-factor
algorithm, the two-phase hierarchical parallelization, the
domain-specific compiler with its factor optimizations, a GPU machine
model standing in for the paper's Titan X, the comparison codes (CUB,
SAM, Scan, Alg3, Rec), and the full evaluation harness for every
figure and table.

Quick start::

    import numpy as np
    from repro import Recurrence, PLRSolver

    lowpass = Recurrence.parse("(0.2: 0.8)")     # Table 1's 1-stage filter
    y = PLRSolver(lowpass).solve(np.random.randn(1_000_000).astype("f4"))

    from repro import PLRCompiler
    cuda_source = PLRCompiler().compile("(1: 2, -1)").source
"""

from repro.baselines import RecurrenceCode, Workload, make_code
from repro.batch import (
    BatchEngine,
    BatchPlanner,
    BatchRequest,
    BatchSolver,
    execute_batch,
)
from repro.codegen import PLRCompiler
from repro.core import (
    FLOAT_TOLERANCE,
    DeadlineExceeded,
    DeadlockError,
    NumericalError,
    OverloadError,
    ProtocolError,
    Recurrence,
    RecurrenceClass,
    ReproError,
    Signature,
    SignatureError,
    StateError,
    ValidationError,
    WorkerError,
    assert_valid,
    classify,
    compare_results,
    correction_factors,
    high_pass,
    low_pass,
    nnacci,
    parse_signature,
    serial_full,
    table1_signatures,
)
from repro.gpusim import CostModel, FaultKind, FaultPlan, MachineSpec, SimulatedPLR
from repro.obs import (
    MetricsRegistry,
    PipelineProfile,
    Tracer,
    chrome_trace,
    global_metrics,
    profile_simulation,
)
from repro.parallel import ShardOptions, solve_batch_sharded, solve_sharded
from repro.plr import (
    CorrectionFactorTable,
    ExecutionPlan,
    OptimizationConfig,
    PLRSolver,
    clear_factor_cache,
    plan_execution,
    plr_solve,
)
from repro.resilience import (
    FallbackPolicy,
    ResilientSolver,
    SolveReport,
    run_chaos,
)
from repro.serve import PLRServer, ServeClient, ServeConfig

__version__ = "1.0.0"

__all__ = [
    "BatchEngine",
    "BatchPlanner",
    "BatchRequest",
    "BatchSolver",
    "CorrectionFactorTable",
    "CostModel",
    "DeadlineExceeded",
    "DeadlockError",
    "ExecutionPlan",
    "FLOAT_TOLERANCE",
    "FallbackPolicy",
    "FaultKind",
    "FaultPlan",
    "MachineSpec",
    "MetricsRegistry",
    "NumericalError",
    "OptimizationConfig",
    "OverloadError",
    "PLRCompiler",
    "PLRServer",
    "PLRSolver",
    "PipelineProfile",
    "ProtocolError",
    "Recurrence",
    "RecurrenceClass",
    "RecurrenceCode",
    "ReproError",
    "ResilientSolver",
    "ServeClient",
    "ServeConfig",
    "ShardOptions",
    "Signature",
    "SignatureError",
    "SimulatedPLR",
    "SolveReport",
    "StateError",
    "Tracer",
    "ValidationError",
    "Workload",
    "WorkerError",
    "__version__",
    "assert_valid",
    "chrome_trace",
    "classify",
    "clear_factor_cache",
    "compare_results",
    "correction_factors",
    "execute_batch",
    "global_metrics",
    "high_pass",
    "low_pass",
    "make_code",
    "nnacci",
    "parse_signature",
    "plan_execution",
    "plr_solve",
    "profile_simulation",
    "run_chaos",
    "serial_full",
    "solve_batch_sharded",
    "solve_sharded",
    "table1_signatures",
]
