"""Recurrence taxonomy.

The PLR optimizer and the evaluation harness both need to know *what
kind* of recurrence a signature describes: the paper's Figure 10 groups
its eleven recurrences into prefix sums, tuple-based prefix sums,
higher-order prefix sums, and low-/high-pass IIR filters, and several
code-generation optimizations only fire for specific classes (e.g. the
zero/one-factor conditional-add rewrite helps tuple prefix sums).

Classification here looks only at the *signature*, not at the factor
table; factor-level properties (constant, repeating, decaying) are
analyzed separately in :mod:`repro.plr.factors`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import comb

from repro.core.signature import Signature

__all__ = ["RecurrenceClass", "Classification", "classify"]


class RecurrenceClass(enum.Enum):
    """Coarse recurrence families used throughout the evaluation."""

    PREFIX_SUM = "prefix_sum"
    TUPLE_PREFIX_SUM = "tuple_prefix_sum"
    HIGHER_ORDER_PREFIX_SUM = "higher_order_prefix_sum"
    IIR_FILTER = "iir_filter"
    GENERAL = "general"


@dataclass(frozen=True)
class Classification:
    """The result of :func:`classify`.

    Attributes
    ----------
    kind:
        The recurrence family.
    order:
        The recurrence order k (= feedback length).
    tuple_size:
        For tuple prefix sums, the tuple width s; otherwise ``None``.
    sum_order:
        For higher-order prefix sums, the number of nested prefix sums;
        otherwise ``None``.  The standard prefix sum has ``sum_order=1``.
    has_fir_stage:
        True when the map stage (2) is non-trivial, i.e. the signature
        has more than a single feed-forward ``1``.
    """

    kind: RecurrenceClass
    order: int
    tuple_size: int | None = None
    sum_order: int | None = None
    has_fir_stage: bool = False

    @property
    def is_prefix_sum_family(self) -> bool:
        return self.kind in (
            RecurrenceClass.PREFIX_SUM,
            RecurrenceClass.TUPLE_PREFIX_SUM,
            RecurrenceClass.HIGHER_ORDER_PREFIX_SUM,
        )


def _is_tuple_feedback(feedback: tuple) -> int | None:
    """Return the tuple size s when feedback is (0, ..., 0, 1)."""
    if feedback[-1] != 1:
        return None
    if any(b != 0 for b in feedback[:-1]):
        return None
    return len(feedback)


def _is_higher_order_feedback(feedback: tuple) -> int | None:
    """Return r when feedback matches the order-r prefix-sum binomials."""
    r = len(feedback)
    expected = tuple((-1) ** (j + 1) * comb(r, j) for j in range(1, r + 1))
    return r if feedback == expected else None


def classify(signature: Signature) -> Classification:
    """Classify a signature into one of the paper's recurrence families.

    Integer signatures with a bare ``(1:`` feed-forward stage map to the
    prefix-sum families; everything with floating-point coefficients or
    a non-trivial FIR stage is treated as an IIR filter (the paper's
    low-/high-pass examples) or a general recurrence.
    """
    k = signature.order
    has_fir = signature.feedforward != (1,)

    if signature.is_integer and not has_fir:
        fb = signature.feedback
        if fb == (1,):
            return Classification(RecurrenceClass.PREFIX_SUM, k, tuple_size=1, sum_order=1)
        tuple_size = _is_tuple_feedback(fb)
        if tuple_size is not None:
            return Classification(
                RecurrenceClass.TUPLE_PREFIX_SUM, k, tuple_size=tuple_size
            )
        sum_order = _is_higher_order_feedback(fb)
        if sum_order is not None:
            return Classification(
                RecurrenceClass.HIGHER_ORDER_PREFIX_SUM, k, sum_order=sum_order
            )
        return Classification(RecurrenceClass.GENERAL, k, has_fir_stage=False)

    if not signature.is_integer:
        return Classification(RecurrenceClass.IIR_FILTER, k, has_fir_stage=has_fir)

    return Classification(RecurrenceClass.GENERAL, k, has_fir_stage=has_fir)
