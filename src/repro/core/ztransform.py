"""z-transform utilities: transfer functions, cascades, and stability.

A signature ``(a0..a-p : b-1..b-k)`` corresponds to the rational
transfer function

    H(z) = B(z) / A(z)
    B(z) = a0 + a-1 z^-1 + ... + a-p z^-p
    A(z) = 1 - b-1 z^-1 - b-2 z^-2 - ... - b-k z^-k

The paper leaves filter *combination* to "offline" z-transform work
(Section 4: "PLR does not support the automatic combination of filters,
which has to be done offline using, for example, the z-transform").
This module ships that offline step: cascading two signatures multiplies
their transfer functions, which is polynomial convolution on both the
numerator and the denominator.  It also provides stability analysis
(pole magnitudes), impulse responses, and frequency responses, which the
factor-decay optimization and the filter-design tests rely on.

All arithmetic here is exact when the coefficients are ints/Fractions,
so cascading integer signatures yields integer signatures.
"""

from __future__ import annotations

import cmath
import math
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.core.errors import SignatureError
from repro.core.signature import Signature

__all__ = [
    "convolve",
    "transfer_function",
    "signature_from_transfer",
    "cascade",
    "cascade_many",
    "repeat",
    "poles",
    "is_stable",
    "impulse_response",
    "frequency_response",
]

Coeff = int | float | Fraction


def convolve(p: Sequence[Coeff], q: Sequence[Coeff]) -> tuple[Coeff, ...]:
    """Multiply two polynomials given by their coefficient lists.

    Plain O(len(p)*len(q)) schoolbook convolution; the polynomials here
    are filter coefficient lists, i.e. tiny, and exactness matters more
    than speed.
    """
    if not p or not q:
        raise ValueError("cannot convolve an empty polynomial")
    out: list[Coeff] = [0] * (len(p) + len(q) - 1)
    for i, pi in enumerate(p):
        for j, qj in enumerate(q):
            out[i + j] += pi * qj
    return tuple(out)


def transfer_function(
    signature: Signature,
) -> tuple[tuple[Coeff, ...], tuple[Coeff, ...]]:
    """Return (numerator, denominator) coefficient lists of H(z).

    The denominator is returned in the conventional DSP form
    ``(1, -b-1, ..., -b-k)`` so it can be convolved directly.
    """
    num = signature.feedforward
    den = (1,) + tuple(-b for b in signature.feedback)
    return num, den


def signature_from_transfer(
    numerator: Sequence[Coeff], denominator: Sequence[Coeff]
) -> Signature:
    """Build a signature from H(z) = numerator / denominator.

    The denominator must be monic (leading coefficient 1); rescale it
    first if it is not.  The feedback coefficients are the negated
    denominator tail, undoing :func:`transfer_function`.
    """
    if not denominator:
        raise SignatureError("empty denominator")
    if denominator[0] != 1:
        raise SignatureError(
            f"denominator must be monic (got leading {denominator[0]!r}); "
            "divide through by the leading coefficient first"
        )
    if len(denominator) < 2:
        raise SignatureError("denominator must have at least one feedback term")
    feedback = tuple(-c for c in denominator[1:])
    return Signature(tuple(numerator), feedback)


def _trim_trailing_zeros(coeffs: tuple[Coeff, ...]) -> tuple[Coeff, ...]:
    """Drop exact trailing zeros so the signature validity checks pass."""
    end = len(coeffs)
    while end > 1 and coeffs[end - 1] == 0:
        end -= 1
    return coeffs[:end]


def cascade(first: Signature, second: Signature) -> Signature:
    """The signature of running `second` on the output of `first`.

    Cascading filters multiplies their transfer functions.  This is how
    the paper's multi-stage filters in Table 1 arise: the 2-stage
    low-pass (0.04: 1.6, -0.64) is the 1-stage (0.2: 0.8) cascaded with
    itself.
    """
    num1, den1 = transfer_function(first)
    num2, den2 = transfer_function(second)
    num = _trim_trailing_zeros(convolve(num1, num2))
    den = convolve(den1, den2)
    return signature_from_transfer(num, den)


def cascade_many(signatures: Sequence[Signature]) -> Signature:
    """Cascade a whole chain of filters into a single signature."""
    if not signatures:
        raise SignatureError("cannot cascade an empty filter chain")
    result = signatures[0]
    for sig in signatures[1:]:
        result = cascade(result, sig)
    return result


def repeat(signature: Signature, stages: int) -> Signature:
    """Cascade a filter with itself ``stages`` times."""
    if stages < 1:
        raise SignatureError(f"stage count must be >= 1, got {stages}")
    return cascade_many([signature] * stages)


def poles(signature: Signature) -> tuple[complex, ...]:
    """The poles of H(z): roots of z^k - b-1 z^(k-1) - ... - b-k.

    Computed with numpy's companion-matrix root finder on the float
    image of the coefficients.
    """
    coeffs = [1.0] + [-float(b) for b in signature.feedback]
    roots = np.roots(coeffs)
    return tuple(complex(r) for r in roots)


def is_stable(signature: Signature, tol: float = 1e-9) -> bool:
    """True when every pole lies strictly inside the unit circle.

    Stable filters have exponentially decaying impulse responses, which
    is the property the paper's factor-decay optimization exploits
    ("the impulse response ... tends to decay below the arithmetic
    precision after a few hundred elements").  Prefix sums have poles
    *on* the unit circle and are therefore not stable in this sense.
    """
    return all(abs(p) < 1.0 - tol for p in poles(signature))


def impulse_response(signature: Signature, length: int) -> np.ndarray:
    """The first ``length`` samples of the filter's impulse response.

    The impulse response of the pure-recursive part ``(1: b...)`` is
    exactly the first n-nacci correction-factor sequence shifted by one,
    so tests use this as an independent oracle for the factor tables.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    ff = [float(a) for a in signature.feedforward]
    fb = [float(b) for b in signature.feedback]
    out = np.zeros(length, dtype=np.float64)
    for i in range(length):
        acc = ff[i] if i < len(ff) else 0.0
        for j, b in enumerate(fb, start=1):
            if i - j >= 0:
                acc += b * out[i - j]
        out[i] = acc
    return out


def frequency_response(
    signature: Signature, frequencies: Sequence[float]
) -> np.ndarray:
    """Evaluate H(e^{j*2*pi*f}) at normalized frequencies in [0, 0.5].

    Used by the filter-design tests to check that the paper's "low-pass"
    and "high-pass" example signatures really are what they claim:
    |H| near 1 at the passband edge, near 0 in the stopband.
    """
    num, den = transfer_function(signature)
    response = np.empty(len(frequencies), dtype=np.complex128)
    for idx, f in enumerate(frequencies):
        z_inv = cmath.exp(-2j * math.pi * f)
        b_val = sum(float(c) * z_inv**i for i, c in enumerate(num))
        a_val = sum(float(c) * z_inv**i for i, c in enumerate(den))
        response[idx] = b_val / a_val
    return response
