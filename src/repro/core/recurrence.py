"""The :class:`Recurrence` facade: a signature plus evaluation plumbing.

This is the object most user code touches.  It bundles a parsed
:class:`~repro.core.signature.Signature` with its classification and the
two-stage split the paper builds on:

* the *map stage* (recursion equation (2)) eliminates the feed-forward
  coefficients in an embarrassingly parallel pass, and
* the *recursive stage* (recursion equation (3)) is the pure recurrence
  ``(1: b...)`` the PLR algorithm parallelizes.

``Recurrence.evaluate`` runs the serial reference; the parallel solvers
live in :mod:`repro.plr` and take a ``Recurrence`` as input.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.classify import Classification, classify
from repro.core.reference import fir_map, resolve_dtype, serial_full
from repro.core.signature import Signature

__all__ = ["Recurrence"]


@dataclass(frozen=True)
class Recurrence:
    """A linear recurrence ready to be evaluated or compiled.

    Parameters
    ----------
    signature:
        The recurrence signature.  Strings are accepted for convenience
        via :meth:`parse`.
    """

    signature: Signature

    @classmethod
    def parse(cls, text: str) -> "Recurrence":
        """Build a recurrence from a signature string like ``"(1: 1)"``."""
        return cls(Signature.parse(text))

    # ------------------------------------------------------------------
    @cached_property
    def classification(self) -> Classification:
        """What family this recurrence belongs to (prefix sum, IIR, ...)."""
        return classify(self.signature)

    @property
    def order(self) -> int:
        """The recurrence order k."""
        return self.signature.order

    @property
    def is_integer(self) -> bool:
        return self.signature.is_integer

    @cached_property
    def recursive_signature(self) -> Signature:
        """The type-(3) part ``(1: b...)`` that PLR parallelizes."""
        return self.signature.recursive_part()

    @property
    def has_map_stage(self) -> bool:
        """True when the FIR map stage (2) does real work."""
        return self.signature.feedforward != (1,)

    # ------------------------------------------------------------------
    def dtype_for(self, values: np.ndarray) -> np.dtype:
        """The computation dtype used for the given input values."""
        return resolve_dtype(self.signature, np.asarray(values).dtype)

    def apply_map_stage(self, values: np.ndarray) -> np.ndarray:
        """Run only the embarrassingly parallel FIR stage (2)."""
        work = np.asarray(values)
        ff = [a if isinstance(a, int) else float(a) for a in self.signature.feedforward]
        return fir_map(work, ff)

    def evaluate(self, values: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
        """Compute the recurrence with the serial reference algorithm.

        This is the ground truth; use :class:`repro.plr.solver.PLRSolver`
        (or a generated backend) for the parallel computation.
        """
        return serial_full(np.asarray(values), self.signature, dtype=dtype)

    def __str__(self) -> str:
        return str(self.signature)
