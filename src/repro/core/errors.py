"""Exception hierarchy for the PLR reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SignatureError(ReproError):
    """A recurrence signature is syntactically or semantically invalid.

    The PLR compiler performs the same checks the paper describes in
    Section 3: the last non-recursive and the last recursive coefficient
    must not be zero, and both coefficient lists must be non-empty.
    """


class PlanError(ReproError):
    """An execution plan could not be constructed for the given input."""


class CodegenError(ReproError):
    """The code generator could not emit or build an artifact."""


class BackendError(ReproError):
    """A generated artifact failed to compile, load, or execute."""


class SimulationError(ReproError):
    """The GPU machine model detected an inconsistency during execution.

    Raised, for example, when a kernel reads a carry whose ready flag was
    never set, which would be a data race on real hardware.
    """


class ValidationError(ReproError):
    """A computed result did not match the serial reference."""


class UnsupportedRecurrenceError(ReproError):
    """A baseline was asked to run a recurrence outside its domain.

    The paper's comparison codes support restricted recurrence classes
    (e.g. Alg3 and Rec accept at most one non-recursive coefficient);
    our models of them enforce the same restrictions.
    """
