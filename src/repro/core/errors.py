"""Exception hierarchy for the PLR reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SignatureError(ReproError):
    """A recurrence signature is syntactically or semantically invalid.

    The PLR compiler performs the same checks the paper describes in
    Section 3: the last non-recursive and the last recursive coefficient
    must not be zero, and both coefficient lists must be non-empty.
    """


class PlanError(ReproError):
    """An execution plan could not be constructed for the given input."""


class CodegenError(ReproError):
    """The code generator could not emit or build an artifact."""


class BackendError(ReproError):
    """A generated artifact failed to compile, load, or execute."""


class SimulationError(ReproError):
    """The GPU machine model detected an inconsistency during execution.

    Raised, for example, when a kernel reads a carry whose ready flag was
    never set, which would be a data race on real hardware.
    """


class DeadlockError(SimulationError):
    """The simulated grid made no progress for many scheduler rounds.

    Carries *forensics*: one wait record per stalled block describing
    which chunk it runs, which flags it is blocked on, and at what
    look-back distance — enough to reconstruct the broken dependence
    chain of the Phase 2 protocol (see
    :class:`repro.gpusim.scheduler.WaitInfo`).  When the run was
    traced, ``trace_tails`` maps each stalled chunk id to its last few
    :class:`~repro.obs.tracer.TraceEvent` records, showing how the
    block got stuck rather than only what it waits on.
    """

    def __init__(
        self,
        message: str,
        forensics: tuple = (),
        trace_tails: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.forensics = tuple(forensics)
        self.trace_tails = dict(trace_tails or {})


class NumericalError(ReproError):
    """A computation produced (or is predicted to produce) bad numbers.

    Covers NaN/Inf contamination of outputs, overflowing correction
    factors, and the spectral-radius overflow prediction: for a
    signature with spectral radius rho > 1 the factor lists grow like
    rho^m, which exceeds float32 range long before the paper's
    m = 11264 chunk size.  :class:`~repro.resilience.ResilientSolver`
    reacts by promoting the dtype or shrinking the chunk size.
    """


class StateError(ReproError, ValueError):
    """Externally supplied solver state is malformed.

    Raised by :meth:`repro.plr.streaming.StreamingSolver.load_state`
    when a checkpoint's carry arrays have the wrong shape or dtype, or
    contain non-finite values that would silently poison every later
    block.  Subclasses :class:`ValueError` for backward compatibility
    with callers that caught the old untyped error.
    """


class WorkerError(ReproError):
    """A multicore worker process died or stalled mid-solve.

    Raised by the sharded process backend (:mod:`repro.parallel`) when
    a pool worker exits abnormally (killed, OOM, segfault — surfacing
    as a broken process pool) or fails to return within the configured
    timeout.  The shared-memory work buffer may hold a half-corrected
    state at that point, so the backend never returns partial output;
    :class:`~repro.resilience.ResilientSolver` reacts by degrading to
    the single-process path.
    """


class ValidationError(ReproError):
    """A computed result did not match the serial reference."""


class DeadlineExceeded(ReproError):
    """A request's deadline passed before its result could be delivered.

    Carried by the serving layer's reply (and by
    :class:`~repro.batch.engine.RequestOutcome`) when a request expires
    in the intake queue, during batch formation, or while its group was
    being solved.  A late result is never returned: a caller that set a
    deadline has, by definition, stopped waiting.
    """


class OverloadError(ReproError):
    """The server shed a request instead of queueing it.

    Raised (as a typed reply, never a hang) when the bounded intake
    queue is full, when the server is draining, or when the circuit
    breaker is open after repeated batch failures.  The request was not
    executed; retrying after a backoff is safe.
    """


class ProtocolError(ReproError):
    """A client frame could not be parsed as a request.

    Covers malformed JSON, non-object frames, missing required fields,
    oversized lines, and invalid field types on the serving layer's
    JSONL protocol.  The connection survives a malformed frame (the
    reply carries this error); only an unframeable byte stream — a line
    exceeding the hard size limit — closes it.
    """


class UnsupportedRecurrenceError(ReproError):
    """A baseline was asked to run a recurrence outside its domain.

    The paper's comparison codes support restricted recurrence classes
    (e.g. Alg3 and Rec accept at most one non-recursive coefficient);
    our models of them enforce the same restrictions.
    """
