"""The recurrence domain: signatures, filter design, and reference math.

Everything in :mod:`repro.core` is hardware-agnostic.  The PLR
algorithm, the compiler, the GPU model, and the baselines all build on
these primitives.
"""

from repro.core.classify import Classification, RecurrenceClass, classify
from repro.core.coefficients import (
    high_pass,
    low_pass,
    single_pole_high_pass,
    single_pole_low_pass,
    table1_signatures,
)
from repro.core.errors import (
    BackendError,
    CodegenError,
    DeadlineExceeded,
    DeadlockError,
    NumericalError,
    OverloadError,
    PlanError,
    ProtocolError,
    ReproError,
    SignatureError,
    SimulationError,
    StateError,
    UnsupportedRecurrenceError,
    ValidationError,
    WorkerError,
)
from repro.core.nnacci import (
    carry_seed,
    carry_transition_matrix,
    correction_factor_matrix,
    correction_factors,
    nnacci,
)
from repro.core.recurrence import Recurrence
from repro.core.reference import fir_map, serial_full, serial_recurrence
from repro.core.signature import Signature, parse_signature
from repro.core.validation import FLOAT_TOLERANCE, assert_valid, compare_results
from repro.core.ztransform import (
    cascade,
    cascade_many,
    frequency_response,
    impulse_response,
    is_stable,
    poles,
)

__all__ = [
    "BackendError",
    "Classification",
    "CodegenError",
    "DeadlineExceeded",
    "DeadlockError",
    "FLOAT_TOLERANCE",
    "OverloadError",
    "PlanError",
    "ProtocolError",
    "Recurrence",
    "RecurrenceClass",
    "NumericalError",
    "ReproError",
    "Signature",
    "SignatureError",
    "SimulationError",
    "StateError",
    "UnsupportedRecurrenceError",
    "ValidationError",
    "WorkerError",
    "assert_valid",
    "carry_seed",
    "carry_transition_matrix",
    "cascade",
    "cascade_many",
    "classify",
    "compare_results",
    "correction_factor_matrix",
    "correction_factors",
    "fir_map",
    "frequency_response",
    "high_pass",
    "impulse_response",
    "is_stable",
    "low_pass",
    "nnacci",
    "parse_signature",
    "poles",
    "serial_full",
    "serial_recurrence",
    "single_pole_high_pass",
    "single_pole_low_pass",
    "table1_signatures",
]
