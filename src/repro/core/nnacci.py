"""n-nacci correction-factor sequences (Section 2.1 of the paper).

To merge two adjacent chunks, each element of the second chunk receives
a correction that is a linear combination of the last k elements of the
first chunk (the *carries*).  The multipliers — correction factors —
do not depend on the input; for the recurrence ``(1: c-1, ..., c-k)``
the factor sequence for each carry is produced by running the
*homogeneous* recurrence ``(0: c-1, ..., c-k)`` on a unit-vector seed:

* the seed for the carry w[m-1] (the most recent) is ``0, ..., 0, 1``,
* the seed for the carry w[m-j] has its single 1 at position k - j,
* the seed for the carry w[m-k] (the oldest) is ``1, 0, ..., 0``.

These are the generalized Fibonacci ("n-nacci") numbers: (1: 1, 1)
yields the two Fibonacci sequences, (1: 1, 1, 1) the three Tribonacci
sequences, and so on.  The paper notes this is also *why* code
generation is fast: factors come from a linear scan, not from solving
correction equations.

This module is deliberately free of any GPU or planning concerns; it is
pure sequence math used by the PLR solver, the optimizer, and the code
generators.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.core.signature import Signature

__all__ = [
    "nnacci",
    "carry_seed",
    "correction_factors",
    "correction_factor_matrix",
    "carry_transition_matrix",
    "solved_correction_factors",
]

Coeff = int | float | Fraction


def carry_seed(order: int, carry_index: int) -> tuple[int, ...]:
    """The length-k unit seed for carry ``w[m - 1 - carry_index]``.

    ``carry_index`` counts carries from the most recent: 0 is w[m-1],
    1 is w[m-2], ..., k-1 is w[m-k].  The 1 sits at position
    ``k - 1 - carry_index`` so that the seed occupies the location of
    that carry in the (conceptually) extended previous chunk.
    """
    if not 0 <= carry_index < order:
        raise ValueError(f"carry_index must be in [0, {order}), got {carry_index}")
    seed = [0] * order
    seed[order - 1 - carry_index] = 1
    return tuple(seed)


def nnacci(
    coefficients: Sequence[Coeff], seed: Sequence[Coeff], length: int
) -> list[Coeff]:
    """Generate ``length`` terms of the (c-1, ..., c-k)-nacci sequence.

    Starting *after* the seed, each term is
    ``sum_j coefficients[j-1] * prior[j]`` — i.e. the homogeneous
    recurrence ``(0: c-1, ..., c-k)`` applied to the seed window.  The
    seed itself is not included in the output.

    Arithmetic follows the input types: integer coefficients with an
    integer seed stay exact (arbitrary-precision ints), floats stay
    floats.
    """
    k = len(coefficients)
    if k == 0:
        raise ValueError("need at least one coefficient")
    if len(seed) != k:
        raise ValueError(f"seed must have exactly {k} elements, got {len(seed)}")
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    window = list(seed)
    out: list[Coeff] = []
    for _ in range(length):
        term = sum(c * window[-j] for j, c in enumerate(coefficients, start=1))
        out.append(term)
        window.append(term)
        # Keep the window short: only the last k values are ever read.
        if len(window) > k:
            del window[0]
    return out


def correction_factors(
    signature: Signature, carry_index: int, length: int
) -> list[Coeff]:
    """The factor list for one carry of a recurrence (exact arithmetic).

    ``factors[i]`` multiplies carry ``w[m - 1 - carry_index]`` in the
    correction of the element at offset ``i`` past the chunk border.
    """
    seed = carry_seed(signature.order, carry_index)
    return nnacci(signature.feedback, seed, length)


def correction_factor_matrix(
    signature: Signature, length: int, dtype: np.dtype | type = np.float64
) -> np.ndarray:
    """All k factor lists stacked into a (k, length) ndarray.

    Row ``j`` holds the factors for carry w[m-1-j].  Integer signatures
    may overflow fixed-width integer dtypes for long lengths (e.g.
    higher-order prefix-sum factors grow polynomially, Fibonacci-like
    factors exponentially); this mirrors the wrap-around behaviour of
    the 32-bit CUDA code the paper generates, so we intentionally cast
    with wrap-around rather than raising.
    """
    k = signature.order
    out = np.empty((k, length), dtype=dtype)
    for j in range(k):
        exact = correction_factors(signature, j, length)
        if np.issubdtype(np.dtype(dtype), np.integer):
            info = np.iinfo(dtype)
            width = int(info.max) - int(info.min) + 1
            wrapped = [
                ((int(v) - int(info.min)) % width) + int(info.min) for v in exact
            ]
            out[j, :] = wrapped
        else:
            out[j, :] = [float(v) for v in exact]
    return out


def carry_transition_matrix(
    signature: Signature, chunk_size: int
) -> list[list[Coeff]]:
    """The k-by-k matrix M with ``new_carries = local + M @ prev_carries``.

    Carries are ordered most-recent-first: ``[w[m-1], ..., w[m-k]]``
    where m = ``chunk_size``.  Row r of M holds, for the carry at offset
    m-1-r, the factor of each previous-chunk carry — that is,
    ``M[r][j] = F_j[m - 1 - r]`` where F_j is carry j's factor list.
    The matrix depends on m because the factor lists grow along the
    chunk.

    This is the matrix Phase 2's variable look-back uses to hop over
    intervening chunks in O(k^2) per hop.  Section 2.3's worked example
    uses exactly its entries: for (1: 2, -1) with m = 8 it is
    [[9, -8], [8, -7]], reproducing "24 = 44 + 8*8 + -7*12 and
    16 = 40 + 9*8 + -8*12".
    """
    k = signature.order
    if chunk_size < k:
        raise ValueError(
            f"chunk size must be >= order ({k}), got {chunk_size}"
        )
    matrix: list[list[Coeff]] = [[0] * k for _ in range(k)]
    for j in range(k):
        factors = correction_factors(signature, j, chunk_size)
        for r in range(k):
            matrix[r][j] = factors[chunk_size - 1 - r]
    return matrix


def solved_correction_factors(
    signature: Signature, carry_index: int, length: int
) -> list[Fraction]:
    """Correction factors derived by *solving* the correction equations.

    This is the slow derivation the paper says it "initially used":
    symbolically push the correction of each element through the
    recurrence.  Element at offset i past the border receives the
    correction ``sum_j b_j * (correction of element i-j)``, where the
    correction of a *negative* offset -d is the carry w[m-d] itself
    (coefficient 1 for d-1 == carry_index, else 0).  Extracting the
    coefficient of one carry reproduces that carry's factor list.

    Exists purely as an independent oracle for testing :func:`nnacci`;
    production code never calls it.
    """
    k = signature.order
    if not 0 <= carry_index < k:
        raise ValueError(f"carry_index must be in [0, {k}), got {carry_index}")
    fb = [Fraction(c) for c in signature.feedback]
    # corrections[i] = coefficient of the chosen carry in the correction
    # applied to the element at offset i.  Offsets < 0 refer into the
    # previous chunk, where the "correction" of w[m-d] w.r.t. itself is 1.
    corrections: dict[int, Fraction] = {}
    for d in range(1, k + 1):
        corrections[-d] = Fraction(1) if d - 1 == carry_index else Fraction(0)
    out: list[Fraction] = []
    for i in range(length):
        value = sum(
            (fb[j - 1] * corrections[i - j] for j in range(1, k + 1)),
            start=Fraction(0),
        )
        corrections[i] = value
        out.append(value)
    return out
