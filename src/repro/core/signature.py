"""The signature DSL for linear recurrences.

The paper expresses an order-k homogeneous linear recurrence with
constant coefficients

    y[i] = a0*x[i] + a_{-1}*x[i-1] + ... + a_{-p}*x[i-p]
         + b_{-1}*y[i-1] + b_{-2}*y[i-2] + ... + b_{-k}*y[i-k]

as a *signature*: two comma-separated coefficient lists split by a
colon, ``(a0, a-1, ..., a-p : b-1, b-2, ..., b-k)``.  Examples from
Table 1 of the paper::

    (1: 1)                  standard prefix sum
    (1: 0, 1)               2-tuple prefix sum
    (1: 2, -1)              second-order prefix sum
    (0.2: 0.8)              1-stage low-pass filter
    (0.9, -0.9: 0.8)        1-stage high-pass filter

This module implements parsing, validation, formatting, and basic
queries on signatures.  A :class:`Signature` is immutable and hashable,
so it can be used as a cache key throughout the compiler.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from repro.core.errors import SignatureError

__all__ = ["Signature", "parse_signature"]

_NUMBER_RE = re.compile(
    r"""^[+-]?(
            (\d+\.?\d*([eE][+-]?\d+)?)   # 12, 12., 12.5, 1e3, 1.5e-3
          | (\.\d+([eE][+-]?\d+)?)       # .5, .5e2
          | (\d+\s*/\s*\d+)              # 3/4 (exact rational)
        )$""",
    re.VERBOSE,
)


def _parse_number(token: str) -> int | float | Fraction:
    """Parse one coefficient token into an int, float, or Fraction.

    Integers stay exact so that integer signatures (prefix sums) can be
    computed without floating-point rounding; ``3/4`` style tokens are
    kept as :class:`fractions.Fraction` for exact rational filters.
    """
    token = token.strip()
    if not token:
        raise SignatureError("empty coefficient")
    if not _NUMBER_RE.match(token):
        raise SignatureError(f"invalid coefficient: {token!r}")
    if "/" in token:
        num, den = token.split("/")
        return Fraction(int(num), int(den))
    if any(ch in token for ch in ".eE"):
        return float(token)
    return int(token)


def _coerce(value: int | float | Fraction) -> int | float | Fraction:
    """Normalize a user-supplied coefficient.

    Floats that are exactly integral are *not* collapsed to int: a user
    who writes ``1.0`` asked for floating-point semantics.  Booleans are
    rejected because they silently coerce to 0/1 and usually indicate a
    caller bug.
    """
    if isinstance(value, bool):
        raise SignatureError("boolean is not a valid coefficient")
    if isinstance(value, (int, float, Fraction)):
        return value
    # Allow numpy scalars without importing numpy here.
    for attr in ("item",):
        if hasattr(value, attr):
            return _coerce(value.item())
    raise SignatureError(f"unsupported coefficient type: {type(value).__name__}")


@dataclass(frozen=True)
class Signature:
    """An immutable recurrence signature ``(a0..a-p : b-1..b-k)``.

    Attributes
    ----------
    feedforward:
        The non-recursive coefficients ``(a0, a-1, ..., a-p)`` applied
        to the input sequence.  The paper calls these the feed-forward
        coefficients; together they form the FIR "map" stage.
    feedback:
        The recursive coefficients ``(b-1, ..., b-k)`` applied to the
        output sequence.  Their count ``k`` is the *order* of the
        recurrence.
    """

    feedforward: tuple[int | float | Fraction, ...]
    feedback: tuple[int | float | Fraction, ...]
    _validated: bool = field(default=False, repr=False, compare=False)

    def __init__(
        self,
        feedforward: Sequence[int | float | Fraction],
        feedback: Sequence[int | float | Fraction],
    ) -> None:
        ff = tuple(_coerce(v) for v in feedforward)
        fb = tuple(_coerce(v) for v in feedback)
        if not ff:
            raise SignatureError("signature needs at least one feed-forward coefficient")
        if not fb:
            raise SignatureError(
                "signature needs at least one feedback coefficient; a pure map "
                "(all b zero) is embarrassingly parallel and out of scope"
            )
        if ff[-1] == 0:
            raise SignatureError("the last feed-forward coefficient must be non-zero")
        if fb[-1] == 0:
            raise SignatureError("the last feedback coefficient must be non-zero")
        if all(a == 0 for a in ff):
            raise SignatureError("all-zero feed-forward coefficients produce all-zero output")
        object.__setattr__(self, "feedforward", ff)
        object.__setattr__(self, "feedback", fb)
        object.__setattr__(self, "_validated", True)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The recurrence order k: how many prior outputs feed back."""
        return len(self.feedback)

    @property
    def fir_order(self) -> int:
        """The FIR order p: how many prior *inputs* are referenced."""
        return len(self.feedforward) - 1

    @property
    def is_integer(self) -> bool:
        """True when every coefficient is an exact integer.

        Integer signatures are computed in integer arithmetic and
        verified for exact equality, mirroring the paper's methodology.
        """
        return all(isinstance(c, int) for c in self.feedforward + self.feedback)

    @property
    def is_pure_recursive(self) -> bool:
        """True for type-(3) recurrences ``(1: b-1, ..., b-k)``.

        These are the recurrences left over after the FIR map stage has
        been applied; the PLR algorithm proper only ever sees this form.
        """
        return self.feedforward == (1,)

    def recursive_part(self) -> "Signature":
        """The type-(3) signature ``(1: b...)`` with this feedback."""
        return Signature((1,), self.feedback)

    def map_part(self) -> tuple[int | float | Fraction, ...]:
        """The FIR map coefficients (type-(2) stage of the paper)."""
        return self.feedforward

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        def fmt(value: int | float | Fraction) -> str:
            if isinstance(value, Fraction):
                return f"{value.numerator}/{value.denominator}"
            return repr(value)

        ff = ", ".join(fmt(c) for c in self.feedforward)
        fb = ", ".join(fmt(c) for c in self.feedback)
        return f"({ff}: {fb})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signature.parse({str(self)!r})"

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Signature":
        """Parse a signature string such as ``"(1: 2, -1)"``.

        The surrounding parentheses are optional, so ``"1: 2, -1"`` is
        accepted too, which is convenient on the command line.
        """
        if not isinstance(text, str):
            raise SignatureError(f"expected str, got {type(text).__name__}")
        stripped = text.strip()
        if stripped.startswith("(") and stripped.endswith(")"):
            stripped = stripped[1:-1]
        elif stripped.startswith("(") or stripped.endswith(")"):
            raise SignatureError(f"unbalanced parentheses in signature: {text!r}")
        if stripped.count(":") != 1:
            raise SignatureError(
                f"signature must contain exactly one ':' separating the "
                f"feed-forward from the feedback coefficients: {text!r}"
            )
        left, right = stripped.split(":")
        ff = cls._parse_coefficient_list(left, side="feed-forward")
        fb = cls._parse_coefficient_list(right, side="feedback")
        return cls(ff, fb)

    @staticmethod
    def _parse_coefficient_list(
        text: str, side: str
    ) -> tuple[int | float | Fraction, ...]:
        tokens = [t.strip() for t in text.split(",")]
        if tokens == [""]:
            raise SignatureError(f"missing {side} coefficients")
        if any(t == "" for t in tokens):
            raise SignatureError(f"empty coefficient in {side} list: {text!r}")
        return tuple(_parse_number(t) for t in tokens)

    # ------------------------------------------------------------------
    # Convenience constructors (Table 1 of the paper)
    # ------------------------------------------------------------------
    @classmethod
    def prefix_sum(cls) -> "Signature":
        """The standard prefix sum ``(1: 1)``."""
        return cls((1,), (1,))

    @classmethod
    def tuple_prefix_sum(cls, size: int) -> "Signature":
        """An s-tuple prefix sum ``(1: 0, ..., 0, 1)`` with b[-s] = 1.

        Computes s independent interleaved prefix sums as one scalar
        order-s recurrence, exactly the encoding the paper uses.
        """
        if size < 1:
            raise SignatureError(f"tuple size must be >= 1, got {size}")
        feedback = (0,) * (size - 1) + (1,)
        return cls((1,), feedback)

    @classmethod
    def higher_order_prefix_sum(cls, order: int) -> "Signature":
        """An order-r prefix sum (prefix sum applied r times).

        The feedback coefficients follow the binomial coefficients with
        alternating signs, e.g. order 2 -> (1: 2, -1) and order
        3 -> (1: 3, -3, 1); see Table 1.  Derived via the z-transform:
        the transfer function is 1/(1 - z^-1)^r.
        """
        if order < 1:
            raise SignatureError(f"prefix-sum order must be >= 1, got {order}")
        from math import comb

        feedback = tuple(
            (-1) ** (j + 1) * comb(order, j) for j in range(1, order + 1)
        )
        return cls((1,), feedback)

    def with_feedback(self, feedback: Iterable[int | float | Fraction]) -> "Signature":
        """A copy of this signature with different feedback coefficients."""
        return Signature(self.feedforward, tuple(feedback))

    def with_feedforward(
        self, feedforward: Iterable[int | float | Fraction]
    ) -> "Signature":
        """A copy of this signature with different feed-forward coefficients."""
        return Signature(tuple(feedforward), self.feedback)


def parse_signature(text: str) -> Signature:
    """Module-level alias for :meth:`Signature.parse`."""
    return Signature.parse(text)
