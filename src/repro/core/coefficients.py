"""Filter design: the coefficient formulas behind Table 1.

The paper cites Smith, *Digital Signal Processing: A Practical Guide
for Engineers and Scientists* (chapter 19, "Recursive Filters") for the
coefficients of its low-/high-pass examples.  Smith's single-pole
recursive filters are, for a pole location x in (0, 1):

    low-pass:   a0 = 1 - x                b1 = x
    high-pass:  a0 = (1 + x) / 2          b1 = x
                a1 = -(1 + x) / 2

Multi-stage filters are single-pole stages cascaded via the z-transform
(:mod:`repro.core.ztransform`).  With x = 0.8 this reproduces Table 1
exactly:

    1-stage low-pass    (0.2: 0.8)
    2-stage low-pass    (0.04: 1.6, -0.64)
    3-stage low-pass    (0.008: 2.4, -1.92, 0.512)
    1-stage high-pass   (0.9, -0.9: 0.8)
    2-stage high-pass   (0.81, -1.62, 0.81: 1.6, -0.64)
    3-stage high-pass   (0.729, -2.187, 2.187, -0.729: 2.4, -1.92, 0.512)

(The paper prints the 3-stage high-pass truncated to two decimals.)
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.errors import SignatureError
from repro.core.signature import Signature
from repro.core.ztransform import repeat

__all__ = [
    "single_pole_low_pass",
    "single_pole_high_pass",
    "low_pass",
    "high_pass",
    "pole_for_time_constant",
    "pole_for_cutoff",
    "table1_signatures",
]


def _check_pole(x: float) -> float:
    if not 0.0 < x < 1.0:
        raise SignatureError(
            f"single-pole filter requires a pole in (0, 1), got {x!r}; "
            "poles at or beyond 1 are unstable"
        )
    return float(x)


def single_pole_low_pass(x: float = 0.8) -> Signature:
    """Smith's single-pole low-pass filter: ``(1-x : x)``."""
    x = _check_pole(x)
    return Signature((1.0 - x,), (x,))


def single_pole_high_pass(x: float = 0.8) -> Signature:
    """Smith's single-pole high-pass filter: ``((1+x)/2, -(1+x)/2 : x)``."""
    x = _check_pole(x)
    half = (1.0 + x) / 2.0
    return Signature((half, -half), (x,))


def low_pass(stages: int = 1, x: float = 0.8) -> Signature:
    """An n-stage low-pass filter: ``stages`` single poles cascaded.

    ``low_pass(2)`` yields the paper's (0.04: 1.6, -0.64), etc.
    """
    return repeat(single_pole_low_pass(x), stages)


def high_pass(stages: int = 1, x: float = 0.8) -> Signature:
    """An n-stage high-pass filter: ``stages`` single poles cascaded."""
    return repeat(single_pole_high_pass(x), stages)


def pole_for_time_constant(samples: float) -> float:
    """The pole x giving a specified exponential time constant.

    A single-pole filter's impulse response decays as x^n; the time
    constant d (in samples) where the response falls to 1/e satisfies
    x = e^(-1/d).  Handy for designing smoothing filters in the
    examples.
    """
    if samples <= 0:
        raise SignatureError(f"time constant must be positive, got {samples!r}")
    return math.exp(-1.0 / samples)


def pole_for_cutoff(fc: float) -> float:
    """The pole x for a -3 dB cutoff at normalized frequency fc.

    Smith's formula x = e^(-2*pi*fc), valid for fc in (0, 0.5).
    """
    if not 0.0 < fc < 0.5:
        raise SignatureError(
            f"cutoff must be a normalized frequency in (0, 0.5), got {fc!r}"
        )
    return math.exp(-2.0 * math.pi * fc)


def table1_signatures() -> Mapping[str, Signature]:
    """All eleven recurrences of the paper's Table 1, by name.

    The names double as workload identifiers in the evaluation harness,
    so every figure/table bench references this single source of truth.
    """
    return {
        "prefix_sum": Signature.prefix_sum(),
        "tuple2_prefix_sum": Signature.tuple_prefix_sum(2),
        "tuple3_prefix_sum": Signature.tuple_prefix_sum(3),
        "order2_prefix_sum": Signature.higher_order_prefix_sum(2),
        "order3_prefix_sum": Signature.higher_order_prefix_sum(3),
        "low_pass_1": low_pass(1),
        "low_pass_2": low_pass(2),
        "low_pass_3": low_pass(3),
        "high_pass_1": high_pass(1),
        "high_pass_2": high_pass(2),
        "high_pass_3": high_pass(3),
    }
