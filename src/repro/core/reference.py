"""Serial reference implementations (Section 2's listing).

The paper validates every parallel run against the serial CPU code

    for (i = 0; i < n; i++) {
      y[i] = t[i];
      for (j = 1; j <= min(i, k); j++)
        y[i] += b[j] * y[i - j];
    }

We keep three flavors:

* :func:`serial_recurrence` — the listing above, for type-(3)
  recurrences ``(1: b...)``, with the dtype of the input;
* :func:`fir_map` — the embarrassingly parallel map stage (2);
* :func:`serial_full` — the two composed, i.e. the full type-(1)
  recurrence for an arbitrary signature.

These are the correctness oracles for *everything* else in the
repository: the PLR solver, the generated code, the GPU simulator, and
all baselines are tested against them.  They are intentionally written
as straightforward loops over numpy arrays (vectorizing the oracle with
the very tricks under test would defeat its purpose); a mildly blocked
variant is provided for speed on large arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.signature import Signature

__all__ = ["fir_map", "serial_recurrence", "serial_full", "resolve_dtype"]


def resolve_dtype(signature: Signature, values_dtype: np.dtype) -> np.dtype:
    """The computation dtype for a signature applied to given values.

    Matching the paper's methodology: integer signatures on integer
    data run in 32-bit integer arithmetic (with wrap-around), everything
    else in 32-bit floating point, unless the caller supplied a wider
    dtype already.
    """
    values_dtype = np.dtype(values_dtype)
    if signature.is_integer and np.issubdtype(values_dtype, np.integer):
        return values_dtype
    if values_dtype == np.float64:
        return np.dtype(np.float64)
    return np.dtype(np.float32)


def fir_map(values: np.ndarray, feedforward: Sequence[float]) -> np.ndarray:
    """The map stage (2): ``t[i] = sum_j a_{-j} * x[i-j]``.

    Missing terms (i - j < 0) are zero, matching the paper's convention
    x[j] = 0 for j < 0.  This stage has no loop-carried dependency and
    is computed with shifted vector adds.
    """
    values = np.asarray(values)
    out = np.zeros_like(values)
    for j, a in enumerate(feedforward):
        if a == 0:
            continue
        if j == 0:
            out += _scaled(values, a)
        else:
            out[j:] += _scaled(values[:-j], a)
    return out


def _scaled(values: np.ndarray, coeff: float) -> np.ndarray:
    """values * coeff without promoting integer arrays to float."""
    if np.issubdtype(values.dtype, np.integer):
        return values * np.asarray(coeff, dtype=values.dtype)
    return values * values.dtype.type(coeff)


def serial_recurrence(values: np.ndarray, feedback: Sequence[float]) -> np.ndarray:
    """The serial listing from Section 2, for ``(1: b...)`` recurrences.

    A deliberately plain left-to-right loop: this is the oracle the
    parallel codes are judged against, so it must not share any of the
    machinery under test.  Use moderate sizes; it is O(nk) Python.
    """
    values = np.asarray(values)
    k = len(feedback)
    n = len(values)
    out = np.array(values, copy=True)
    if n == 0 or k == 0:
        return out
    if np.issubdtype(out.dtype, np.integer):
        coeffs = [np.asarray(b, dtype=out.dtype) for b in feedback]
    else:
        coeffs = [out.dtype.type(b) for b in feedback]
    # Integer signatures deliberately wrap around like the 32-bit CUDA
    # arithmetic they model; suppress numpy's scalar-overflow warning.
    with np.errstate(over="ignore"):
        for i in range(n):
            acc = out[i]
            for j in range(1, min(i, k) + 1):
                acc = acc + coeffs[j - 1] * out[i - j]
            out[i] = acc
    return out


def serial_full(
    values: np.ndarray, signature: Signature, dtype: np.dtype | None = None
) -> np.ndarray:
    """The full type-(1) recurrence: map stage then recursive stage.

    This is the semantic definition of what every solver in this
    repository must compute for ``signature`` on ``values``.
    """
    values = np.asarray(values)
    if dtype is None:
        dtype = resolve_dtype(signature, values.dtype)
    work = values.astype(dtype, copy=False)
    ff = [_as_python_number(a) for a in signature.feedforward]
    fb = [_as_python_number(b) for b in signature.feedback]
    t = fir_map(work, ff)
    return serial_recurrence(t, fb)


def _as_python_number(coeff) -> int | float:
    """Collapse Fractions to float, keep ints exact."""
    if isinstance(coeff, int):
        return coeff
    return float(coeff)
