"""Result validation, mirroring the paper's methodology (Section 5).

"We check the integer results for exact matches.  Since floating-point
addition and multiplication are not truly associative, the parallel
codes produce slightly different results than the serial code ...  In
this case, we make sure the discrepancy is within 1e-3."

The float tolerance is applied *relatively* for large magnitudes and
absolutely near zero, because an unstable integer-signature-on-float
run can reach magnitudes where an absolute 1e-3 would be meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ValidationError

__all__ = ["ValidationReport", "compare_results", "assert_valid", "FLOAT_TOLERANCE"]

FLOAT_TOLERANCE = 1e-3
"""The discrepancy bound the paper uses for floating-point results."""


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of comparing a parallel result against the serial oracle."""

    ok: bool
    kind: str  # "exact" or "tolerance"
    max_error: float
    worst_index: int | None
    checked: int

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if self.ok:
            return (
                f"OK ({self.kind}, {self.checked} values, "
                f"max error {self.max_error:.3g})"
            )
        return (
            f"MISMATCH at index {self.worst_index}: max error "
            f"{self.max_error:.6g} exceeds tolerance ({self.kind} check, "
            f"{self.checked} values)"
        )


def compare_results(
    result: np.ndarray,
    expected: np.ndarray,
    tolerance: float = FLOAT_TOLERANCE,
) -> ValidationReport:
    """Compare a computed result with the serial reference.

    Integer arrays must match exactly; floating-point arrays must agree
    within ``tolerance`` (relative for |expected| > 1, absolute below).
    """
    result = np.asarray(result)
    expected = np.asarray(expected)
    if result.shape != expected.shape:
        raise ValidationError(
            f"shape mismatch: result {result.shape} vs expected {expected.shape}"
        )
    # Multi-dimensional results (batched/2D filters) compare flat;
    # reported indices are into the flattened array.
    result = result.ravel()
    expected = expected.ravel()
    n = result.size
    if n == 0:
        return ValidationReport(True, "exact", 0.0, None, 0)

    integer = np.issubdtype(result.dtype, np.integer) and np.issubdtype(
        expected.dtype, np.integer
    )
    if integer:
        diff = result != expected
        if not diff.any():
            return ValidationReport(True, "exact", 0.0, None, n)
        worst = int(np.argmax(diff))
        return ValidationReport(False, "exact", float("inf"), worst, n)

    res = result.astype(np.float64)
    exp = expected.astype(np.float64)
    scale = np.maximum(np.abs(exp), 1.0)
    err = np.abs(res - exp) / scale
    # NaNs in either operand are always a failure unless they match
    # positionally (a NaN-producing recurrence is still deterministic).
    nan_mismatch = np.isnan(res) != np.isnan(exp)
    err = np.where(np.isnan(err), 0.0, err)
    err = np.where(nan_mismatch, np.inf, err)
    worst = int(np.argmax(err))
    max_err = float(err[worst])
    ok = max_err <= tolerance
    return ValidationReport(ok, "tolerance", max_err, None if ok else worst, n)


def assert_valid(
    result: np.ndarray,
    expected: np.ndarray,
    tolerance: float = FLOAT_TOLERANCE,
    context: str = "",
) -> ValidationReport:
    """Raise :class:`ValidationError` when the comparison fails."""
    report = compare_results(result, expected, tolerance)
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise ValidationError(prefix + report.describe())
    return report
