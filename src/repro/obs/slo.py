"""SLO tracking: latency-objective attainment, error budget, burn rates.

The serving layer promises "a correct output or a typed error"; an SLO
says how *often* and how *fast* that promise must hold.  This module
turns the stream of per-request outcomes into the three numbers an
operator actually pages on:

* **attainment** — the fraction of requests that were *good*: replied
  ``ok`` within the latency objective.  Compared against the target
  (e.g. 0.99) directly.
* **error budget** — a target of 0.99 allows 1% bad requests; the
  budget is how much of that allowance remains over the tracker's
  lifetime.  Negative remaining fraction means the SLO is blown.
* **burn rate** — per sliding window, the ratio of the observed
  bad-request rate to the allowed rate.  Burn rate 1.0 spends the
  budget exactly on schedule; 14.4 over one hour is the classic
  page-now threshold.  Multiple windows (default 5 min and 1 h)
  distinguish a fast burn (incident) from a slow one (degradation).

The tracker keeps per-second aggregate buckets in a bounded deque — no
per-request allocation beyond one bucket per active second, O(window)
memory, injectable clock for deterministic tests.  It is exposed live
via the server's ``{"op": "slo"}`` control frame and ``plr slo``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

__all__ = [
    "SLOConfig",
    "SLOTracker",
]


@dataclass(frozen=True)
class SLOConfig:
    """The objective: latency bound, success target, burn windows."""

    latency_objective_ms: float = 50.0
    target: float = 0.99
    windows_s: tuple[float, ...] = (300.0, 3600.0)

    def __post_init__(self) -> None:
        if self.latency_objective_ms <= 0:
            raise ValueError(
                f"latency_objective_ms must be > 0, got {self.latency_objective_ms}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        windows = tuple(float(w) for w in self.windows_s)
        if not windows or any(w <= 0 for w in windows):
            raise ValueError(f"windows_s must be positive, got {self.windows_s}")
        if list(windows) != sorted(set(windows)):
            raise ValueError(f"windows_s must strictly increase, got {self.windows_s}")
        object.__setattr__(self, "windows_s", windows)


class SLOTracker:
    """Streaming attainment/budget/burn-rate computation.

    ``clock`` returns seconds (monotonic by default); tests inject a
    fake.  :meth:`record` is O(1) amortized; :meth:`report` is
    O(max window in seconds), cheap enough for a control-frame handler.
    """

    def __init__(self, config: SLOConfig | None = None, *, clock=time.monotonic):
        self.config = config if config is not None else SLOConfig()
        self._clock = clock
        self.total = 0
        self.good = 0
        # Per-second aggregates: [second, total, good], oldest first.
        self._buckets: deque[list] = deque()
        self._horizon = max(self.config.windows_s)

    # -- recording -------------------------------------------------------
    def record(self, *, ok: bool, latency_ms: float) -> bool:
        """Account one finished request; returns whether it was good.

        A request is *good* iff it succeeded and met the latency
        objective — a slow success spends error budget just like a
        failure, which is the point of a latency SLO.
        """
        good = bool(ok) and latency_ms <= self.config.latency_objective_ms
        self.total += 1
        if good:
            self.good += 1
        second = int(self._clock())
        if self._buckets and self._buckets[-1][0] == second:
            bucket = self._buckets[-1]
        else:
            bucket = [second, 0, 0]
            self._buckets.append(bucket)
            self._evict(second)
        bucket[1] += 1
        if good:
            bucket[2] += 1
        return good

    def _evict(self, now_second: int) -> None:
        cutoff = now_second - self._horizon
        while self._buckets and self._buckets[0][0] < cutoff:
            self._buckets.popleft()

    # -- reporting -------------------------------------------------------
    def report(self) -> dict:
        """The JSON-ready SLO report (served by ``{"op": "slo"}``)."""
        config = self.config
        now_second = int(self._clock())
        self._evict(now_second)
        allowed = 1.0 - config.target
        bad = self.total - self.good
        attainment = self.good / self.total if self.total else 1.0
        consumed = (bad / self.total) / allowed if self.total else 0.0
        windows = []
        for window in config.windows_s:
            cutoff = now_second - window
            w_total = w_good = 0
            for second, total, good in self._buckets:
                if second >= cutoff:
                    w_total += total
                    w_good += good
            w_attainment = w_good / w_total if w_total else 1.0
            windows.append(
                {
                    "window_s": window,
                    "total": w_total,
                    "good": w_good,
                    "attainment": w_attainment,
                    "burn_rate": (1.0 - w_attainment) / allowed,
                }
            )
        return {
            "objective": {
                "latency_ms": config.latency_objective_ms,
                "target": config.target,
            },
            "total": self.total,
            "good": self.good,
            "attainment": attainment,
            "error_budget": {
                "allowed_fraction": allowed,
                "consumed_fraction": consumed,
                "remaining_fraction": 1.0 - consumed,
            },
            "windows": windows,
        }

    def clear(self) -> None:
        self.total = 0
        self.good = 0
        self._buckets.clear()
