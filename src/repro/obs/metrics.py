"""Counters, gauges, and fixed-bucket histograms for PLR runs.

A :class:`MetricsRegistry` is the aggregate side of the observability
layer: where the :class:`~repro.obs.tracer.Tracer` records *what
happened when*, the registry records *how much of it happened*.  It is
dependency-free, JSON-serializable via :meth:`MetricsRegistry.snapshot`,
and reconstructible via :meth:`MetricsRegistry.from_snapshot`, so a
metrics snapshot can ride inside a
:class:`~repro.resilience.solver.SolveReport` or a profile file and
round-trip losslessly.

Histograms use fixed bucket upper bounds (no dynamic resizing, no
per-observation allocation) and report percentiles by linear
interpolation within the containing bucket — the standard
Prometheus-style estimate, which is exact for the integer-valued
distributions we care about (look-back distances, spin counts) when the
default buckets are unit-spaced at the low end.

A process-global registry (:func:`global_metrics`) backs cross-cutting
stats like the factor-table cache; per-run registries are cheap and
preferred wherever a run object can carry one.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "exponential_buckets",
    "global_metrics",
    "reset_global_metrics",
]

DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
"""Default histogram bucket upper bounds: unit/power-of-two spacing that
is exact for small integer observations (look-back distances are capped
at 32 by the protocol) and still bounded for large ones."""


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric bucket bounds: start, start*factor, ...

    The standard way to cover several orders of magnitude with a fixed
    bucket budget — e.g. serve latencies from 50 microseconds to tens of
    seconds — without flattening the fast end into one bucket (the
    failure mode of a linear-at-the-bottom preset when p99 < 1 ms).
    Bounds are rounded to 12 significant digits so repeated
    multiplication cannot produce near-duplicate bounds that violate the
    strictly-increasing invariant.
    """
    if start <= 0 or not math.isfinite(start):
        raise ValueError(f"start must be a positive finite number, got {start}")
    if factor <= 1 or not math.isfinite(factor):
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    bounds = tuple(float(f"{start * factor ** i:.12g}") for i in range(count))
    return bounds


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (cache size, resident blocks, ...)."""

    value: float = 0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` holds the inclusive upper bounds; observations beyond
    the last bound land in an implicit overflow bucket.  ``counts`` has
    ``len(buckets) + 1`` entries, overflow last.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0

    def __post_init__(self) -> None:
        self.buckets = tuple(self.buckets)
        if not self.buckets:
            raise ValueError("need at least one bucket bound")
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"bucket bounds must strictly increase: {self.buckets}")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        elif len(self.counts) != len(self.buckets) + 1:
            raise ValueError(
                f"counts must have {len(self.buckets) + 1} entries "
                f"(one per bucket plus overflow), got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        # A single NaN observation would silently poison ``total`` (and
        # with it ``mean``) forever, and NaN compares false against
        # every bound so it lands in the overflow bucket unnoticed.
        # Infinities corrupt ``total`` the same way.  Fail loudly.
        if not math.isfinite(value):
            raise ValueError(f"histogram observations must be finite, got {value}")
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile (p in [0, 100]), bucket-interpolated.

        Pinned edge behaviour (never raises, never NaN, for any
        histogram contents):

        * an empty histogram returns 0.0 for every p;
        * p=0 returns the lower edge of the first occupied bucket
          (0.0 when that is the first bucket);
        * p=100 returns the upper edge of the last occupied bucket;
        * observations in the overflow bucket clamp to the largest
          bound — the estimate cannot exceed what the buckets resolve,
          so an all-overflow histogram returns ``buckets[-1]`` for
          every p.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):
                    return float(self.buckets[-1])
                hi = self.buckets[index]
                lo = self.buckets[index - 1] if index else 0.0
                frac = (rank - previous) / bucket_count
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return float(self.buckets[-1])


@dataclass
class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    # -- access (create on first use) -----------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(buckets=buckets)
        return metric

    # -- serialization ---------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict, JSON-serializable copy of every metric."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                }
                for k, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Reconstruct a registry whose :meth:`snapshot` equals the input."""
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():
            registry.counters[name] = Counter(value=value)
        for name, value in snapshot.get("gauges", {}).items():
            registry.gauges[name] = Gauge(value=value)
        for name, data in snapshot.get("histograms", {}).items():
            registry.histograms[name] = Histogram(
                buckets=tuple(data["buckets"]),
                counts=list(data["counts"]),
                count=data["count"],
                total=data["total"],
            )
        return registry

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-global registry (factor-cache stats live here)."""
    return _GLOBAL


def reset_global_metrics() -> None:
    """Zero the global registry (tests; long-lived services)."""
    _GLOBAL.clear()
