"""Head + tail sampling and the structured JSONL request log.

Always-on tracing of every request would blow the <5% overhead budget
(``docs/observability.md``) on a busy server, so the serving layer logs
requests through a two-stage sampling decision:

* **Head sampling** — decided once per trace from a deterministic hash
  of the ``trace_id`` (:meth:`SamplingPolicy.sample_head`), so the same
  request samples identically on every process that sees it with no
  coordination, and a pipeline of services would agree on which traces
  to keep.
* **Tail sampling** — requests the head decision would drop are kept
  anyway when they turn out interesting: errors
  (:attr:`SamplingPolicy.tail_errors`) and slow requests
  (:attr:`SamplingPolicy.tail_slow_ms`).  Tail decisions need the
  outcome, so they run at reply time — which is exactly when the serve
  layer calls :meth:`TraceLog.record`.

The :class:`TraceLog` writes one JSON object per line (append-only, so
``tail -f`` and ``jq`` work on a live server) and counts what it
suppressed — sampling is lossy by design, never silently lossy.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path

__all__ = [
    "SamplingPolicy",
    "TraceLog",
]

_HASH_SPACE = float(2**64)


@dataclass(frozen=True)
class SamplingPolicy:
    """When to keep a request's trace record.

    Parameters
    ----------
    head_rate:
        Fraction of traces kept unconditionally, in [0, 1].  1.0 keeps
        everything (the default: small deployments want full logs and
        the serve overhead guard holds either way); 0.0 keeps only what
        tail sampling rescues.
    tail_errors:
        Keep every request that ended in an error, regardless of the
        head decision.
    tail_slow_ms:
        Keep every request slower than this many milliseconds; None
        disables the slow-tail rule.
    """

    head_rate: float = 1.0
    tail_errors: bool = True
    tail_slow_ms: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.head_rate <= 1.0:
            raise ValueError(f"head_rate must be in [0, 1], got {self.head_rate}")
        if self.tail_slow_ms is not None and self.tail_slow_ms < 0:
            raise ValueError(f"tail_slow_ms must be >= 0, got {self.tail_slow_ms}")

    def sample_head(self, trace_id: str) -> bool:
        """The head decision for a trace: deterministic in ``trace_id``.

        Hashes with BLAKE2b (not Python's ``hash``, which is salted per
        process) so every process — and every restart — agrees.
        """
        if self.head_rate >= 1.0:
            return True
        if self.head_rate <= 0.0:
            return False
        digest = blake2b(trace_id.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") / _HASH_SPACE < self.head_rate

    def decision(
        self, *, head_sampled: bool, ok: bool, latency_ms: float
    ) -> str | None:
        """Why this request is kept, or None to suppress it.

        Returns ``"head"``, ``"error"``, or ``"slow"`` — recorded in the
        log entry so consumers can un-bias rate estimates (a kept error
        under head_rate=0.01 represents one error, not a hundred).
        """
        if head_sampled:
            return "head"
        if self.tail_errors and not ok:
            return "error"
        if self.tail_slow_ms is not None and latency_ms > self.tail_slow_ms:
            return "slow"
        return None


class TraceLog:
    """Append-only JSONL log of sampled per-request records.

    The file handle opens lazily on the first kept record and is line
    buffered; :meth:`flush` is called by the server's drain path so a
    graceful shutdown never loses tail entries.  Not thread-safe by
    itself — the serving layer calls it from the event loop only.
    """

    def __init__(self, path: str | Path, policy: SamplingPolicy | None = None):
        self.path = Path(path)
        self.policy = policy if policy is not None else SamplingPolicy()
        self.written = 0
        self.suppressed = 0
        self._handle = None

    # -- recording -------------------------------------------------------
    def record(
        self,
        *,
        trace_id: str,
        ok: bool,
        latency_ms: float,
        error: str | None = None,
        engine: str | None = None,
        extra: dict | None = None,
    ) -> str | None:
        """Log one finished request; returns the keep-reason or None."""
        head = self.policy.sample_head(trace_id)
        reason = self.policy.decision(
            head_sampled=head, ok=ok, latency_ms=latency_ms
        )
        if reason is None:
            self.suppressed += 1
            return None
        entry: dict = {
            "ts": time.time(),
            "trace_id": trace_id,
            "ok": bool(ok),
            "latency_ms": round(float(latency_ms), 3),
            "sampled": reason,
        }
        if error is not None:
            entry["error"] = error
        if engine is not None:
            entry["engine"] = engine
        if extra:
            entry.update(extra)
        if self._handle is None:
            self._handle = open(self.path, "a", buffering=1)
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self.written += 1
        return reason

    # -- bookkeeping -----------------------------------------------------
    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "written": self.written,
            "suppressed": self.suppressed,
        }

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
