"""Exporters: Chrome trace-event JSON, metrics JSON, SVG timeline.

Three consumers, three formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (the JSON object form with a ``traceEvents``
  array), loadable in Perfetto (https://ui.perfetto.dev) or
  chrome://tracing.  Simulator traces use the scheduler step counter as
  the microsecond field; the absolute unit is meaningless but relative
  ordering and span widths are exact and deterministic per seed.
* :func:`metrics_json` / :func:`write_metrics_json` — a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot with a small
  header.
* :func:`timeline_svg` — a dependency-free SVG Gantt timeline (one row
  per chunk/tid), rendered by :func:`repro.eval.svgplot.render_timeline_svg`
  so all SVG styling lives in one module.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, TracePid, Tracer

__all__ = [
    "chrome_trace",
    "metrics_json",
    "timeline_svg",
    "write_chrome_trace",
    "write_metrics_json",
]


def chrome_trace(tracer: Tracer | NullTracer, *, time_unit: str = "us") -> dict:
    """The complete Chrome trace-event JSON object for a tracer.

    ``time_unit`` is recorded in ``otherData`` for humans; Chrome itself
    always interprets ``ts`` as microseconds, which is fine for the
    simulator's logical-step timelines (1 step renders as 1 us).
    """
    events = [event.to_chrome() for event in tracer.events]
    # Name the pid rows so Perfetto shows subsystems, not bare numbers.
    for pid in sorted({event.pid for event in tracer.events}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": TracePid.name(pid)},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "time_unit": time_unit,
            "event_count": len(tracer.events),
        },
    }


def write_chrome_trace(
    tracer: Tracer | NullTracer, path: str | Path, *, time_unit: str = "us"
) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, time_unit=time_unit), handle, indent=1)
    return path


def metrics_json(registry: MetricsRegistry) -> dict:
    return {"generator": "repro.obs", "metrics": registry.snapshot()}


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(metrics_json(registry), handle, indent=1, sort_keys=True)
    return path


def timeline_svg(tracer: Tracer | NullTracer, title: str = "trace timeline") -> str:
    """Render the tracer's span events as an SVG Gantt timeline."""
    # Imported lazily: eval pulls in the baselines/harness stack, which
    # itself uses obs — a module-level import would be a cycle.
    from repro.eval.svgplot import render_timeline_svg

    return render_timeline_svg(list(tracer.events), title=title)
