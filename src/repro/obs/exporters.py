"""Exporters: Chrome trace-event JSON, metrics JSON, SVG timeline.

Three consumers, three formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (the JSON object form with a ``traceEvents``
  array), loadable in Perfetto (https://ui.perfetto.dev) or
  chrome://tracing.  Simulator traces use the scheduler step counter as
  the microsecond field; the absolute unit is meaningless but relative
  ordering and span widths are exact and deterministic per seed.
* :func:`metrics_json` / :func:`write_metrics_json` — a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot with a small
  header.
* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4) for a registry: counters as ``_total``, histograms
  with cumulative ``le`` buckets, ``_sum`` and ``_count``.  Served live
  by ``{"op": "metrics", "format": "prometheus"}`` and
  ``plr metrics --format prometheus``.
* :func:`timeline_svg` — a dependency-free SVG Gantt timeline (one row
  per chunk/tid), rendered by :func:`repro.eval.svgplot.render_timeline_svg`
  so all SVG styling lives in one module.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, TracePid, Tracer

__all__ = [
    "chrome_trace",
    "metrics_json",
    "prometheus_text",
    "timeline_svg",
    "write_chrome_trace",
    "write_metrics_json",
]


def chrome_trace(tracer: Tracer | NullTracer, *, time_unit: str = "us") -> dict:
    """The complete Chrome trace-event JSON object for a tracer.

    ``time_unit`` is recorded in ``otherData`` for humans; Chrome itself
    always interprets ``ts`` as microseconds, which is fine for the
    simulator's logical-step timelines (1 step renders as 1 us).
    """
    events = [event.to_chrome() for event in tracer.events]
    # Name the pid rows so Perfetto shows subsystems, not bare numbers.
    for pid in sorted({event.pid for event in tracer.events}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": TracePid.name(pid)},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "time_unit": time_unit,
            "event_count": len(tracer.events),
            # Ring-buffer truncation is never silent: 0 means the trace
            # is complete, anything else is how many events were lost.
            "dropped_events": tracer.dropped,
        },
    }


def write_chrome_trace(
    tracer: Tracer | NullTracer, path: str | Path, *, time_unit: str = "us"
) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, time_unit=time_unit), handle, indent=1)
    return path


def metrics_json(registry: MetricsRegistry) -> dict:
    return {"generator": "repro.obs", "metrics": registry.snapshot()}


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name legal in the Prometheus exposition format."""
    sanitized = _PROM_INVALID.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Dotted names become underscore-separated (``serve.latency_ms`` →
    ``serve_latency_ms``); counters gain the conventional ``_total``
    suffix; histograms emit cumulative ``le`` buckets (the registry
    stores per-bucket counts) plus the ``+Inf`` bucket, ``_sum``, and
    ``_count``.  Output is sorted by name so scrapes diff cleanly.
    """
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauge.value)}")
    for name, histogram in sorted(registry.histograms.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.buckets, histogram.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(metrics_json(registry), handle, indent=1, sort_keys=True)
    return path


def timeline_svg(tracer: Tracer | NullTracer, title: str = "trace timeline") -> str:
    """Render the tracer's span events as an SVG Gantt timeline."""
    # Imported lazily: eval pulls in the baselines/harness stack, which
    # itself uses obs — a module-level import would be a cycle.
    from repro.eval.svgplot import render_timeline_svg

    return render_timeline_svg(list(tracer.events), title=title)
