"""Low-overhead structured tracing: spans, instants, and counters.

The tracer is the event backbone of the ``repro.obs`` subsystem.  Every
instrumented layer — the GPU simulator's block protocol, the numpy
solver's phases, the resilience chain — emits :class:`TraceEvent`
records through a shared :class:`Tracer`, and the exporters turn the
event list into Chrome trace-event JSON (openable in Perfetto or
chrome://tracing), an SVG timeline, or a :class:`~repro.obs.profile.PipelineProfile`.

Design rules, in order of importance:

1. **Disabled tracing is free.**  The default is the :data:`NULL_TRACER`
   singleton whose :attr:`Tracer.enabled` is False and whose methods do
   nothing; hot paths guard their event construction with
   ``if tracer.enabled:`` so a production solve pays one attribute read
   per instrumentation point and allocates nothing.
2. **Timestamps are pluggable.**  Wall-clock microseconds by default;
   the event-ordered GPU simulator swaps in its *logical* clock (the
   scheduler's step counter) via :meth:`Tracer.use_clock`, which is what
   makes simulator traces bit-reproducible for a fixed scheduler seed.
3. **Events are plain data.**  A :class:`TraceEvent` maps 1:1 onto the
   Chrome trace-event dict; nothing here knows about files or SVG.

The ``tid`` convention: simulator events use the *chunk id* as the
thread id, so a timeline groups one row per chunk; solver-side events
use tid 0 (the host).  The ``pid`` distinguishes emitting subsystems
(see :class:`TracePid`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.context import TraceContext

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "TracePid",
    "Tracer",
    "coerce_tracer",
    "merge_worker_events",
]


class TracePid:
    """Process-id namespace: which subsystem emitted an event."""

    HOST = 0  # numpy solver, resilience chain, eval harness
    SIM = 1  # the event-ordered GPU simulator
    SCHED = 2  # the grid scheduler itself
    WORKER_BASE = 100  # multicore pool worker i maps to pid WORKER_BASE + i

    NAMES = {HOST: "host", SIM: "gpusim", SCHED: "scheduler"}

    @classmethod
    def worker(cls, index: int) -> int:
        """The pid row for multicore pool worker ``index`` (>= 0)."""
        if index < 0:
            raise ValueError(f"worker index must be >= 0, got {index}")
        return cls.WORKER_BASE + index

    @classmethod
    def name(cls, pid: int) -> str:
        """Human-readable name for a pid row (``worker-N`` for workers)."""
        if pid >= cls.WORKER_BASE:
            return f"worker-{pid - cls.WORKER_BASE}"
        return cls.NAMES.get(pid, f"pid{pid}")


@dataclass(frozen=True)
class TraceEvent:
    """One trace record, isomorphic to a Chrome trace-event dict.

    Attributes
    ----------
    name:
        Event name (the span taxonomy is documented in
        ``docs/observability.md``).
    ph:
        Chrome phase: ``"X"`` complete span, ``"i"`` instant, ``"C"``
        counter, ``"M"`` metadata.
    ts:
        Timestamp in the tracer's clock domain (wall-clock microseconds
        or simulator scheduler steps).
    dur:
        Span duration (``"X"`` events only), same unit as ``ts``.
    cat:
        Comma-free category tag used for filtering (``"block"``,
        ``"phase1"``, ``"phase2"``, ``"fault"``, ``"l2"``, ...).
    pid / tid:
        Subsystem id and logical thread id (chunk id for simulator
        events).
    args:
        Structured payload; must be JSON-serializable.
    link:
        Optional :class:`~repro.obs.context.TraceContext` binding the
        event to a request: :meth:`to_chrome` folds its
        trace_id/span_id/parent_id into ``args``, which is how parent
        links survive into the exported trace (including events shipped
        back from worker processes).
    """

    name: str
    ph: str
    ts: float
    dur: float | None = None
    cat: str = ""
    pid: int = TracePid.HOST
    tid: int = 0
    args: dict | None = None
    link: TraceContext | None = None

    def to_chrome(self) -> dict:
        """The Chrome trace-event object for this record."""
        out: dict = {
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.cat:
            out["cat"] = self.cat
        if self.dur is not None:
            out["dur"] = self.dur
        if self.link is not None:
            args = dict(self.args) if self.args else {}
            args["trace_id"] = self.link.trace_id
            args["span_id"] = self.link.span_id
            if self.link.parent_id is not None:
                args["parent_id"] = self.link.parent_id
            out["args"] = args
        elif self.args is not None:
            out["args"] = self.args
        return out


def _wall_clock_us() -> float:
    return time.perf_counter_ns() / 1000.0


@dataclass
class Tracer:
    """An enabled tracer: appends :class:`TraceEvent` records to a list.

    Parameters
    ----------
    max_events:
        Ring-buffer bound; once reached, the oldest half of the buffer
        is discarded (keeping tracing O(1) amortized and memory
        bounded on pathological runs).  Generous by default: a full
        small-GPU simulation of 2^16 words emits a few thousand events.
        Discards are never silent: :attr:`dropped` counts every event
        lost this way, and the Chrome exporter annotates the trace with
        it (``otherData.dropped_events``) so a truncated timeline is
        visibly truncated.
    """

    max_events: int = 1_000_000
    events: list[TraceEvent] = field(default_factory=list)
    dropped: int = 0
    _clock: Callable[[], float] = field(default=_wall_clock_us, repr=False)
    _t0: float = field(default=0.0, repr=False)

    enabled = True

    def __post_init__(self) -> None:
        if self.max_events < 2:
            raise ValueError(f"max_events must be >= 2, got {self.max_events}")
        self._t0 = self._clock()

    # -- clock -----------------------------------------------------------
    def now(self) -> float:
        """The current timestamp in the active clock domain."""
        return self._clock() - self._t0

    @contextmanager
    def use_clock(self, clock: Callable[[], float]) -> Iterator[None]:
        """Temporarily time events with ``clock`` (zero-based, raw).

        The GPU simulator installs its scheduler-step counter here so
        that simulator timelines are deterministic for a fixed seed.
        """
        previous, previous_t0 = self._clock, self._t0
        self._clock, self._t0 = clock, 0.0
        try:
            yield
        finally:
            self._clock, self._t0 = previous, previous_t0

    # -- emission --------------------------------------------------------
    def _append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            discard = self.max_events // 2
            del self.events[:discard]
            self.dropped += discard
        self.events.append(event)

    def instant(
        self,
        name: str,
        *,
        cat: str = "",
        pid: int = TracePid.HOST,
        tid: int = 0,
        args: dict | None = None,
        ts: float | None = None,
        link: TraceContext | None = None,
    ) -> None:
        """Emit a point-in-time event (Chrome phase ``"i"``)."""
        self._append(
            TraceEvent(
                name=name,
                ph="i",
                ts=self.now() if ts is None else ts,
                cat=cat,
                pid=pid,
                tid=tid,
                args=args,
                link=link,
            )
        )

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        *,
        cat: str = "",
        pid: int = TracePid.HOST,
        tid: int = 0,
        args: dict | None = None,
        link: TraceContext | None = None,
    ) -> None:
        """Emit a complete span (Chrome phase ``"X"``) explicitly."""
        self._append(
            TraceEvent(
                name=name,
                ph="X",
                ts=ts,
                dur=max(dur, 0.0),
                cat=cat,
                pid=pid,
                tid=tid,
                args=args,
                link=link,
            )
        )

    def counter(
        self,
        name: str,
        values: dict,
        *,
        cat: str = "",
        pid: int = TracePid.HOST,
        tid: int = 0,
        ts: float | None = None,
    ) -> None:
        """Emit a counter sample (Chrome phase ``"C"``)."""
        self._append(
            TraceEvent(
                name=name,
                ph="C",
                ts=self.now() if ts is None else ts,
                cat=cat,
                pid=pid,
                tid=tid,
                args=dict(values),
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "",
        pid: int = TracePid.HOST,
        tid: int = 0,
        args: dict | None = None,
        link: TraceContext | None = None,
    ) -> Iterator[None]:
        """Time a ``with`` body as one complete span."""
        t0 = self.now()
        try:
            yield
        finally:
            self.complete(
                name, t0, self.now() - t0, cat=cat, pid=pid, tid=tid, args=args,
                link=link,
            )

    # -- inspection ------------------------------------------------------
    def tail(self, n: int, *, tid: int | None = None, pid: int | None = None) -> list[TraceEvent]:
        """The last ``n`` events, optionally filtered by tid/pid.

        Scans from the end of the buffer so deadlock forensics (which
        want "the last few things this block did") stay cheap even with
        large traces.
        """
        if tid is None and pid is None:
            return self.events[-n:]
        picked: list[TraceEvent] = []
        for event in reversed(self.events):
            if tid is not None and event.tid != tid:
                continue
            if pid is not None and event.pid != pid:
                continue
            picked.append(event)
            if len(picked) == n:
                break
        picked.reverse()
        return picked

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


class _NullSpan:
    """A reusable no-op context manager (no allocation per span)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every method is a no-op.

    Instrumented code never needs a None check — it holds a tracer
    either way — and the ``if tracer.enabled:`` guard lets hot paths
    skip even argument construction.
    """

    __slots__ = ()

    enabled = False
    events: tuple = ()
    dropped = 0

    def now(self) -> float:
        return 0.0

    @contextmanager
    def use_clock(self, clock: Callable[[], float]) -> Iterator[None]:
        yield

    def instant(self, *args, **kwargs) -> None:
        pass

    def complete(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def span(self, *args, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def tail(self, n: int, **kwargs) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
"""The shared disabled tracer; the default everywhere."""


def merge_worker_events(
    tracer: "Tracer | NullTracer",
    worker_index: int,
    events,
) -> None:
    """Fold a worker-local event buffer into the host tracer.

    Pool workers trace into their own fresh :class:`Tracer` (event lists
    cannot be shared across processes) and ship the events back with
    their result; the host re-appends them here with the pid remapped to
    the worker's row (:meth:`TracePid.worker`), so one Chrome trace
    shows the host spine plus one process lane per worker.  Worker
    clocks are fresh per task, so their timestamps are task-relative —
    fine for intra-worker ordering, which is what the lanes show.
    Trace-context links survive the remap verbatim: a worker span keeps
    the request trace_id/parent_id it was given, which is what stitches
    the cross-process request tree back together.
    """
    if not tracer.enabled:
        return
    pid = TracePid.worker(worker_index)
    for event in events:
        tracer._append(
            TraceEvent(
                name=event.name,
                ph=event.ph,
                ts=event.ts,
                dur=event.dur,
                cat=event.cat,
                pid=pid,
                tid=event.tid,
                args=event.args,
                link=event.link,
            )
        )


def coerce_tracer(value) -> Tracer | NullTracer:
    """Normalize ``trace=`` / ``tracer=`` arguments to a tracer.

    Accepts None/False (disabled), True (a fresh enabled tracer), or an
    existing :class:`Tracer`/:class:`NullTracer` instance.
    """
    if value is None or value is False:
        return NULL_TRACER
    if value is True:
        return Tracer()
    if isinstance(value, (Tracer, NullTracer)):
        return value
    raise TypeError(
        f"cannot interpret {value!r} as a tracer; pass None, bool, or a Tracer"
    )
