"""repro.obs — tracing, metrics, and pipeline profiling.

The observability layer for PLR runs: a zero-dependency structured
:class:`Tracer` (no-op by default, so hot paths cost nothing when
disabled), a :class:`MetricsRegistry` of counters/gauges/histograms,
exporters to Chrome trace-event JSON / metrics JSON / SVG timelines,
and :class:`PipelineProfile` — look-back depth distribution, per-chunk
stall time, and critical-path length of a simulated run.

See ``docs/observability.md`` for the span taxonomy and event schema.
"""

from repro.obs.context import (
    TraceContext,
    new_span_id,
    new_trace_id,
)
from repro.obs.exporters import (
    chrome_trace,
    metrics_json,
    prometheus_text,
    timeline_svg,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    global_metrics,
    reset_global_metrics,
)
from repro.obs.sampling import (
    SamplingPolicy,
    TraceLog,
)
from repro.obs.slo import (
    SLOConfig,
    SLOTracker,
)
from repro.obs.profile import (
    PipelineProfile,
    build_profile,
    profile_simulation,
    write_profile_json,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    TracePid,
    Tracer,
    coerce_tracer,
    merge_worker_events,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PipelineProfile",
    "SLOConfig",
    "SLOTracker",
    "SamplingPolicy",
    "TraceContext",
    "TraceEvent",
    "TraceLog",
    "TracePid",
    "Tracer",
    "build_profile",
    "chrome_trace",
    "coerce_tracer",
    "exponential_buckets",
    "global_metrics",
    "merge_worker_events",
    "metrics_json",
    "new_span_id",
    "new_trace_id",
    "profile_simulation",
    "prometheus_text",
    "reset_global_metrics",
    "timeline_svg",
    "write_chrome_trace",
    "write_metrics_json",
    "write_profile_json",
]
