"""Request-scoped trace context: ids that survive process boundaries.

A :class:`TraceContext` is the identity of one logical request as it
crosses the serving stack's four layers — asyncio server, batch
planner/engine, resilience chain, sharded worker processes.  It is
deliberately tiny and wire-friendly:

* ``trace_id`` — one per logical request; every span belonging to the
  request carries it, no matter which process emitted the span.
* ``span_id`` — one per span; the value a *child* span names as its
  parent.
* ``parent_id`` — the span_id of the parent span, or None for a root.
* ``sampled`` — the head-sampling decision, made once at the root and
  inherited by every child (see :mod:`repro.obs.sampling`).

Propagation is by value: :meth:`TraceContext.child` derives the context
for a sub-operation (fresh span_id, parent set to the current span),
and :meth:`to_wire` / :meth:`from_wire` round-trip through the JSON
dicts that cross sockets and ``multiprocessing`` pickles.  The tracer
attaches a context to an event via the ``link=`` keyword, and
:meth:`TraceEvent.to_chrome` folds it into ``args`` so Perfetto shows
``trace_id`` / ``span_id`` / ``parent_id`` on every span — walking
parent links reconstructs the request tree even across process lanes.

Clients may supply their own trace id in the ``{"trace": ...}`` request
field (see ``docs/serving.md``); anything else is minted here with
:func:`new_trace_id` / :func:`new_span_id` (cryptographically random,
collision-safe across processes with no coordination).
"""

from __future__ import annotations

import re
import secrets
from dataclasses import dataclass, replace

__all__ = [
    "TraceContext",
    "is_valid_id",
    "new_span_id",
    "new_trace_id",
]

_ID_RE = re.compile(r"^[0-9a-f]{1,64}$")
"""Wire-format ids: lowercase hex, bounded (W3C traceparent uses 32/16)."""


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return secrets.token_hex(8)


def is_valid_id(value) -> bool:
    """True iff ``value`` is a wire-legal trace/span id."""
    return isinstance(value, str) and _ID_RE.match(value) is not None


def _validate_id(value, *, what: str) -> str:
    if not isinstance(value, str) or not _ID_RE.match(value):
        raise ValueError(
            f"{what} must be 1-64 lowercase hex chars, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class TraceContext:
    """The identity of one request: (trace_id, span_id, parent_id)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    sampled: bool = True

    # -- construction ----------------------------------------------------
    @classmethod
    def new(cls, *, trace_id: str | None = None, sampled: bool = True) -> "TraceContext":
        """A root context: fresh span, no parent.

        ``trace_id`` lets a client-supplied id (already validated by the
        protocol layer) name the trace; otherwise one is minted.
        """
        return cls(
            trace_id=trace_id if trace_id is not None else new_trace_id(),
            span_id=new_span_id(),
            parent_id=None,
            sampled=sampled,
        )

    def child(self) -> "TraceContext":
        """The context for a sub-operation: same trace, fresh span,
        parented to this span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=self.span_id,
            sampled=self.sampled,
        )

    def with_sampled(self, sampled: bool) -> "TraceContext":
        return replace(self, sampled=sampled)

    # -- wire form -------------------------------------------------------
    def to_wire(self) -> dict:
        """The JSON/pickle-safe dict form (crosses sockets and pools)."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if not self.sampled:
            out["sampled"] = False
        return out

    @classmethod
    def from_wire(cls, data: dict) -> "TraceContext":
        """Parse and validate a :meth:`to_wire` dict (raises ValueError)."""
        if not isinstance(data, dict):
            raise ValueError(f"trace context must be an object, got {type(data).__name__}")
        trace_id = _validate_id(data.get("trace_id"), what="trace_id")
        span_id = _validate_id(data.get("span_id"), what="span_id")
        parent_id = data.get("parent_id")
        if parent_id is not None:
            parent_id = _validate_id(parent_id, what="parent_id")
        sampled = data.get("sampled", True)
        if not isinstance(sampled, bool):
            raise ValueError(f"sampled must be a bool, got {sampled!r}")
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent_id, sampled=sampled)
