"""Pipeline profiling: where the simulated cycles of a PLR run went.

A :class:`PipelineProfile` condenses one traced simulator run into the
quantities the paper's Phase 2 analysis is built on:

* the **look-back depth distribution** — how far back each chunk had to
  reach for a published global carry (the decoupled-look-back win over
  serial chunk-by-chunk carry propagation is exactly this distribution
  staying near 1 while never *requiring* the immediate predecessor);
* **stall time per chunk** — how many scheduler steps each chunk spent
  busy-waiting on predecessor flags;
* the **critical-path length** — the longest chain of sequential
  global-carry publications, i.e. the depth of the carry dependence DAG
  actually realized by the schedule (num_chunks for a serial carry
  chain; much smaller when look-back hops over in-flight predecessors).

Profiles are pure data derived from :class:`~repro.obs.tracer.Tracer`
events, so they are deterministic for a fixed scheduler seed and
trivially serializable (:meth:`PipelineProfile.to_json`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "PipelineProfile",
    "build_profile",
    "profile_simulation",
    "write_profile_json",
]


@dataclass
class PipelineProfile:
    """Aggregated Phase 1/Phase 2 behaviour of one simulated run."""

    signature: str = ""
    n: int = 0
    chunk_size: int = 0
    num_chunks: int = 0
    schedule_steps: int = 0
    schedule_wait_steps: int = 0
    restarts: int = 0
    lookback_histogram: dict[int, int] = field(default_factory=dict)
    stall_steps_per_chunk: dict[int, int] = field(default_factory=dict)
    chunk_spans: dict[int, tuple[float, float]] = field(default_factory=dict)
    critical_path_length: int = 0
    metrics: dict | None = None

    # -- derived ---------------------------------------------------------
    @property
    def lookback_count(self) -> int:
        return sum(self.lookback_histogram.values())

    @property
    def mean_lookback(self) -> float:
        count = self.lookback_count
        if not count:
            return 0.0
        return (
            sum(d * c for d, c in self.lookback_histogram.items()) / count
        )

    @property
    def max_lookback(self) -> int:
        return max(self.lookback_histogram, default=0)

    @property
    def total_stall_steps(self) -> int:
        return sum(self.stall_steps_per_chunk.values())

    @property
    def max_stall_chunk(self) -> tuple[int, int] | None:
        """(chunk id, stall steps) of the worst-stalled chunk, if any."""
        if not self.stall_steps_per_chunk:
            return None
        chunk = max(self.stall_steps_per_chunk, key=self.stall_steps_per_chunk.get)
        return chunk, self.stall_steps_per_chunk[chunk]

    # -- serialization / rendering --------------------------------------
    def to_json(self) -> dict:
        return {
            "signature": self.signature,
            "n": self.n,
            "chunk_size": self.chunk_size,
            "num_chunks": self.num_chunks,
            "schedule_steps": self.schedule_steps,
            "schedule_wait_steps": self.schedule_wait_steps,
            "restarts": self.restarts,
            "lookback_histogram": {str(k): v for k, v in sorted(self.lookback_histogram.items())},
            "mean_lookback": self.mean_lookback,
            "max_lookback": self.max_lookback,
            "stall_steps_per_chunk": {
                str(k): v for k, v in sorted(self.stall_steps_per_chunk.items())
            },
            "total_stall_steps": self.total_stall_steps,
            "critical_path_length": self.critical_path_length,
            "metrics": self.metrics,
        }

    def describe(self) -> str:
        """The human-readable report ``plr profile`` prints."""
        lines = [
            f"signature        {self.signature}",
            f"input            n={self.n}  m={self.chunk_size}  "
            f"chunks={self.num_chunks}",
            f"schedule         {self.schedule_steps} steps, "
            f"{self.schedule_wait_steps} busy-wait"
            + (f", {self.restarts} restarts" if self.restarts else ""),
        ]
        if self.lookback_histogram:
            histogram = "  ".join(
                f"{distance}:{count}"
                for distance, count in sorted(self.lookback_histogram.items())
            )
            lines.append(
                f"look-back        mean={self.mean_lookback:.2f} "
                f"max={self.max_lookback}  (distance:count  {histogram})"
            )
        lines.append(
            f"critical path    {self.critical_path_length} sequential "
            f"carry publications (serial would be {max(self.num_chunks, 1)})"
        )
        if self.stall_steps_per_chunk:
            worst = self.max_stall_chunk
            lines.append(
                f"stall            {self.total_stall_steps} total spin steps; "
                f"worst chunk {worst[0]} spun {worst[1]} steps"
            )
        else:
            lines.append("stall            no chunk ever busy-waited")
        return "\n".join(lines)


def build_profile(
    events,
    *,
    signature: str = "",
    n: int = 0,
    chunk_size: int = 0,
    num_chunks: int = 0,
    schedule_steps: int = 0,
    schedule_wait_steps: int = 0,
    restarts: int = 0,
    metrics: dict | None = None,
) -> PipelineProfile:
    """Derive a :class:`PipelineProfile` from trace events.

    Consumes four event shapes (see ``docs/observability.md``):
    ``lookback`` instants with ``args={chunk, base, distance}``,
    ``lookback_summary`` instants with ``args={first_chunk, chunks,
    distance}`` (one record standing for a run of sequential chunk
    resolutions — what :func:`repro.plr.phase2.phase2` emits above its
    chunk-count threshold), ``spin`` instants (one per busy-wait
    scheduler step, tid = chunk), and ``chunk`` complete-spans (block
    lifecycle, tid = chunk).  A chunk that ran twice (abort/restart)
    counts its *last* look-back resolution, matching what actually fed
    the published carries.
    """
    lookback_of: dict[int, tuple[int, int]] = {}  # chunk -> (base, distance)
    histogram: dict[int, int] = {}
    stalls: dict[int, int] = {}
    spans: dict[int, tuple[float, float]] = {}
    summary_critical = 0
    for event in events:
        if event.name == "lookback" and event.args:
            chunk = int(event.args["chunk"])
            lookback_of[chunk] = (
                int(event.args["base"]),
                int(event.args["distance"]),
            )
        elif event.name == "lookback_summary" and event.args:
            count = int(event.args["chunks"])
            distance = int(event.args["distance"])
            histogram[distance] = histogram.get(distance, 0) + count
            # A summarized run is a serial spine: `count` sequential
            # resolutions on top of the unconditional first chunk.
            summary_critical = max(
                summary_critical, int(event.args["first_chunk"]) + count
            )
        elif event.name == "spin":
            stalls[event.tid] = stalls.get(event.tid, 0) + 1
        elif event.name == "chunk" and event.ph == "X":
            spans[event.tid] = (event.ts, event.ts + (event.dur or 0.0))
    for base, distance in lookback_of.values():
        histogram[distance] = histogram.get(distance, 0) + 1

    # Carry-dependence depth: chunk 0 publishes unconditionally (depth
    # 1); chunk c publishes one hop after its look-back base.  The
    # intervening chunks contribute only Phase 1 locals, which have no
    # publication ancestry — that is the decoupling the paper exploits.
    depth: dict[int, int] = {}

    def depth_of(chunk: int) -> int:
        cached = depth.get(chunk)
        if cached is not None:
            return cached
        resolution = lookback_of.get(chunk)
        value = 1 if resolution is None else depth_of(resolution[0]) + 1
        depth[chunk] = value
        return value

    critical = max(
        (depth_of(c) for c in lookback_of), default=1 if num_chunks else 0
    )
    critical = max(critical, summary_critical)

    return PipelineProfile(
        signature=signature,
        n=n,
        chunk_size=chunk_size,
        num_chunks=num_chunks,
        schedule_steps=schedule_steps,
        schedule_wait_steps=schedule_wait_steps,
        restarts=restarts,
        lookback_histogram=histogram,
        stall_steps_per_chunk=stalls,
        chunk_spans=spans,
        critical_path_length=critical,
        metrics=metrics,
    )


def profile_simulation(
    recurrence,
    n: int,
    *,
    machine=None,
    seed: int = 0,
    values=None,
    fault=None,
):
    """Run one traced simulation and profile it.

    Returns ``(profile, tracer, metrics, result)``.  Deterministic for a
    fixed ``seed``: the simulator timestamps events with its logical
    scheduler clock, so two runs with the same seed produce identical
    traces, histograms, and stall tables.
    """
    # Imported here: obs is a leaf package that gpusim itself imports.
    import numpy as np

    from repro.core.recurrence import Recurrence
    from repro.gpusim.executor import SimulatedPLR
    from repro.gpusim.spec import MachineSpec
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

    if isinstance(recurrence, str):
        recurrence = Recurrence.parse(recurrence)
    machine = machine or MachineSpec.small_test_gpu()
    if values is None:
        rng = np.random.default_rng(seed)
        if recurrence.is_integer:
            values = rng.integers(-100, 100, size=n).astype(np.int32)
        else:
            values = rng.standard_normal(n).astype(np.float32)

    tracer = Tracer()
    metrics = MetricsRegistry()
    sim = SimulatedPLR(
        recurrence,
        machine,
        seed=seed,
        fault=fault,
        tracer=tracer,
        metrics=metrics,
        track_l2=True,
    )
    result = sim.run(values)
    m = (sim.block_size or machine.max_threads_per_block) * sim.values_per_thread
    profile = build_profile(
        tracer.events,
        signature=str(recurrence.signature),
        n=int(values.size),
        chunk_size=m,
        num_chunks=-(-int(values.size) // m),
        schedule_steps=result.schedule_steps,
        schedule_wait_steps=result.schedule_wait_steps,
        restarts=result.restarts,
        metrics=metrics.snapshot(),
    )
    return profile, tracer, metrics, result


def _json_default(value):
    raise TypeError(f"not JSON serializable: {value!r}")


def write_profile_json(profile: PipelineProfile, path) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(profile.to_json(), handle, indent=1, default=_json_default)
    return path
