"""Functional execution of the PLR kernel on the GPU machine model.

This module ties the levels together and runs the paper's generated
kernel end to end (Section 3's eight code sections):

1. correction-factor constant arrays    -> CorrectionFactorTable
2. atomic chunk-id acquisition          -> AtomicCounter
3. the FIR map stage                    -> in-register map
4. Phase 1 via shuffles + shared memory -> block_phase1
5. local-carry publication: write, *memory fence*, set flag
6. variable look-back: busy-wait for a global-carry flag within
   distance 32 plus all later local-carry flags; combine through the
   carry-transition matrix; publish own global carries
7. chunk correction and result write-out
8. (the multiple-x kernel selection lives in the planner/compiler)

The simulator is *functional + event-ordered*, not cycle-accurate: it
enforces protocol correctness (flags must be set before carries are
read — a violation raises), resource limits (shared-memory budget,
bounded residency), and the hierarchy (shuffles cannot cross warps),
under adversarial block interleavings.  Data values are computed with
exact numpy arithmetic, so results validate against the serial
reference like any other solver.

The memory-fence modeling: the simulator gives each block's writes
sequential visibility (Python executes them in order), so the fence is
represented by *ordering assertions* — flags are written strictly after
the carries they guard, and reads check the flag first.

Fault injection is composable: pass a
:class:`~repro.gpusim.faults.FaultPlan` (or a legacy
:class:`ProtocolFault`) as ``fault`` and the executor corrupts the
protocol at the corresponding points — delayed flag visibility, dropped
publications, stale reads, carry bit-flips, and block abort-and-restart
(the aborted chunk id is recycled through the atomic counter and the
scheduler reissues the block).  Busy-waiting blocks report structured
:class:`~repro.gpusim.scheduler.WaitInfo` records, so a stuck grid
raises :class:`~repro.core.errors.DeadlockError` with forensics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import SimulationError
from repro.core.recurrence import Recurrence
from repro.core.reference import resolve_dtype
from repro.gpusim.block import BlockStats, ThreadBlock, block_phase1
from repro.gpusim.faults import FaultEvent, FaultKind, FaultPlan, FaultSpec, flip_bit
from repro.gpusim.l2cache import L2Cache
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.scheduler import (
    AtomicCounter,
    BlockYield,
    GridScheduler,
    WaitInfo,
)
from repro.gpusim.spec import MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TracePid, coerce_tracer
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase2 import transition_matrix

__all__ = ["ProtocolFault", "KernelRunResult", "SimulatedPLR"]

_FLAG_EMPTY = 0
_FLAG_LOCAL_READY = 1
_FLAG_GLOBAL_READY = 2


class ProtocolFault(enum.Enum):
    """Legacy single-fault presets, kept as shorthand for common plans.

    Each value maps onto a :class:`~repro.gpusim.faults.FaultPlan` via
    :meth:`to_plan`; the composable plans subsume these presets.
    """

    NONE = "none"
    FLAG_BEFORE_DATA = "flag_before_data"  # set ready flag before carries
    SKIP_LOCAL_FLAG = "skip_local_flag"  # local carries never flagged; the
    # protocol survives (successors fall back to the global flag) at the
    # cost of pipelining — a useful liveness property to test
    NEVER_PUBLISH = "never_publish"  # neither flag is ever set: successors
    # can never make progress and the scheduler must report deadlock

    def to_plan(self) -> FaultPlan:
        """The equivalent composable fault plan."""
        if self is ProtocolFault.NONE:
            return FaultPlan.none()
        if self is ProtocolFault.FLAG_BEFORE_DATA:
            return FaultPlan.single(FaultKind.DELAY_FLAG, window=4)
        if self is ProtocolFault.SKIP_LOCAL_FLAG:
            return FaultPlan.single(FaultKind.DROP_LOCAL_FLAG)
        return FaultPlan(
            specs=(
                FaultSpec(kind=FaultKind.DROP_LOCAL_FLAG),
                FaultSpec(kind=FaultKind.DROP_GLOBAL_FLAG),
            )
        )


def coerce_fault_plan(fault) -> FaultPlan:
    """Normalize ``SimulatedPLR.fault`` inputs to a :class:`FaultPlan`.

    Accepts None, a :class:`FaultPlan`, a :class:`ProtocolFault`, a
    :class:`~repro.gpusim.faults.FaultKind`, a bare
    :class:`~repro.gpusim.faults.FaultSpec`, or the string name of
    either a legacy preset or a fault kind.
    """
    if isinstance(fault, ProtocolFault):
        return fault.to_plan()
    if isinstance(fault, str):
        try:
            return ProtocolFault(fault).to_plan()
        except ValueError:
            pass
    return FaultPlan.coerce(fault)


@dataclass
class KernelRunResult:
    """Everything a simulated kernel run produced."""

    output: np.ndarray
    block_stats: list[BlockStats]
    lookback_distances: list[int]
    schedule_steps: int
    schedule_wait_steps: int
    l2: L2Cache | None
    device_memory_bytes: int
    fault_events: list[FaultEvent] = field(default_factory=list)
    restarts: int = 0
    metrics: MetricsRegistry | None = None

    @property
    def max_lookback(self) -> int:
        return max(self.lookback_distances, default=0)


@dataclass
class SimulatedPLR:
    """Run the PLR kernel for a recurrence on a simulated GPU.

    Use :meth:`run`.  Sized for small machines
    (:meth:`MachineSpec.small_test_gpu`) where the full protocol runs in
    milliseconds; the numpy :class:`~repro.plr.solver.PLRSolver` is the
    fast path for large inputs.
    """

    recurrence: Recurrence
    machine: MachineSpec
    block_size: int | None = None
    values_per_thread: int = 1
    seed: int = 0
    max_lookback: int = 32
    fault: ProtocolFault | FaultPlan | FaultKind | str | None = ProtocolFault.NONE
    track_l2: bool = False
    paranoid_flag_checks: bool = True
    deadlock_rounds: int = 1000
    tracer: object | None = None
    """A :class:`~repro.obs.tracer.Tracer` (or True for a fresh one)
    receiving the protocol's event stream — block lifecycle, warp
    merges, flag publications, fences, spin waits, look-back
    resolutions, L2 counters, fired faults.  Event timestamps use the
    scheduler's *step counter*, so traces are deterministic for a fixed
    scheduler seed.  None (the default) traces nothing at zero cost."""
    metrics: MetricsRegistry | None = None
    """Registry for aggregate counters/histograms of the run; a fresh
    one is created per run when None.  Exposed on
    :attr:`KernelRunResult.metrics` either way."""

    def run(self, values: np.ndarray) -> KernelRunResult:
        values = np.asarray(values)
        if values.ndim != 1 or values.size == 0:
            raise SimulationError("need a non-empty 1D input")
        dtype = resolve_dtype(self.recurrence.signature, values.dtype)
        block_size = self.block_size or self.machine.max_threads_per_block
        m = block_size * self.values_per_thread
        n = values.size
        num_chunks = -(-n // m)

        work = values.astype(dtype, copy=False)
        if self.recurrence.has_map_stage:
            work = self.recurrence.apply_map_stage(work)
        padded = np.zeros(num_chunks * m, dtype=dtype)
        padded[:n] = work

        table = CorrectionFactorTable.build(
            self.recurrence.recursive_signature, m, dtype
        )
        matrix = transition_matrix(table)
        k = table.order

        device = DeviceMemory(self.machine)
        in_buf = device.alloc("input", padded.nbytes)
        out_buf = device.alloc("output", padded.nbytes)
        device.alloc("local_carries", num_chunks * k * padded.itemsize)
        device.alloc("global_carries", num_chunks * k * padded.itemsize)
        device.alloc("flags", num_chunks * 4)
        device.alloc("chunk_counter", 4)
        del in_buf, out_buf

        output = np.zeros_like(padded)
        local_carries = np.zeros((num_chunks, k), dtype=dtype)
        global_carries = np.zeros((num_chunks, k), dtype=dtype)
        flags = np.zeros(num_chunks, dtype=np.int32)
        counter = AtomicCounter()
        l2 = L2Cache.for_machine(self.machine) if self.track_l2 else None
        faults = coerce_fault_plan(self.fault).engine()

        tracer = coerce_tracer(self.tracer)
        metrics = self.metrics if self.metrics is not None else MetricsRegistry()
        # The scheduler exists before any block body so its step counter
        # can serve as the trace clock: every event is stamped with the
        # logical time of the interleaving, making traces byte-identical
        # across runs with the same seed.
        scheduler = GridScheduler(
            max_resident=min(self.machine.resident_blocks(block_size), num_chunks),
            seed=self.seed,
            deadlock_rounds=self.deadlock_rounds,
            tracer=tracer,
        )

        block_stats: list[BlockStats] = []
        lookback_distances: list[int] = []
        factors = table.factors

        def fire_traced(kind: FaultKind, chunk_id: int, detail: str = ""):
            spec = faults.fire(kind, chunk_id, detail)
            if spec is not None:
                metrics.counter("sim.faults_fired").inc()
                if tracer.enabled:
                    tracer.instant(
                        "fault:" + kind.value,
                        cat="fault",
                        pid=TracePid.SIM,
                        tid=chunk_id,
                        args={"chunk": chunk_id, "detail": detail},
                    )
            return spec

        def read_global(base: int, nbytes: int, chunk_id: int = 0) -> None:
            if l2 is not None:
                l2.read(base, nbytes)
                if tracer.enabled:
                    tracer.counter(
                        "l2",
                        {
                            "read_hits": l2.read_hits,
                            "read_misses": l2.read_misses,
                        },
                        cat="l2",
                        pid=TracePid.SIM,
                        tid=chunk_id,
                    )

        def write_global(base: int, nbytes: int, chunk_id: int = 0) -> None:
            if l2 is not None:
                l2.write(base, nbytes)
                if tracer.enabled:
                    tracer.counter(
                        "l2",
                        {
                            "write_hits": l2.write_hits,
                            "write_misses": l2.write_misses,
                        },
                        cat="l2",
                        pid=TracePid.SIM,
                        tid=chunk_id,
                    )

        itemsize = padded.itemsize

        def make_block():
            def body():
                # Section 2: atomically acquire a chunk id and load it.
                chunk_id = counter.fetch_increment()
                t_acquire = tracer.now() if tracer.enabled else 0.0
                if tracer.enabled:
                    tracer.instant(
                        "acquire",
                        cat="block",
                        pid=TracePid.SIM,
                        tid=chunk_id,
                        args={"chunk": chunk_id},
                    )
                metrics.counter("sim.blocks_started").inc()
                base = chunk_id * m
                read_global(base * itemsize, m * itemsize, chunk_id)
                tb = ThreadBlock.create(
                    padded[base : base + m],
                    block_size,
                    self.machine.warp_size,
                    self.machine.shared_memory_per_block,
                )
                yield BlockYield.PROGRESS
                if fire_traced(FaultKind.ABORT_RESTART, chunk_id, "after load"):
                    counter.release(chunk_id)
                    if tracer.enabled:
                        tracer.complete(
                            "chunk",
                            t_acquire,
                            tracer.now() - t_acquire,
                            cat="block",
                            pid=TracePid.SIM,
                            tid=chunk_id,
                            args={"chunk": chunk_id, "aborted": True},
                        )
                    yield BlockYield.ABORTED
                    return

                # Section 4: Phase 1 inside the block.
                block_phase1(tb, table, tracer=tracer, tid=chunk_id)
                chunk = tb.values()
                if tracer.enabled:
                    tracer.instant(
                        "phase1",
                        cat="phase1",
                        pid=TracePid.SIM,
                        tid=chunk_id,
                        args={
                            "shuffles": tb.stats.shuffles,
                            "shared_reads": tb.stats.shared_reads,
                            "shared_writes": tb.stats.shared_writes,
                            "barriers": tb.stats.barriers,
                        },
                    )
                yield BlockYield.PROGRESS

                # Section 5: publish local carries, fence, set flag.
                mine_local = chunk[m - k :][::-1].copy()
                if not fire_traced(FaultKind.DROP_LOCAL_FLAG, chunk_id):
                    local_carries[chunk_id] = mine_local
                    # -- memory fence: data strictly before flag --
                    if tracer.enabled:
                        tracer.instant(
                            "fence",
                            cat="fence",
                            pid=TracePid.SIM,
                            tid=chunk_id,
                            args={"guards": "local"},
                        )
                        tracer.instant(
                            "publish_local",
                            cat="flag",
                            pid=TracePid.SIM,
                            tid=chunk_id,
                        )
                    metrics.counter("sim.fences").inc()
                    flags[chunk_id] = max(flags[chunk_id], _FLAG_LOCAL_READY)
                write_global(
                    (padded.nbytes) + chunk_id * k * itemsize, k * itemsize, chunk_id
                )
                yield BlockYield.PROGRESS
                if fire_traced(FaultKind.ABORT_RESTART, chunk_id, "after local publish"):
                    counter.release(chunk_id)
                    if tracer.enabled:
                        tracer.complete(
                            "chunk",
                            t_acquire,
                            tracer.now() - t_acquire,
                            cat="block",
                            pid=TracePid.SIM,
                            tid=chunk_id,
                            args={"chunk": chunk_id, "aborted": True},
                        )
                    yield BlockYield.ABORTED
                    return

                # Section 6: variable look-back for the carries.
                if chunk_id == 0:
                    prev_global = np.zeros(k, dtype=dtype)
                else:
                    while True:
                        lo = max(0, chunk_id - self.max_lookback)
                        base_idx = -1
                        for c in range(chunk_id - 1, lo - 1, -1):
                            if flags[c] >= _FLAG_GLOBAL_READY:
                                base_idx = c
                                break
                        if base_idx >= 0:
                            missing = tuple(
                                c
                                for c in range(base_idx + 1, chunk_id)
                                if flags[c] < _FLAG_LOCAL_READY
                            )
                            if not missing:
                                break
                            metrics.counter("sim.spin_steps").inc()
                            if tracer.enabled:
                                tracer.instant(
                                    "spin",
                                    cat="phase2",
                                    pid=TracePid.SIM,
                                    tid=chunk_id,
                                    args={
                                        "waiting_for": "local",
                                        "base": base_idx,
                                        "blocked_on": len(missing),
                                    },
                                )
                            yield WaitInfo(
                                chunk_id=chunk_id,
                                waiting_for="local",
                                lookback_lo=lo,
                                base_chunk=base_idx,
                                blocked_on=missing,
                                lookback_distance=chunk_id - base_idx,
                            )
                        else:
                            metrics.counter("sim.spin_steps").inc()
                            if tracer.enabled:
                                tracer.instant(
                                    "spin",
                                    cat="phase2",
                                    pid=TracePid.SIM,
                                    tid=chunk_id,
                                    args={
                                        "waiting_for": "global",
                                        "base": None,
                                        "blocked_on": chunk_id - lo,
                                    },
                                )
                            yield WaitInfo(
                                chunk_id=chunk_id,
                                waiting_for="global",
                                lookback_lo=lo,
                                base_chunk=None,
                                blocked_on=tuple(range(lo, chunk_id)),
                                lookback_distance=None,
                            )
                    lookback_distances.append(chunk_id - base_idx)
                    metrics.histogram("sim.lookback_distance").observe(
                        chunk_id - base_idx
                    )
                    if tracer.enabled:
                        tracer.instant(
                            "lookback",
                            cat="phase2",
                            pid=TracePid.SIM,
                            tid=chunk_id,
                            args={
                                "chunk": chunk_id,
                                "base": base_idx,
                                "distance": chunk_id - base_idx,
                            },
                        )
                    if self.paranoid_flag_checks and flags[base_idx] < _FLAG_GLOBAL_READY:
                        raise SimulationError(
                            f"chunk {chunk_id} read global carries of {base_idx} "
                            "without a ready flag"
                        )
                    if fire_traced(FaultKind.STALE_CARRY, chunk_id, f"base {base_idx}"):
                        # The flag is correct but the cached data is not:
                        # the reader observes the pre-publication zeros.
                        carries = np.zeros(k, dtype=dtype)
                    else:
                        carries = global_carries[base_idx].copy()
                    read_global(
                        2 * padded.nbytes + base_idx * k * itemsize,
                        k * itemsize,
                        chunk_id,
                    )
                    for c in range(base_idx + 1, chunk_id):
                        if self.paranoid_flag_checks and flags[c] < _FLAG_LOCAL_READY:
                            raise SimulationError(
                                f"chunk {chunk_id} read local carries of {c} "
                                "without a ready flag"
                            )
                        read_global(
                            padded.nbytes + c * k * itemsize, k * itemsize, chunk_id
                        )
                        carries = local_carries[c] + matrix @ carries
                    prev_global = carries
                # Own global carries = own locals corrected by prev_global,
                # published before the bulk correction (code section 6).
                mine_global = mine_local + matrix @ prev_global if chunk_id else mine_local
                flip = fire_traced(FaultKind.BIT_FLIP_CARRY, chunk_id)
                if flip:
                    mine_global = flip_bit(mine_global, flip.bit)
                delay = fire_traced(FaultKind.DELAY_FLAG, chunk_id)
                if fire_traced(FaultKind.DROP_GLOBAL_FLAG, chunk_id):
                    pass  # carries and flag never become visible
                elif delay:
                    # Broken protocol: the ready flag becomes visible while
                    # the carry stores are still in flight.  Without the
                    # fence, hardware gives the stores no visibility order;
                    # the extra yields model that delay window, during which
                    # successors read stale (zero) global carries.
                    flags[chunk_id] = _FLAG_GLOBAL_READY
                    for _ in range(delay.window):
                        yield BlockYield.PROGRESS
                    global_carries[chunk_id] = mine_global
                else:
                    global_carries[chunk_id] = mine_global
                    # -- memory fence: data strictly before flag --
                    if tracer.enabled:
                        tracer.instant(
                            "fence",
                            cat="fence",
                            pid=TracePid.SIM,
                            tid=chunk_id,
                            args={"guards": "global"},
                        )
                        tracer.instant(
                            "publish_global",
                            cat="flag",
                            pid=TracePid.SIM,
                            tid=chunk_id,
                        )
                    metrics.counter("sim.fences").inc()
                    flags[chunk_id] = _FLAG_GLOBAL_READY
                write_global(
                    2 * padded.nbytes + chunk_id * k * itemsize, k * itemsize, chunk_id
                )
                yield BlockYield.PROGRESS

                # Section 7: correct the chunk and write results.
                if chunk_id > 0:
                    for j in range(k):
                        chunk += factors[j] * prev_global[j]
                output[base : base + m] = chunk
                write_global(base * itemsize, m * itemsize, chunk_id)
                block_stats.append(tb.stats)
                metrics.counter("sim.blocks_completed").inc()
                if tracer.enabled:
                    tracer.complete(
                        "chunk",
                        t_acquire,
                        tracer.now() - t_acquire,
                        cat="block",
                        pid=TracePid.SIM,
                        tid=chunk_id,
                        args={"chunk": chunk_id},
                    )

            return body()

        with tracer.use_clock(lambda: float(scheduler.stats.steps)):
            stats = scheduler.run([make_block for _ in range(num_chunks)])

        metrics.gauge("sim.schedule_steps").set(stats.steps)
        metrics.gauge("sim.schedule_wait_steps").set(stats.wait_steps)
        metrics.gauge("sim.restarts").set(stats.restarts)
        metrics.gauge("sim.max_resident").set(stats.max_resident)
        if l2 is not None:
            metrics.gauge("sim.l2.read_hits").set(l2.read_hits)
            metrics.gauge("sim.l2.read_misses").set(l2.read_misses)
            metrics.gauge("sim.l2.write_hits").set(l2.write_hits)
            metrics.gauge("sim.l2.write_misses").set(l2.write_misses)

        return KernelRunResult(
            output=output[:n],
            block_stats=block_stats,
            lookback_distances=lookback_distances,
            schedule_steps=stats.steps,
            schedule_wait_steps=stats.wait_steps,
            l2=l2,
            device_memory_bytes=device.total_bytes,
            fault_events=list(faults.events),
            restarts=stats.restarts,
            metrics=metrics,
        )
