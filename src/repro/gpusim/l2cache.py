"""An L2 cache model (the nvprof side of Table 3).

Two granularities, used for two different jobs:

* :class:`L2Cache` — a real set-associative, LRU, 32-byte-line cache
  simulator.  The functional GPU executor drives it access by access at
  small scale; tests use it to demonstrate the *mechanism* behind Table
  3 (a second sequential pass over a working set larger than the cache
  misses all over again, while a pass over a cached working set does
  not).
* :class:`AccessStreamSummary` — closed-form miss accounting for full
  2^26-word runs, where per-access simulation would take hours in
  Python.  Sequential streaming reads over ``B`` bytes that are not
  resident cost ``ceil(B / line)`` cold misses; re-reads miss again iff
  the stream exceeds the cache capacity.  These are exactly the two
  effects the paper's Table 3 analysis invokes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.spec import MachineSpec

__all__ = ["L2Cache", "AccessStreamSummary"]


@dataclass
class L2Cache:
    """Set-associative LRU cache with miss counting.

    Addresses are byte addresses; every access touches one line (the
    GPU coalescer has already merged per-thread accesses into 32-byte
    sectors, which is also the unit nvprof reports and the paper
    multiplies its miss counts by).
    """

    capacity_bytes: int
    line_bytes: int = 32
    associativity: int = 8
    read_misses: int = 0
    read_hits: int = 0
    write_misses: int = 0
    write_hits: int = 0
    # sets[i] maps line tag -> last-use tick, per set.
    _sets: list[dict[int, int]] = field(default_factory=list, repr=False)
    _tick: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "capacity must be a multiple of line_bytes * associativity"
            )
        self.num_sets = self.capacity_bytes // (self.line_bytes * self.associativity)
        self._sets = [dict() for _ in range(self.num_sets)]

    @classmethod
    def for_machine(cls, machine: MachineSpec) -> "L2Cache":
        return cls(machine.l2_cache_bytes, machine.l2_line_bytes)

    # ------------------------------------------------------------------
    def _touch(self, address: int, is_read: bool) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.num_sets
        cache_set = self._sets[index]
        self._tick += 1
        if line in cache_set:
            cache_set[line] = self._tick
            return True
        if len(cache_set) >= self.associativity:
            victim = min(cache_set, key=cache_set.__getitem__)
            del cache_set[victim]
        cache_set[line] = self._tick
        return False

    def read(self, address: int, nbytes: int = 4) -> None:
        """A coalesced read of ``nbytes`` starting at ``address``."""
        first = address // self.line_bytes
        last = (address + max(nbytes, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            if self._touch(line * self.line_bytes, is_read=True):
                self.read_hits += 1
            else:
                self.read_misses += 1

    def write(self, address: int, nbytes: int = 4) -> None:
        """A coalesced write (write-allocate, like the Maxwell L2)."""
        first = address // self.line_bytes
        last = (address + max(nbytes, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            if self._touch(line * self.line_bytes, is_read=False):
                self.write_hits += 1
            else:
                self.write_misses += 1

    # ------------------------------------------------------------------
    @property
    def read_miss_bytes(self) -> int:
        """Misses in bytes, the unit Table 3 reports (misses * 32 B)."""
        return self.read_misses * self.line_bytes

    @property
    def read_hit_rate(self) -> float:
        """Fraction of read accesses served from the cache (0 if idle)."""
        accesses = self.read_hits + self.read_misses
        return self.read_hits / accesses if accesses else 0.0

    def counters(self) -> dict[str, int]:
        """The four access counters as a plain dict (metrics/exporters)."""
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
        }

    def reset_counters(self) -> None:
        self.read_misses = self.read_hits = 0
        self.write_misses = self.write_hits = 0


@dataclass
class AccessStreamSummary:
    """Closed-form read-miss accounting for streaming access patterns.

    Algorithms declare their read passes; the summary converts them to
    L2 read-miss bytes the way the paper's own analysis does:

    * a first (cold) pass over B bytes misses on every 32-byte line;
    * a repeated pass misses again only when the interleaved working
      set exceeded the L2 capacity since the previous pass;
    * small structures re-read many times (correction factors, carries)
      stay resident and contribute a single cold pass.
    """

    machine: MachineSpec
    cold_bytes: int = 0
    repeat_miss_bytes: int = 0

    def cold_pass(self, nbytes: int) -> None:
        """First-time sequential read of ``nbytes``."""
        self.cold_bytes += self._round_to_lines(nbytes)

    def repeat_pass(self, nbytes: int, working_set_bytes: int | None = None) -> None:
        """A re-read of ``nbytes``; misses iff the working set spilled."""
        working = nbytes if working_set_bytes is None else working_set_bytes
        if working > self.machine.l2_cache_bytes:
            self.repeat_miss_bytes += self._round_to_lines(nbytes)

    def resident_structure(self, nbytes: int) -> None:
        """A small heavily re-read structure: one cold pass only."""
        self.cold_bytes += self._round_to_lines(nbytes)

    def _round_to_lines(self, nbytes: int) -> int:
        line = self.machine.l2_line_bytes
        return -(-nbytes // line) * line

    @property
    def total_read_miss_bytes(self) -> int:
        return self.cold_bytes + self.repeat_miss_bytes

    @property
    def total_read_miss_megabytes(self) -> float:
        return self.total_read_miss_bytes / (1024 * 1024)
