"""GPU machine descriptions.

The paper evaluates on a GeForce GTX Titan X (Maxwell): 3072 processing
elements in 24 SMs, 49,152 resident threads, 96 kB shared memory per SM
(48 kB visible to one block), 2 MB shared L2, 12 GB GDDR5 at 336 GB/s,
1.1 GHz core and 3.5 GHz memory clocks, 65,536 registers per SM,
1024-thread blocks, warp size 32 (Section 5).

We do not have the hardware; :class:`MachineSpec` captures these
published constants so that

* the planner reproduces the paper's m/x/T heuristics exactly,
* the functional simulator enforces the same resource limits, and
* the analytical cost model is parameterized by the same machine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """Static hardware parameters of a CUDA-capable GPU."""

    name: str
    num_sms: int
    cores_per_sm: int
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    registers_per_sm: int
    shared_memory_per_sm: int  # bytes
    shared_memory_per_block: int  # bytes
    l2_cache_bytes: int
    l2_line_bytes: int
    global_memory_bytes: int
    peak_bandwidth_bytes: float  # bytes / second
    core_clock_hz: float
    memory_clock_hz: float
    kernel_launch_latency_s: float
    """Fixed host-side cost of launching one kernel (~5 us on Maxwell)."""
    baseline_context_bytes: int
    """Memory a trivial CUDA program already holds (Table 2 shows the
    memcpy code allocating 109.5 MB beyond its buffers: CUDA context,
    reserved heaps, and module code)."""

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        return self.num_sms * self.max_threads_per_sm

    def resident_blocks(self, block_size: int) -> int:
        """How many blocks of ``block_size`` threads the GPU holds at once.

        The thread-count bound only; register- and shared-memory-limited
        residency is the occupancy model's job
        (:func:`repro.gpusim.occupancy.occupancy`).
        """
        if block_size < 1:
            raise ValueError(f"block size must be >= 1, got {block_size}")
        return self.num_sms * max(1, self.max_threads_per_sm // block_size)

    @classmethod
    def titan_x(cls) -> "MachineSpec":
        """The GeForce GTX Titan X exactly as Section 5 describes it."""
        return cls(
            name="GeForce GTX Titan X (Maxwell)",
            num_sms=24,
            cores_per_sm=128,
            warp_size=32,
            max_threads_per_block=1024,
            max_threads_per_sm=2048,
            registers_per_sm=65536,
            shared_memory_per_sm=96 * 1024,
            shared_memory_per_block=48 * 1024,
            l2_cache_bytes=2 * 1024 * 1024,
            l2_line_bytes=32,
            global_memory_bytes=12 * 1024**3,
            peak_bandwidth_bytes=336e9,
            core_clock_hz=1.1e9,
            memory_clock_hz=3.5e9,
            kernel_launch_latency_s=5e-6,
            baseline_context_bytes=int(109.5 * 1024 * 1024),
        )

    @classmethod
    def small_test_gpu(cls) -> "MachineSpec":
        """A miniature GPU for fast functional-simulation tests.

        Two SMs, 4-lane warps, 16-thread blocks: small enough that the
        full Phase 1 / Phase 2 protocol runs in milliseconds under the
        event-ordered executor, while still exercising multi-warp,
        multi-block, and multi-SM behaviour.
        """
        return cls(
            name="test-gpu",
            num_sms=2,
            cores_per_sm=8,
            warp_size=4,
            max_threads_per_block=16,
            max_threads_per_sm=32,
            registers_per_sm=1024,
            shared_memory_per_sm=4096,
            shared_memory_per_block=2048,
            l2_cache_bytes=1024,
            l2_line_bytes=32,
            global_memory_bytes=1 << 26,
            peak_bandwidth_bytes=1e9,
            core_clock_hz=1e9,
            memory_clock_hz=1e9,
            kernel_launch_latency_s=1e-6,
            baseline_context_bytes=1 << 20,
        )
