"""Device-memory allocation tracking (the NVML side of Table 2).

The paper measures "total memory usage on the GPU" with NVML: CUDA
context plus every ``cudaMalloc``.  :class:`DeviceMemory` reproduces
that accounting: each algorithm's memory model performs the same
logical allocations its real counterpart does (input/output buffers,
carry and flag arrays, matrix-encoded sequences, extra image buffers),
and the tracker reports totals including the baseline context overhead
that even the trivial memcpy program pays (109.5 MB in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import SimulationError
from repro.gpusim.spec import MachineSpec

__all__ = ["Allocation", "DeviceMemory"]


@dataclass(frozen=True)
class Allocation:
    """One live device allocation."""

    name: str
    nbytes: int
    handle: int


@dataclass
class DeviceMemory:
    """Tracks cudaMalloc/cudaFree-style allocations against a machine.

    Raises :class:`SimulationError` on over-allocation or double free,
    the two failure modes the paper's >4 GB Scan runs would hit on real
    hardware.
    """

    machine: MachineSpec
    _live: dict[int, Allocation] = field(default_factory=dict)
    _next_handle: int = 0
    _peak_bytes: int = 0

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` of device memory under a debug name."""
        if nbytes < 0:
            raise SimulationError(f"negative allocation: {name} ({nbytes} bytes)")
        new_total = self.allocated_bytes + nbytes
        if new_total + self.machine.baseline_context_bytes > self.machine.global_memory_bytes:
            raise SimulationError(
                f"out of device memory allocating {name}: "
                f"{new_total + self.machine.baseline_context_bytes} bytes needed, "
                f"{self.machine.global_memory_bytes} available on {self.machine.name}"
            )
        allocation = Allocation(name, nbytes, self._next_handle)
        self._live[self._next_handle] = allocation
        self._next_handle += 1
        self._peak_bytes = max(self._peak_bytes, new_total)
        return allocation

    def free(self, allocation: Allocation) -> None:
        if allocation.handle not in self._live:
            raise SimulationError(f"double free of {allocation.name}")
        del self._live[allocation.handle]

    @property
    def allocated_bytes(self) -> int:
        """Live cudaMalloc total, excluding the context overhead."""
        return sum(a.nbytes for a in self._live.values())

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    @property
    def total_bytes(self) -> int:
        """What NVML would report: context overhead plus allocations."""
        return self.machine.baseline_context_bytes + self.allocated_bytes

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / (1024 * 1024)

    def live_allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._live.values())
