"""Warp-level primitives: lockstep lanes and shuffle exchanges.

CUDA's first level of hardware parallelism is the warp: 32 threads
executing in lockstep that can exchange register values with shuffle
instructions, without touching memory and without explicit
synchronization.  PLR's generated code uses shuffles for the first few
Phase 1 merge iterations ("They are implemented with shuffle
instructions to bring the chunk size to the warp size").

:class:`Warp` models one warp's register file as a (width, regs) array
and implements the three shuffle flavors the generated code uses.  All
lanes participate in every shuffle (lockstep); the executor counts each
call as one shuffle instruction per register exchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SimulationError

__all__ = ["Warp"]


@dataclass
class Warp:
    """One warp: ``width`` lanes, each holding ``registers.shape[1]`` values."""

    registers: np.ndarray  # shape (width, regs_per_lane)
    shuffle_count: int = 0

    def __post_init__(self) -> None:
        if self.registers.ndim != 2:
            raise SimulationError(
                f"warp register file must be 2D (lanes, regs), got shape "
                f"{self.registers.shape}"
            )

    @property
    def width(self) -> int:
        return self.registers.shape[0]

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.width:
            raise SimulationError(f"shuffle source lane {lane} outside warp of {self.width}")

    # ------------------------------------------------------------------
    def shfl_index(self, source_lanes: np.ndarray, register: int) -> np.ndarray:
        """__shfl: every lane reads ``register`` from its chosen source lane.

        ``source_lanes`` has one entry per lane.  Returns the gathered
        values; the register file is unchanged (shuffles are reads).
        """
        source_lanes = np.asarray(source_lanes)
        if source_lanes.shape != (self.width,):
            raise SimulationError(
                f"need one source lane per lane ({self.width}), got shape "
                f"{source_lanes.shape}"
            )
        if source_lanes.min() < 0 or source_lanes.max() >= self.width:
            raise SimulationError(
                f"shuffle source lanes out of range: {source_lanes.min()}"
                f"..{source_lanes.max()} in warp of {self.width}"
            )
        self.shuffle_count += 1
        return self.registers[source_lanes, register].copy()

    def shfl_up(self, register: int, delta: int) -> np.ndarray:
        """__shfl_up: lane i reads lane i-delta; low lanes keep their own."""
        if delta < 0:
            raise SimulationError(f"shuffle delta must be >= 0, got {delta}")
        lanes = np.arange(self.width)
        sources = np.where(lanes - delta >= 0, lanes - delta, lanes)
        return self.shfl_index(sources, register)

    def shfl_down(self, register: int, delta: int) -> np.ndarray:
        """__shfl_down: lane i reads lane i+delta; high lanes keep their own."""
        if delta < 0:
            raise SimulationError(f"shuffle delta must be >= 0, got {delta}")
        lanes = np.arange(self.width)
        sources = np.where(lanes + delta < self.width, lanes + delta, lanes)
        return self.shfl_index(sources, register)

    def broadcast(self, source_lane: int, register: int) -> np.ndarray:
        """__shfl with a single source lane for the whole warp."""
        self._check_lane(source_lane)
        sources = np.full(self.width, source_lane)
        return self.shfl_index(sources, register)
