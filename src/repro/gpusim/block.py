"""Thread-block level: shared memory and the in-block Phase 1 kernel.

CUDA's second level of parallelism is the thread block: up to 1024
threads that share a software-managed cache ("shared memory", 48 kB
visible per block on the paper's Titan X).  PLR's Phase 1 continues its
merge doubling across warps through shared memory once pair widths
exceed a warp.

:func:`block_phase1` is the lane-level implementation of one block's
Phase 1 work, written against the :class:`~repro.gpusim.warp.Warp`
shuffle primitives and :class:`SharedMemory`:

* each thread owns x consecutive values in registers,
* the thread-local serial solve covers widths up to x,
* merges whose carry donors sit in the same warp fetch carries with
  shuffles,
* wider merges stage the donor values through shared memory with a
  barrier on each side.

Its output is bit-identical to :func:`repro.plr.phase1.phase1` for the
same chunk (tested), but it actually enforces the hardware hierarchy:
shuffles never cross a warp, shared-memory staging respects the block's
byte budget, and every communication event is counted in
:class:`BlockStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import SimulationError
from repro.gpusim.warp import Warp
from repro.obs.tracer import NULL_TRACER, TracePid
from repro.plr.factors import CorrectionFactorTable

__all__ = ["SharedMemory", "BlockStats", "ThreadBlock", "block_phase1"]


@dataclass
class SharedMemory:
    """A block's shared-memory arena with a hard byte budget."""

    capacity_bytes: int
    used_bytes: int = 0
    read_count: int = 0
    write_count: int = 0
    _arrays: dict[str, np.ndarray] = field(default_factory=dict)

    def allocate(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Statically allocate a named shared array (like __shared__)."""
        if name in self._arrays:
            raise SimulationError(f"shared array {name!r} allocated twice")
        array = np.zeros(shape, dtype=dtype)
        nbytes = array.nbytes
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise SimulationError(
                f"shared memory exhausted: {name!r} needs {nbytes} bytes, "
                f"{self.capacity_bytes - self.used_bytes} of "
                f"{self.capacity_bytes} remain"
            )
        self.used_bytes += nbytes
        self._arrays[name] = array
        return array

    def record_read(self, count: int = 1) -> None:
        self.read_count += count

    def record_write(self, count: int = 1) -> None:
        self.write_count += count


@dataclass
class BlockStats:
    """Communication accounting for one block's kernel execution."""

    shuffles: int = 0
    shared_reads: int = 0
    shared_writes: int = 0
    barriers: int = 0
    corrections: int = 0  # factor multiply-adds applied


@dataclass
class ThreadBlock:
    """One thread block: a register file split into warps, plus smem."""

    block_size: int
    values_per_thread: int
    warp_size: int
    shared: SharedMemory
    registers: np.ndarray  # (block_size, values_per_thread)
    stats: BlockStats = field(default_factory=BlockStats)

    @classmethod
    def create(
        cls,
        chunk_values: np.ndarray,
        block_size: int,
        warp_size: int,
        shared_capacity: int,
    ) -> "ThreadBlock":
        """Distribute one chunk of m = block_size * x values to threads."""
        m = chunk_values.size
        if m % block_size:
            raise SimulationError(
                f"chunk of {m} values does not divide into {block_size} threads"
            )
        if block_size % warp_size:
            raise SimulationError(
                f"block size {block_size} is not a multiple of warp size {warp_size}"
            )
        if block_size & (block_size - 1):
            # Phase 1's pairwise doubling covers the chunk only when
            # the thread count is a power of two (the paper's blocks
            # are 1024); anything else would leave elements unmerged.
            raise SimulationError(
                f"block size {block_size} must be a power of two for the "
                "doubling merge to cover the chunk"
            )
        x = m // block_size
        registers = chunk_values.reshape(block_size, x).copy()
        return cls(
            block_size=block_size,
            values_per_thread=x,
            warp_size=warp_size,
            shared=SharedMemory(shared_capacity),
            registers=registers,
        )

    @property
    def num_warps(self) -> int:
        return self.block_size // self.warp_size

    def warp(self, index: int) -> Warp:
        """A view of warp ``index``'s registers (shared storage)."""
        lo = index * self.warp_size
        return Warp(self.registers[lo : lo + self.warp_size])

    def values(self) -> np.ndarray:
        """The chunk in sequence order (thread-major layout)."""
        return self.registers.reshape(-1)

    def barrier(self) -> None:
        """__syncthreads(); a pure counting event in this model."""
        self.stats.barriers += 1


def _fetch_carries_via_shuffle(
    block: ThreadBlock, border: int, count: int
) -> np.ndarray:
    """Read values at positions border-1 .. border-count via shuffles.

    All donors live in the same warp as the border (pair width is at
    most a warp's worth of values), so each carry is one shuffle from
    the donor lane.  Raises if a donor would sit in a different warp —
    that would be an illegal cross-warp shuffle on real hardware.
    """
    x = block.values_per_thread
    carries = np.empty(count, dtype=block.registers.dtype)
    warp_of_border = ((border - 1) // x) // block.warp_size
    warp = block.warp(warp_of_border)
    base_lane = warp_of_border * block.warp_size
    for j in range(count):
        pos = border - 1 - j
        thread, register = divmod(pos, x)
        if thread // block.warp_size != warp_of_border:
            raise SimulationError(
                f"carry donor thread {thread} is outside warp {warp_of_border}: "
                "cross-warp shuffle is illegal"
            )
        carries[j] = warp.broadcast(thread - base_lane, register)[0]
        block.stats.shuffles += 1
    return carries


def _fetch_carries_via_shared(
    block: ThreadBlock, staging: np.ndarray, pair_index: int, border: int, count: int
) -> np.ndarray:
    """Stage donor values through shared memory (cross-warp merge).

    The donor threads write their boundary values into the pair's
    staging slots; after a barrier the correcting threads read them.
    """
    x = block.values_per_thread
    for j in range(count):
        pos = border - 1 - j
        thread, register = divmod(pos, x)
        staging[pair_index, j] = block.registers[thread, register]
        block.shared.record_write()
        block.stats.shared_writes += 1
    block.barrier()
    carries = staging[pair_index, :count].copy()
    block.shared.record_read(count)
    block.stats.shared_reads += count
    return carries


def block_phase1(
    block: ThreadBlock,
    table: CorrectionFactorTable,
    tracer=NULL_TRACER,
    tid: int = 0,
) -> None:
    """Run Phase 1 for one block's chunk, in place, lane-level.

    After this returns, ``block.values()`` is the locally correct chunk
    (identical to one row of :func:`repro.plr.phase1.phase1`).  With an
    enabled ``tracer``, each merge-doubling level emits one ``merge``
    event (tid is the caller's chunk id) recording the pair width, the
    number of pairs, and whether carries moved by shuffle or through
    shared memory.
    """
    x = block.values_per_thread
    k = table.order
    m = block.block_size * x
    if table.chunk_size != m:
        raise SimulationError(
            f"factor table built for m={table.chunk_size}, block holds m={m}"
        )
    feedback = [
        b if isinstance(b, int) else float(b) for b in table.signature.feedback
    ]
    regs = block.registers
    if np.issubdtype(regs.dtype, np.integer):
        coeffs = [np.asarray(b, dtype=regs.dtype) for b in feedback]
    else:
        coeffs = [regs.dtype.type(b) for b in feedback]

    # Thread-local serial solve over each thread's x registers.
    for i in range(1, x):
        acc = regs[:, i]
        for j in range(1, min(i, k) + 1):
            acc = acc + coeffs[j - 1] * regs[:, i - j]
        regs[:, i] = acc

    # Staging buffer for cross-warp merges: one slot of k carries per
    # concurrently merging pair (at most num_warps/2 pairs).
    staging = block.shared.allocate(
        "carry_staging", (max(1, block.num_warps // 2), k), regs.dtype
    )

    width = x
    factors = table.factors
    flat = regs.reshape(-1)  # sequence-ordered view of all registers
    while width < m:
        pair_span = 2 * width
        within_warp = pair_span <= block.warp_size * x
        if tracer.enabled:
            tracer.instant(
                "merge",
                cat="phase1",
                pid=TracePid.SIM,
                tid=tid,
                args={
                    "width": width,
                    "pairs": m // pair_span,
                    "mode": "shuffle" if within_warp else "shared",
                },
            )
        for pair_index in range(m // pair_span):
            border = pair_index * pair_span + width
            count = min(k, width)
            if within_warp:
                carries = _fetch_carries_via_shuffle(block, border, count)
            else:
                carries = _fetch_carries_via_shared(
                    block, staging, pair_index, border, count
                )
            second = flat[border : border + width]
            for j in range(count):
                second += factors[j, :width] * carries[j]
                block.stats.corrections += width
        if not within_warp:
            block.barrier()
        width *= 2
