"""Composable fault injection for the GPU simulator.

The seed version of the executor modeled exactly three hardcoded
protocol corruptions (:class:`~repro.gpusim.executor.ProtocolFault`).
Real lock-free pipelines fail in far richer ways: a store becomes
visible after its guarding flag, a reader's cache serves stale data, a
block traps and the runtime reissues its work, a DRAM bit flips.  This
module generalizes fault injection into a *plan* of composable,
per-chunk and probabilistic fault specifications that the executor
consults at well-defined protocol points:

======================  =================================================
:attr:`FaultKind.DELAY_FLAG`
                        the global-ready flag becomes visible ``window``
                        scheduler steps *before* the carry stores (a
                        missing memory fence) — successors may read
                        stale zeros
:attr:`FaultKind.DROP_LOCAL_FLAG`
                        the local-carry publication (data + flag) is
                        skipped; the protocol survives at the cost of
                        pipelining (successors fall back to the global
                        flag)
:attr:`FaultKind.DROP_GLOBAL_FLAG`
                        the global-carry publication is skipped; chunks
                        more than the look-back window past the victim
                        can never find a base and the scheduler must
                        report deadlock with forensics
:attr:`FaultKind.STALE_CARRY`
                        a look-back read observes stale (zero) global
                        carries despite a correct flag — silent data
                        corruption
:attr:`FaultKind.BIT_FLIP_CARRY`
                        one bit of a published global carry flips —
                        silent data corruption
:attr:`FaultKind.ABORT_RESTART`
                        the block aborts mid-flight; its chunk id is
                        recycled through the atomic counter and the
                        scheduler reissues a fresh block in its slot
======================  =================================================

A :class:`FaultPlan` is immutable and seedable; :meth:`FaultPlan.engine`
creates the mutable per-run :class:`FaultEngine` that draws the
probabilistic decisions, enforces trigger budgets, and records every
fired fault as a :class:`FaultEvent` for post-mortem inspection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import SimulationError

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultEngine",
    "FaultEvent",
    "flip_bit",
]

MAX_RESTARTS_PER_CHUNK = 4
"""Hard cap on :attr:`FaultKind.ABORT_RESTART` firings per chunk, so a
probability-1.0 abort spec still terminates (the real runtime analogue:
a watchdog gives up on a chunk that keeps trapping)."""


class FaultKind(enum.Enum):
    """The injectable fault classes, keyed by protocol point."""

    DELAY_FLAG = "delay_flag"
    DROP_LOCAL_FLAG = "drop_local_flag"
    DROP_GLOBAL_FLAG = "drop_global_flag"
    STALE_CARRY = "stale_carry"
    BIT_FLIP_CARRY = "bit_flip_carry"
    ABORT_RESTART = "abort_restart"


#: Fault kinds whose effect is silent data corruption (no protocol
#: violation the simulator itself can detect); recovering from these
#: requires redundant verification, which is what
#: :class:`~repro.resilience.ResilientSolver`'s paired check provides.
CORRUPTING_KINDS = frozenset(
    {FaultKind.DELAY_FLAG, FaultKind.STALE_CARRY, FaultKind.BIT_FLIP_CARRY}
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what fires, where, and how often.

    Attributes
    ----------
    kind:
        Which fault to inject.
    chunks:
        Chunk ids the rule applies to, or None for every chunk.
    probability:
        Per-opportunity firing probability in [0, 1].
    window:
        For :attr:`FaultKind.DELAY_FLAG`: scheduler steps between the
        (premature) flag store and the carry stores.
    bit:
        For :attr:`FaultKind.BIT_FLIP_CARRY`: which bit of the first
        carry word to flip (modulo the word width).
    max_triggers:
        Total firing budget for this rule, or None for unbounded.
    """

    kind: FaultKind
    chunks: tuple[int, ...] | None = None
    probability: float = 1.0
    window: int = 4
    bit: int = 0
    max_triggers: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.window < 1:
            raise SimulationError(f"delay window must be >= 1, got {self.window}")
        if self.max_triggers is not None and self.max_triggers < 0:
            raise SimulationError(
                f"max_triggers must be >= 0, got {self.max_triggers}"
            )
        if self.chunks is not None:
            object.__setattr__(self, "chunks", tuple(int(c) for c in self.chunks))

    def applies_to(self, chunk_id: int) -> bool:
        return self.chunks is None or chunk_id in self.chunks


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seedable composition of fault rules.

    The plan is pure configuration; per-run mutable state (RNG draws,
    trigger budgets, the event log) lives in the :class:`FaultEngine`
    created by :meth:`engine`, so one plan can be replayed across many
    simulator runs deterministically.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: a perfectly healthy protocol."""
        return cls()

    @classmethod
    def single(cls, kind: FaultKind | str, seed: int = 0, **spec_kwargs) -> "FaultPlan":
        """A plan with one rule, e.g. ``FaultPlan.single("stale_carry")``."""
        if isinstance(kind, str):
            try:
                kind = FaultKind(kind)
            except ValueError:
                known = ", ".join(k.value for k in FaultKind)
                raise SimulationError(
                    f"unknown fault kind {kind!r}; known kinds: {known}"
                ) from None
        return cls(specs=(FaultSpec(kind=kind, **spec_kwargs),), seed=seed)

    @classmethod
    def coerce(cls, value) -> "FaultPlan":
        """Normalize plan-like values (None, kind, spec, name) to a plan."""
        if value is None:
            return cls.none()
        if isinstance(value, cls):
            return value
        if isinstance(value, FaultSpec):
            return cls(specs=(value,))
        if isinstance(value, (FaultKind, str)):
            return cls.single(value)
        raise SimulationError(f"cannot interpret {value!r} as a fault plan")

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def kinds(self) -> frozenset[FaultKind]:
        return frozenset(s.kind for s in self.specs)

    def describe(self) -> str:
        if not self.specs:
            return "no faults"
        parts = []
        for s in self.specs:
            where = "all chunks" if s.chunks is None else f"chunks {list(s.chunks)}"
            parts.append(f"{s.kind.value}@{where} p={s.probability:g}")
        return "; ".join(parts)

    def engine(self) -> "FaultEngine":
        """A fresh mutable injection engine for one simulator run."""
        return FaultEngine(self)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired during a run."""

    kind: FaultKind
    chunk_id: int
    detail: str = ""


class FaultEngine:
    """Per-run fault decision state: RNG, budgets, and the event log."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._remaining: dict[int, int | None] = {
            i: s.max_triggers for i, s in enumerate(plan.specs)
        }
        self._aborts_per_chunk: dict[int, int] = {}
        self.events: list[FaultEvent] = []

    def fire(self, kind: FaultKind, chunk_id: int, detail: str = "") -> FaultSpec | None:
        """Decide whether ``kind`` fires for ``chunk_id`` at this point.

        Returns the matching spec (recording a :class:`FaultEvent` and
        consuming budget) or None.  Abort faults are additionally capped
        at :data:`MAX_RESTARTS_PER_CHUNK` firings per chunk so that
        restart storms terminate.
        """
        if not self.plan.specs:
            return None
        for index, spec in enumerate(self.plan.specs):
            if spec.kind is not kind or not spec.applies_to(chunk_id):
                continue
            remaining = self._remaining[index]
            if remaining is not None and remaining <= 0:
                continue
            if kind is FaultKind.ABORT_RESTART:
                if self._aborts_per_chunk.get(chunk_id, 0) >= MAX_RESTARTS_PER_CHUNK:
                    continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            if remaining is not None:
                self._remaining[index] = remaining - 1
            if kind is FaultKind.ABORT_RESTART:
                self._aborts_per_chunk[chunk_id] = (
                    self._aborts_per_chunk.get(chunk_id, 0) + 1
                )
            self.events.append(FaultEvent(kind=kind, chunk_id=chunk_id, detail=detail))
            return spec
        return None


def flip_bit(values: np.ndarray, bit: int) -> np.ndarray:
    """Return a copy of ``values`` with one bit of element 0 flipped.

    Models a radiation-style single-event upset in a published carry
    word.  Works for any fixed-width integer or IEEE float dtype by
    flipping through an unsigned view of the same width.
    """
    out = np.array(values, copy=True)
    if out.size == 0:
        return out
    width_bits = out.dtype.itemsize * 8
    as_bits = out.view(np.dtype(f"u{out.dtype.itemsize}"))
    as_bits.flat[0] ^= np.dtype(f"u{out.dtype.itemsize}").type(1) << (bit % width_bits)
    return out
