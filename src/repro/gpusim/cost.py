"""The analytical throughput model behind Figures 1-10.

We do not have the paper's Titan X, so absolute runtimes cannot be
measured.  What the paper's evaluation *argues from*, however, is a
small set of first-order effects, all of which are functions of memory
traffic and work:

* every code is bounded by the 336 GB/s memory system once inputs are
  large ("reaches the throughput of memory copy, which cannot be
  surpassed");
* codes with 2n data movement (PLR, CUB, SAM) saturate that bound;
  Scan moves 2x-12x more and is proportionally slower; Alg3/Rec read
  the input twice (Table 3) and pay for it beyond the L2 capacity;
* fixed kernel-launch overheads dominate tiny inputs (every curve in
  Figures 1-9 ramps up);
* per-element correction work (factor loads + multiply-adds) becomes
  the bottleneck when the optimizations that shrink it are disabled
  (Figure 10).

:class:`CostModel` turns a :class:`Traffic` description into a time:

    time = launches * t_launch + serial_hops * t_hop
         + max(memory_time, compute_time)

with ``memory_time = hbm_bytes / (eff * BW) + l2_bytes / (l2_ratio *
eff * BW)`` and ``compute_time = ops / (cores * clock * eff_c)``.
The efficiency constants are calibrated once, in this module, against
the handful of absolute anchors the paper reports (memcpy plateau
~35 G words/s, PLR prefix-sum parity with memcpy, the Figure 10
on/off ratios) and are then *frozen*; every per-code traffic model in
:mod:`repro.baselines` and :mod:`repro.eval` uses the same constants.
EXPERIMENTS.md records the paper-vs-model comparison for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpusim.spec import MachineSpec

__all__ = ["Traffic", "CostModel"]


@dataclass(frozen=True)
class Traffic:
    """A kernel's resource demands, in machine-independent units.

    Attributes
    ----------
    hbm_read_bytes / hbm_write_bytes:
        Bytes that must come from / go to device memory (cold data).
    l2_read_bytes:
        Bytes read from structures that stay L2-resident (correction
        factors past the shared-memory buffer, carries, lookback state).
    fma_ops:
        Fused multiply-add operations on sequence elements.
    aux_ops:
        Other per-element instructions: shared-memory loads, shuffles,
        predicated adds, address arithmetic beyond the baseline.
    kernel_launches:
        Fixed per-launch overheads paid (CUB's two-kernel passes, Rec's
        many small filters...).
    serial_hops:
        Length of the longest serial dependence chain of global-memory
        round trips (Phase 2 carry propagation at small grid sizes,
        Chaurasia's serial carry combination).
    """

    hbm_read_bytes: float = 0.0
    hbm_write_bytes: float = 0.0
    l2_read_bytes: float = 0.0
    fma_ops: float = 0.0
    aux_ops: float = 0.0
    kernel_launches: int = 1
    serial_hops: float = 0.0
    min_time_s: float = 0.0
    """A hard floor on execution time, for fundamentally serial codes
    whose speed is set by one thread's issue rate rather than by any
    aggregate machine resource (the serial CPU reference)."""

    def __add__(self, other: "Traffic") -> "Traffic":
        return Traffic(
            self.hbm_read_bytes + other.hbm_read_bytes,
            self.hbm_write_bytes + other.hbm_write_bytes,
            self.l2_read_bytes + other.l2_read_bytes,
            self.fma_ops + other.fma_ops,
            self.aux_ops + other.aux_ops,
            self.kernel_launches + other.kernel_launches,
            self.serial_hops + other.serial_hops,
            max(self.min_time_s, other.min_time_s),
        )

    def scaled(self, factor: float) -> "Traffic":
        """All volume terms multiplied by ``factor`` (launches kept)."""
        return replace(
            self,
            hbm_read_bytes=self.hbm_read_bytes * factor,
            hbm_write_bytes=self.hbm_write_bytes * factor,
            l2_read_bytes=self.l2_read_bytes * factor,
            fma_ops=self.fma_ops * factor,
            aux_ops=self.aux_ops * factor,
            serial_hops=self.serial_hops * factor,
        )


@dataclass(frozen=True)
class CostModel:
    """Machine constants + calibrated efficiencies -> time/throughput.

    Calibration anchors (Titan X, from the paper's own numbers):

    * ``bandwidth_efficiency`` 0.834: the memcpy plateau in Figures 1-9
      is ~35 G words/s = 280 GB/s of 336 GB/s peak.
    * ``compute_efficiency`` 0.30: realized fraction of the 3.38 T
      FMA/s peak for correction loops with their address arithmetic,
      predication, and synchronization; chosen so that the Figure 10
      "optimizations off" integer bars land at roughly 2/3 of the
      on-bars, matching the paper.
    * ``l2_bandwidth_ratio`` 6.0: Maxwell's L2 delivers on the order of
      6x HBM bandwidth for broadcast-friendly access patterns.
    * ``hop_latency_s`` 600 ns: one dependent global-memory round trip
      including fence/flag polling.
    """

    machine: MachineSpec
    bandwidth_efficiency: float = 0.834
    compute_efficiency: float = 0.30
    l2_bandwidth_ratio: float = 5.75
    hop_latency_s: float = 600e-9
    fma_per_core_per_cycle: float = 1.0

    @classmethod
    def titan_x(cls) -> "CostModel":
        return cls(MachineSpec.titan_x())

    # ------------------------------------------------------------------
    @property
    def effective_bandwidth(self) -> float:
        return self.machine.peak_bandwidth_bytes * self.bandwidth_efficiency

    @property
    def effective_compute(self) -> float:
        """Realized scalar op throughput, ops/second."""
        return (
            self.machine.total_cores
            * self.machine.core_clock_hz
            * self.fma_per_core_per_cycle
            * self.compute_efficiency
        )

    def memory_time(self, traffic: Traffic) -> float:
        hbm = traffic.hbm_read_bytes + traffic.hbm_write_bytes
        l2 = traffic.l2_read_bytes
        return hbm / self.effective_bandwidth + l2 / (
            self.effective_bandwidth * self.l2_bandwidth_ratio
        )

    def compute_time(self, traffic: Traffic) -> float:
        return (traffic.fma_ops + traffic.aux_ops) / self.effective_compute

    def fixed_time(self, traffic: Traffic) -> float:
        return (
            traffic.kernel_launches * self.machine.kernel_launch_latency_s
            + traffic.serial_hops * self.hop_latency_s
        )

    def time(self, traffic: Traffic) -> float:
        """Seconds for one kernel-level execution of ``traffic``."""
        return max(
            self.fixed_time(traffic)
            + max(self.memory_time(traffic), self.compute_time(traffic)),
            traffic.min_time_s,
        )

    def throughput(self, n_words: int, traffic: Traffic) -> float:
        """Words processed per second — the y-axis of Figures 1-9."""
        return n_words / self.time(traffic)

    def bound_kind(self, traffic: Traffic) -> str:
        """'memory' or 'compute': which side of the max() binds."""
        return (
            "memory"
            if self.memory_time(traffic) >= self.compute_time(traffic)
            else "compute"
        )
