"""Grid-level scheduling: SMs, resident blocks, and interleaving.

CUDA's third level of parallelism is the grid: thread blocks are
assigned to streaming multiprocessors as resources free up, run to
completion, and can only communicate through global memory.  Two
properties of this level matter for PLR's Phase 2 protocol and are
enforced here:

* only a bounded number of blocks is *resident* at once (the paper's
  T, set by the register budget), and their execution interleaves in
  an arbitrary, non-deterministic order;
* PLR assigns chunk ids with an atomic counter *at block start* rather
  than using blockIdx, so chunk order matches issue order — later
  chunks are always resident no earlier than their predecessors, which
  is what makes busy-waiting on predecessor flags deadlock-free.

:class:`GridScheduler` drives block coroutines with a seeded RNG so
tests can replay adversarial interleavings deterministically, and it
detects deadlock (a full round of resident blocks all blocked with no
new block issuable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Iterator

import numpy as np

from repro.core.errors import SimulationError

__all__ = ["AtomicCounter", "BlockYield", "GridScheduler", "ScheduleStats"]


@dataclass
class AtomicCounter:
    """The global chunk counter each block atomically increments."""

    value: int = 0

    def fetch_increment(self) -> int:
        current = self.value
        self.value += 1
        return current


class BlockYield:
    """What a block coroutine yields to the scheduler at each step."""

    PROGRESS = "progress"  # did work, reschedule normally
    WAITING = "waiting"  # busy-waiting on a flag; made no progress


@dataclass
class ScheduleStats:
    """Aggregate scheduling behaviour of one kernel run."""

    steps: int = 0
    wait_steps: int = 0
    blocks_run: int = 0
    max_resident: int = 0


BlockCoroutine = Generator[str, None, None]


@dataclass
class GridScheduler:
    """Runs block coroutines with bounded residency and random interleave.

    Parameters
    ----------
    max_resident:
        The paper's T: how many blocks hold SM resources concurrently.
    seed:
        RNG seed for the interleaving; same seed, same schedule.
    deadlock_rounds:
        How many consecutive all-waiting sweeps of the resident set to
        tolerate before declaring deadlock.
    """

    max_resident: int
    seed: int = 0
    deadlock_rounds: int = 1000
    stats: ScheduleStats = field(default_factory=ScheduleStats)

    def run(self, block_factories: list[Callable[[], BlockCoroutine]]) -> ScheduleStats:
        """Issue and interleave all blocks until the grid completes."""
        if self.max_resident < 1:
            raise SimulationError(f"need at least one resident block, got {self.max_resident}")
        rng = np.random.default_rng(self.seed)
        pending: Iterator[Callable[[], BlockCoroutine]] = iter(block_factories)
        resident: list[BlockCoroutine] = []
        exhausted = False
        stale_rounds = 0

        def refill() -> None:
            nonlocal exhausted
            while not exhausted and len(resident) < self.max_resident:
                factory = next(pending, None)
                if factory is None:
                    exhausted = True
                    return
                resident.append(factory())
                self.stats.blocks_run += 1
                self.stats.max_resident = max(self.stats.max_resident, len(resident))

        refill()
        while resident:
            # One sweep: step every resident block once, in random order.
            order = rng.permutation(len(resident))
            progressed = False
            finished: list[BlockCoroutine] = []
            for idx in order:
                coroutine = resident[idx]
                try:
                    state = next(coroutine)
                except StopIteration:
                    finished.append(coroutine)
                    progressed = True
                    continue
                self.stats.steps += 1
                if state == BlockYield.WAITING:
                    self.stats.wait_steps += 1
                else:
                    progressed = True
            for coroutine in finished:
                resident.remove(coroutine)
            refill()
            if progressed:
                stale_rounds = 0
            else:
                stale_rounds += 1
                if stale_rounds >= self.deadlock_rounds:
                    raise SimulationError(
                        f"deadlock: {len(resident)} resident blocks made no "
                        f"progress for {stale_rounds} scheduler rounds"
                    )
        return self.stats
