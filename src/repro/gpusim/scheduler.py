"""Grid-level scheduling: SMs, resident blocks, and interleaving.

CUDA's third level of parallelism is the grid: thread blocks are
assigned to streaming multiprocessors as resources free up, run to
completion, and can only communicate through global memory.  Two
properties of this level matter for PLR's Phase 2 protocol and are
enforced here:

* only a bounded number of blocks is *resident* at once (the paper's
  T, set by the register budget), and their execution interleaves in
  an arbitrary, non-deterministic order;
* PLR assigns chunk ids with an atomic counter *at block start* rather
  than using blockIdx, so chunk order matches issue order — later
  chunks are always resident no earlier than their predecessors, which
  is what makes busy-waiting on predecessor flags deadlock-free.

:class:`GridScheduler` drives block coroutines with a seeded RNG so
tests can replay adversarial interleavings deterministically.  Beyond
plain interleaving it supports the resilience machinery:

* **restart** — a block may yield :attr:`BlockYield.ABORTED` (e.g. the
  fault engine made it trap); the scheduler immediately reissues a
  fresh block in the freed slot, and :meth:`AtomicCounter.release`
  recycles the aborted chunk id so the replacement re-acquires it;
* **deadlock forensics** — blocks busy-waiting on Phase 2 flags yield
  :class:`WaitInfo` records instead of a bare "waiting" token; when a
  full round of resident blocks is blocked with no new block issuable
  for :attr:`GridScheduler.deadlock_rounds` sweeps, the scheduler
  raises :class:`~repro.core.errors.DeadlockError` carrying the last
  wait record of every stalled block — which chunks are blocked, on
  which flags, at what look-back distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Iterator

import numpy as np

from repro.core.errors import DeadlockError, SimulationError
from repro.obs.tracer import NULL_TRACER, TracePid

__all__ = [
    "AtomicCounter",
    "BlockYield",
    "DEADLOCK_TRACE_TAIL",
    "GridScheduler",
    "ScheduleStats",
    "WaitInfo",
]

DEADLOCK_TRACE_TAIL = 64
"""How many of a stalled block's most recent trace events a
:class:`~repro.core.errors.DeadlockError` report attaches per block.
The rendered message compresses runs of identical events (a stalled
block's tail is mostly ``spin``), so the history stays readable."""


def _describe_tail(events) -> str:
    """Render a trace tail, collapsing runs: ``phase1@3 -> spin x47@230``."""
    runs: list[list] = []  # [name, count, last_ts]
    for event in events:
        if runs and runs[-1][0] == event.name:
            runs[-1][1] += 1
            runs[-1][2] = event.ts
        else:
            runs.append([event.name, 1, event.ts])
    return " -> ".join(
        f"{name}@{ts:g}" if count == 1 else f"{name} x{count}@{ts:g}"
        for name, count, ts in runs
    )


@dataclass
class AtomicCounter:
    """The global chunk counter each block atomically increments.

    :meth:`release` returns an id to the counter (modeling a runtime
    that reissues the work of an aborted block); released ids are
    re-acquired LIFO before the counter advances, so a restarted block
    picks up exactly the chunk its predecessor abandoned.
    """

    value: int = 0
    released: list[int] = field(default_factory=list)

    def fetch_increment(self) -> int:
        if self.released:
            return self.released.pop()
        current = self.value
        self.value += 1
        return current

    def release(self, chunk_id: int) -> None:
        """Recycle ``chunk_id`` so a future block can re-acquire it."""
        self.released.append(chunk_id)


class BlockYield:
    """What a block coroutine yields to the scheduler at each step."""

    PROGRESS = "progress"  # did work, reschedule normally
    WAITING = "waiting"  # busy-waiting on a flag; made no progress
    ABORTED = "aborted"  # block trapped; reissue a fresh block


@dataclass(frozen=True)
class WaitInfo:
    """One busy-wait observation: who is blocked, on what, how far back.

    Yielded by the executor's look-back loop in place of a bare
    :attr:`BlockYield.WAITING` token; the scheduler treats it as
    waiting and keeps the most recent record per block so a deadlock
    report can name the broken dependence edges precisely.

    Attributes
    ----------
    chunk_id:
        The chunk the blocked block is computing.
    waiting_for:
        ``"global"`` — no chunk in the look-back window has published
        global carries yet; ``"local"`` — a base was found but some
        intervening local-carry flags are missing.
    lookback_lo:
        The lowest chunk id in the look-back window.
    base_chunk:
        The chunk whose global carries would be combined from, or None
        when no base exists yet.
    blocked_on:
        The chunk ids whose flags are insufficient.
    lookback_distance:
        ``chunk_id - base_chunk`` when a base exists, else None.
    """

    chunk_id: int
    waiting_for: str
    lookback_lo: int
    base_chunk: int | None
    blocked_on: tuple[int, ...]
    lookback_distance: int | None

    def describe(self) -> str:
        blocked = ", ".join(str(c) for c in self.blocked_on) or "none"
        if self.waiting_for == "global":
            return (
                f"chunk {self.chunk_id}: no global-ready flag in window "
                f"[{self.lookback_lo}, {self.chunk_id - 1}]; blocked on "
                f"chunks {blocked}"
            )
        return (
            f"chunk {self.chunk_id}: base {self.base_chunk} at look-back "
            f"distance {self.lookback_distance}; blocked on local-ready "
            f"flags of chunks {blocked}"
        )


@dataclass
class ScheduleStats:
    """Aggregate scheduling behaviour of one kernel run."""

    steps: int = 0
    wait_steps: int = 0
    blocks_run: int = 0
    max_resident: int = 0
    restarts: int = 0


BlockCoroutine = Generator[object, None, None]


@dataclass
class GridScheduler:
    """Runs block coroutines with bounded residency and random interleave.

    Parameters
    ----------
    max_resident:
        The paper's T: how many blocks hold SM resources concurrently.
    seed:
        RNG seed for the interleaving; same seed, same schedule.
    deadlock_rounds:
        How many consecutive all-waiting sweeps of the resident set to
        tolerate before declaring deadlock.
    tracer:
        An :class:`~repro.obs.tracer.Tracer` receiving block
        issue/retire/restart events (timestamped with the scheduler's
        own step counter) — and, on deadlock, supplying the per-block
        trace tails attached to the :class:`DeadlockError`.  Defaults
        to the no-op tracer.
    """

    max_resident: int
    seed: int = 0
    deadlock_rounds: int = 1000
    stats: ScheduleStats = field(default_factory=ScheduleStats)
    tracer: object = NULL_TRACER

    def run(self, block_factories: list[Callable[[], BlockCoroutine]]) -> ScheduleStats:
        """Issue and interleave all blocks until the grid completes."""
        if self.max_resident < 1:
            raise SimulationError(f"need at least one resident block, got {self.max_resident}")
        rng = np.random.default_rng(self.seed)
        pending: Iterator[Callable[[], BlockCoroutine]] = iter(block_factories)
        resident: list[BlockCoroutine] = []
        factory_of: dict[int, Callable[[], BlockCoroutine]] = {}
        last_wait: dict[int, WaitInfo] = {}
        exhausted = False
        stale_rounds = 0

        tracer = self.tracer

        def issue(factory: Callable[[], BlockCoroutine]) -> BlockCoroutine:
            coroutine = factory()
            factory_of[id(coroutine)] = factory
            self.stats.blocks_run += 1
            if tracer.enabled:
                tracer.instant(
                    "block_issue",
                    cat="sched",
                    pid=TracePid.SCHED,
                    ts=float(self.stats.steps),
                    args={"block": self.stats.blocks_run - 1},
                )
            return coroutine

        def refill() -> None:
            nonlocal exhausted
            while not exhausted and len(resident) < self.max_resident:
                factory = next(pending, None)
                if factory is None:
                    exhausted = True
                    return
                resident.append(issue(factory))
                self.stats.max_resident = max(self.stats.max_resident, len(resident))

        def retire(coroutine: BlockCoroutine) -> None:
            factory_of.pop(id(coroutine), None)
            last_wait.pop(id(coroutine), None)

        refill()
        while resident:
            # One sweep: step every resident block once, in random order.
            order = rng.permutation(len(resident))
            progressed = False
            finished: list[BlockCoroutine] = []
            for idx in order:
                coroutine = resident[idx]
                try:
                    state = next(coroutine)
                except StopIteration:
                    finished.append(coroutine)
                    progressed = True
                    continue
                self.stats.steps += 1
                if isinstance(state, WaitInfo):
                    last_wait[id(coroutine)] = state
                    self.stats.wait_steps += 1
                elif state == BlockYield.WAITING:
                    self.stats.wait_steps += 1
                elif state == BlockYield.ABORTED:
                    # The block trapped: reissue a fresh block in the
                    # same SM slot (the freed resources are re-filled
                    # immediately, like a runtime relaunching failed
                    # work).  The executor released the chunk id first,
                    # so the replacement re-acquires it.
                    factory = factory_of[id(coroutine)]
                    retire(coroutine)
                    coroutine.close()
                    if tracer.enabled:
                        tracer.instant(
                            "block_restart",
                            cat="sched",
                            pid=TracePid.SCHED,
                            ts=float(self.stats.steps),
                        )
                    resident[idx] = issue(factory)
                    self.stats.restarts += 1
                    progressed = True
                else:
                    progressed = True
            for coroutine in finished:
                retire(coroutine)
                resident.remove(coroutine)
            refill()
            if progressed:
                stale_rounds = 0
            else:
                stale_rounds += 1
                if stale_rounds >= self.deadlock_rounds:
                    forensics = tuple(
                        last_wait[id(c)] for c in resident if id(c) in last_wait
                    )
                    # With tracing on, attach each stalled block's last
                    # few events so the report shows *how* it got stuck
                    # (what it did before spinning), not just what flag
                    # it waits on now.
                    trace_tails: dict[int, tuple] = {}
                    if tracer.enabled:
                        for info in forensics:
                            tail = tracer.tail(
                                DEADLOCK_TRACE_TAIL, tid=info.chunk_id
                            )
                            if tail:
                                trace_tails[info.chunk_id] = tuple(tail)
                    lines = []
                    for info in forensics:
                        lines.append(f"\n  {info.describe()}")
                        tail = trace_tails.get(info.chunk_id)
                        if tail:
                            lines.append(f"\n    trace tail: {_describe_tail(tail)}")
                    raise DeadlockError(
                        f"deadlock: {len(resident)} resident blocks made no "
                        f"progress for {stale_rounds} scheduler rounds"
                        + "".join(lines),
                        forensics=forensics,
                        trace_tails=trace_tails,
                    )
        return self.stats
