"""The GPU substrate: machine model, functional simulator, cost model.

Three layers, usable independently:

* :mod:`repro.gpusim.spec` — published hardware constants (Titan X);
* the functional simulator (:mod:`~repro.gpusim.warp`,
  :mod:`~repro.gpusim.block`, :mod:`~repro.gpusim.scheduler`,
  :mod:`~repro.gpusim.executor`) — runs the PLR kernel protocol for
  real at small scale, enforcing the hardware hierarchy;
* the accounting models (:mod:`~repro.gpusim.memory`,
  :mod:`~repro.gpusim.l2cache`, :mod:`~repro.gpusim.cost`) — NVML-style
  memory totals, nvprof-style L2 misses, and the analytical throughput
  model behind the figures.
"""

from repro.gpusim.block import BlockStats, SharedMemory, ThreadBlock, block_phase1
from repro.gpusim.faults import (
    FaultEngine,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    flip_bit,
)
from repro.gpusim.cost import CostModel, Traffic
from repro.gpusim.executor import KernelRunResult, ProtocolFault, SimulatedPLR
from repro.gpusim.l2cache import AccessStreamSummary, L2Cache
from repro.gpusim.memory import Allocation, DeviceMemory
from repro.gpusim.occupancy import OccupancyResult, occupancy
from repro.gpusim.scheduler import AtomicCounter, BlockYield, GridScheduler, WaitInfo
from repro.gpusim.spec import MachineSpec
from repro.gpusim.warp import Warp

__all__ = [
    "Allocation",
    "AtomicCounter",
    "AccessStreamSummary",
    "BlockStats",
    "BlockYield",
    "CostModel",
    "DeviceMemory",
    "FaultEngine",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "GridScheduler",
    "KernelRunResult",
    "L2Cache",
    "MachineSpec",
    "OccupancyResult",
    "ProtocolFault",
    "SharedMemory",
    "SimulatedPLR",
    "ThreadBlock",
    "Traffic",
    "WaitInfo",
    "Warp",
    "block_phase1",
    "flip_bit",
    "occupancy",
]
