"""CUDA occupancy: how many blocks an SM can actually hold.

The paper's T ("the number of thread blocks the GPU can simultaneously
process") falls out of one resource in its setting — registers — but
on real hardware residency is the *minimum* over four limits:

* threads:   resident threads per SM / threads per block;
* registers: register file / (registers per thread * block threads);
* shared memory: per-SM shared memory / per-block usage;
* a hard cap on blocks per SM (32 on Maxwell).

:func:`occupancy` evaluates all four, reports which one binds, and
reproduces the paper's numbers as the special case (1024-thread
blocks, 32/64 registers, modest shared memory -> 2 or 1 blocks/SM).
The planner's simple register rule is validated against this full
calculator in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import PlanError
from repro.gpusim.spec import MachineSpec

__all__ = ["OccupancyResult", "occupancy", "MAX_BLOCKS_PER_SM"]

MAX_BLOCKS_PER_SM = 32
"""Maxwell's architectural cap on resident blocks per multiprocessor."""


@dataclass(frozen=True)
class OccupancyResult:
    """Residency of one kernel configuration on one machine."""

    blocks_per_sm: int
    resident_blocks: int
    resident_threads: int
    limiting_resource: str
    thread_limit: int
    register_limit: int
    shared_memory_limit: int

    @property
    def occupancy_fraction(self) -> float:
        """Resident threads as a fraction of the SM's maximum."""
        return self.resident_threads / self._max_threads

    _max_threads: int = 0  # populated by occupancy(); hidden from repr


def occupancy(
    machine: MachineSpec,
    block_size: int,
    registers_per_thread: int,
    shared_memory_per_block: int = 0,
) -> OccupancyResult:
    """Blocks per SM for a kernel configuration, with the binding limit."""
    if block_size < 1 or block_size > machine.max_threads_per_block:
        raise PlanError(
            f"block size {block_size} outside [1, {machine.max_threads_per_block}]"
        )
    if registers_per_thread < 1:
        raise PlanError(f"registers per thread must be >= 1, got {registers_per_thread}")
    if shared_memory_per_block > machine.shared_memory_per_block:
        raise PlanError(
            f"kernel needs {shared_memory_per_block} B of shared memory per "
            f"block; the machine allows {machine.shared_memory_per_block}"
        )

    by_threads = machine.max_threads_per_sm // block_size
    by_registers = machine.registers_per_sm // (registers_per_thread * block_size)
    if shared_memory_per_block > 0:
        by_shared = machine.shared_memory_per_sm // shared_memory_per_block
    else:
        # No shared memory requested: effectively unconstrained (one
        # more than the hard cap so the cap is reported as binding).
        by_shared = MAX_BLOCKS_PER_SM + 1

    blocks = min(by_threads, by_registers, by_shared, MAX_BLOCKS_PER_SM)
    if blocks < 1:
        raise PlanError(
            f"configuration does not fit on one SM: block={block_size} threads, "
            f"{registers_per_thread} regs/thread, {shared_memory_per_block} B smem"
        )
    limits = {
        "threads": by_threads,
        "registers": by_registers,
        "shared_memory": by_shared,
        "block_cap": MAX_BLOCKS_PER_SM,
    }
    limiting = min(limits, key=limits.__getitem__)
    result = OccupancyResult(
        blocks_per_sm=blocks,
        resident_blocks=blocks * machine.num_sms,
        resident_threads=blocks * block_size,
        limiting_resource=limiting,
        thread_limit=by_threads,
        register_limit=by_registers,
        shared_memory_limit=by_shared,
    )
    object.__setattr__(result, "_max_threads", machine.max_threads_per_sm)
    return result
