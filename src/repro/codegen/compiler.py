"""The PLR compiler facade: signature string in, artifact out.

This is the reproduction of the paper's command-line tool: "a simple
proof-of-concept compiler called PLR that translates these signatures
into CUDA code".  :class:`PLRCompiler` parses the signature, plans the
execution, precomputes and optimizes the correction factors, and hands
the resulting IR to the requested backend:

* ``"cuda"`` — the paper's target; returns source text;
* ``"c"``    — compiles with the system C compiler and returns a
  callable (the executable path in this GPU-less reproduction);
* ``"python"`` — execs generated numpy source and returns a callable.

Code generation is fast for the same reason the paper's is ("roughly
10 ms"): factors come from the linear n-nacci recurrence, not from
solving correction equations; the dominant cost here is Python-level
list building for large m.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.codegen.cbackend import CompiledCKernel, compile_c_kernel, emit_c
from repro.codegen.cuda import emit_cuda
from repro.codegen.ir import KernelIR, build_ir
from repro.codegen.pybackend import (
    CompiledPythonKernel,
    compile_python_kernel,
    emit_python,
)
from repro.core.errors import CodegenError
from repro.core.recurrence import Recurrence
from repro.gpusim.spec import MachineSpec
from repro.plr.optimizer import OptimizationConfig

__all__ = ["PLRCompiler", "CompilationResult", "BACKENDS"]

BACKENDS = ("cuda", "c", "python")


@dataclass(frozen=True)
class CompilationResult:
    """What one compiler invocation produced."""

    ir: KernelIR
    backend: str
    source: str
    kernel: Callable[[np.ndarray], np.ndarray] | None
    codegen_seconds: float

    @property
    def is_executable(self) -> bool:
        return self.kernel is not None


class PLRCompiler:
    """Translates recurrence signatures into recurrence kernels."""

    def __init__(
        self,
        machine: MachineSpec | None = None,
        optimization: OptimizationConfig | None = None,
    ) -> None:
        self.machine = machine or MachineSpec.titan_x()
        self.optimization = optimization or OptimizationConfig()

    def build_ir(
        self,
        signature: str | Recurrence,
        n: int = 1 << 24,
        dtype: np.dtype | type | None = None,
    ) -> KernelIR:
        recurrence = (
            Recurrence.parse(signature) if isinstance(signature, str) else signature
        )
        return build_ir(
            recurrence,
            n,
            machine=self.machine,
            optimization=self.optimization,
            dtype=dtype,
        )

    def compile(
        self,
        signature: str | Recurrence,
        n: int = 1 << 24,
        backend: str = "cuda",
        dtype: np.dtype | type | None = None,
    ) -> CompilationResult:
        """Compile a signature for an expected input size ``n``.

        ``n`` only influences the plan (m and x); the produced kernel
        accepts any input length.
        """
        if backend not in BACKENDS:
            raise CodegenError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        start = time.perf_counter()
        ir = self.build_ir(signature, n, dtype=dtype)
        kernel: Callable[[np.ndarray], np.ndarray] | None = None
        if backend == "cuda":
            source = emit_cuda(ir)
        elif backend == "c":
            compiled: CompiledCKernel = compile_c_kernel(ir)
            source, kernel = compiled.source, compiled
        else:
            pykernel: CompiledPythonKernel = compile_python_kernel(ir)
            source, kernel = pykernel.source, pykernel
        elapsed = time.perf_counter() - start
        return CompilationResult(
            ir=ir,
            backend=backend,
            source=source,
            kernel=kernel,
            codegen_seconds=elapsed,
        )

    def emit_all(self, signature: str | Recurrence, n: int = 1 << 24) -> dict[str, str]:
        """Source for every backend, keyed by backend name."""
        ir = self.build_ir(signature, n)
        return {
            "cuda": emit_cuda(ir),
            "c": emit_c(ir),
            "python": emit_python(ir),
        }

    def compile_program(
        self,
        signature: str | Recurrence,
        n: int = 1 << 24,
        xs: "tuple[int, ...] | None" = None,
    ) -> CompilationResult:
        """Emit the paper's full multi-kernel CUDA program (section 8).

        One kernel per x in ``xs`` (default: powers of two up to the
        dtype cap plus the cap itself), a single shared factor store
        sized for the largest chunk, and a host main that selects the
        kernel by the smallest-covering-x rule.
        """
        from dataclasses import replace

        from repro.codegen.cuda import emit_cuda_program
        from repro.plr.planner import plan_execution

        start = time.perf_counter()
        recurrence = (
            Recurrence.parse(signature) if isinstance(signature, str) else signature
        )
        if xs is None:
            cap = 11 if recurrence.is_integer else 9
            xs = tuple(x for x in (1, 2, 4, 8) if x < cap) + (cap,)
        base = plan_execution(recurrence.signature, n, self.machine)
        irs = []
        for x in sorted(set(xs)):
            chunk = base.block_size * x
            plan = replace(
                base,
                values_per_thread=x,
                chunk_size=chunk,
                num_chunks=-(-n // chunk),
            )
            irs.append(
                build_ir(
                    recurrence,
                    n,
                    machine=self.machine,
                    optimization=self.optimization,
                    plan=plan,
                )
            )
        source = emit_cuda_program(irs)
        elapsed = time.perf_counter() - start
        return CompilationResult(
            ir=irs[-1],
            backend="cuda",
            source=source,
            kernel=None,
            codegen_seconds=elapsed,
        )
