"""The C backend: emitted code that actually compiles and runs.

The paper's toolchain emits CUDA and runs it on a GPU; without one, the
reproduction still needs an end-to-end *executable* code-generation
path, or the emitters would be write-only artifacts.  This backend
emits C99 implementing the identical algorithm —

* the same FIR map stage,
* the same Phase 1 doubling with the same correction factors, realized
  per the same optimizer decisions (constants folded, periodic lists
  indexed modulo their period, decayed tails suppressed, 0/1 factors as
  conditional adds),
* the same carry-transition propagation and final correction

— parallelized with OpenMP across chunks.  The decoupled-lookback
busy-wait of the GPU version is replaced by a chunk-barrier between the
carry propagation and the bulk correction, which is the natural shape
for a CPU with a handful of cores (the carry spine is O(chunks * k^2)
and not worth pipelining there); the protocol itself is exercised by
:mod:`repro.gpusim.executor`.

The emitted source is compiled with the system C compiler into a shared
object and loaded through ctypes, giving a genuine
signature -> generated code -> machine code -> verified result path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.codegen.ir import KernelIR
from repro.core.errors import BackendError
from repro.plr.optimizer import FactorRealization
from repro.plr.phase2 import transition_matrix

__all__ = ["emit_c", "CompiledCKernel", "compile_c_kernel"]


def _chunked(literals: list[str], per_line: int = 12) -> str:
    lines = []
    for i in range(0, len(literals), per_line):
        lines.append("    " + ", ".join(literals[i : i + per_line]) + ",")
    return "\n".join(lines).rstrip(",")


def _factor_function(ir: KernelIR, j: int) -> str:
    """A C function returning factor j at offset i, realization-aware."""
    decision = ir.factor_plan.decisions[j]
    ctype = ir.c_type
    real = decision.realization
    if real == FactorRealization.CONSTANT:
        return (
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    (void)i;\n    return {ir.literal(decision.constant)};\n}}\n"
        )
    if real == FactorRealization.SHIFT_OF_FIRST:
        scale = ir.literal(decision.scale)
        return (
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    return (i == 0) ? {scale} : {scale} * plr_factor_0(i - 1);\n}}\n"
        )
    if real == FactorRealization.PERIODIC:
        period = decision.period
        lits = ir.factor_row_literals(j, period)
        return (
            f"static const {ctype} plr_factors_{j}[{period}] = {{\n{_chunked(lits)}\n}};\n"
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    return plr_factors_{j}[i % {period}];\n}}\n"
        )
    if real == FactorRealization.TRUNCATED:
        cutoff = max(1, decision.cutoff)
        lits = ir.factor_row_literals(j, cutoff)
        return (
            f"static const {ctype} plr_factors_{j}[{cutoff}] = {{\n{_chunked(lits)}\n}};\n"
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    return (i < {cutoff}) ? plr_factors_{j}[i] : {ir.literal(0)};\n}}\n"
        )
    lits = ir.factor_row_literals(j)
    return (
        f"static const {ctype} plr_factors_{j}[{ir.chunk_size}] = {{\n{_chunked(lits)}\n}};\n"
        f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
        f"    return plr_factors_{j}[i];\n}}\n"
    )


def _correction_statement(ir: KernelIR, j: int, offset: str, carry: str) -> str:
    """One carry's contribution, honoring the zero/one optimization."""
    decision = ir.factor_plan.decisions[j]
    if decision.realization == FactorRealization.CONSTANT:
        const = decision.constant
        if const == 0:
            return ";"
        if const == 1:
            return f"acc += {carry};"
        return f"acc += {ir.literal(const)} * {carry};"
    factor = f"plr_factor_{j}({offset})"
    zero_one = decision.realization == FactorRealization.ZERO_ONE or (
        decision.realization == FactorRealization.PERIODIC
        and ir.factor_plan.config.zero_one_conditional
        and ir.table.is_zero_one(j)
    )
    if zero_one:
        return f"if ({factor}) acc += {carry};"
    return f"acc += {factor} * {carry};"


def emit_c(ir: KernelIR) -> str:
    """Emit the complete C99 translation unit for one kernel plan."""
    ctype = ir.c_type
    k = ir.order
    x = ir.plan.values_per_thread
    sig = ir.recurrence.signature
    active = ir.factor_plan.phase1_active_elements

    factor_functions = [
        f"static inline {ctype} plr_factor_0(long long i);"
        if any(
            d.realization == FactorRealization.SHIFT_OF_FIRST
            for d in ir.factor_plan.decisions
        )
        else ""
    ]
    for j in range(k):
        factor_functions.append(_factor_function(ir, j))

    matrix = transition_matrix(ir.table)
    matrix_rows = ", ".join(
        "{" + ", ".join(ir.literal(v) for v in matrix[r]) + "}" for r in range(k)
    )

    map_stage_lines = []
    if ir.recurrence.has_map_stage:
        ff = ir.feedforward_literals()
        map_stage_lines.append(
            f"        {ctype} acc = {ff[0]} * ((gpos < n) ? input[gpos] : {ir.literal(0)});"
        )
        for d in range(1, len(ff)):
            map_stage_lines.append(
                f"        if (gpos >= {d} && gpos - {d} < n) acc += {ff[d]} * input[gpos - {d}];"
            )
        map_stage_lines.append("        chunk_vals[i] = acc;")
    else:
        map_stage_lines.append(
            f"        chunk_vals[i] = (gpos < n) ? input[gpos] : {ir.literal(0)};"
        )
    map_stage = "\n".join(map_stage_lines)

    fb = ir.feedback_literals()
    local_solve = []
    for j, b in enumerate(fb, start=1):
        local_solve.append(f"            if (i >= lo + {j}) acc += {b} * chunk_vals[i - {j}];")
    local_solve_body = "\n".join(local_solve)

    merge_corrections = "\n".join(
        f"                    {{ {_correction_statement(ir, j, 'i', f'carry[{j}]')} }}"
        for j in range(k)
    )
    final_corrections = "\n".join(
        f"            {{ {_correction_statement(ir, j, 'i', f'prev[{j}]')} }}"
        for j in range(k)
    )

    active_guard = (
        f"                long long limit = width < {active} ? width : {active};"
        if active < ir.chunk_size
        else "                long long limit = width;"
    )

    return f"""\
/* Generated by PLR (reproduction, C backend) -- do not edit.
 * Recurrence signature: {sig}
 * order k={k}, chunk m={ir.chunk_size}, x={x}, dtype={ir.dtype}
 * Factor realizations: {", ".join(d.realization.value for d in ir.factor_plan.decisions)}
 */
#include <stdlib.h>
#include <string.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#define PLR_K {k}
#define PLR_M {ir.chunk_size}
#define PLR_X {x}

{chr(10).join(f for f in factor_functions if f)}
static const {ctype} plr_carry_matrix[PLR_K][PLR_K] = {{ {matrix_rows} }};

/* Phase 1 for one chunk: thread-local solve then pairwise doubling. */
static void plr_phase1_chunk(const {ctype} *input, {ctype} *chunk_vals,
                             long long base, long long n) {{
    for (long long i = 0; i < PLR_M; i++) {{
        long long gpos = base + i;
{map_stage}
    }}
    /* thread-local serial solve over each width-PLR_X cell */
    for (long long lo = 0; lo < PLR_M; lo += PLR_X) {{
        for (long long i = lo + 1; i < lo + PLR_X; i++) {{
            {ctype} acc = chunk_vals[i];
{local_solve_body}
            chunk_vals[i] = acc;
        }}
    }}
    /* doubling merges: widths PLR_X, 2*PLR_X, ..., PLR_M/2 */
    for (long long width = PLR_X; width < PLR_M; width <<= 1) {{
        for (long long border = width; border < PLR_M; border += 2 * width) {{
            {ctype} carry[PLR_K];
            for (int j = 0; j < PLR_K; j++)
                carry[j] = (j < width) ? chunk_vals[border - 1 - j] : {ir.literal(0)};
            {{
{active_guard}
                for (long long i = 0; i < limit; i++) {{
                    {ctype} acc = 0;
{merge_corrections}
                    chunk_vals[border + i] += acc;
                }}
            }}
        }}
    }}
}}

void plr_compute(const {ctype} *input, {ctype} *output, long long n) {{
    if (n <= 0) return;
    long long chunks = (n + PLR_M - 1) / PLR_M;
    {ctype} *work = ({ctype} *)malloc((size_t)chunks * PLR_M * sizeof({ctype}));
    {ctype} *local = ({ctype} *)malloc((size_t)chunks * PLR_K * sizeof({ctype}));
    {ctype} *global = ({ctype} *)malloc((size_t)chunks * PLR_K * sizeof({ctype}));

    /* Phase 1 over all chunks (embarrassingly parallel). */
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (long long c = 0; c < chunks; c++) {{
        plr_phase1_chunk(input, work + c * PLR_M, c * PLR_M, n);
        for (int j = 0; j < PLR_K; j++)
            local[c * PLR_K + j] = work[c * PLR_M + PLR_M - 1 - j];
    }}

    /* Carry spine: G_c = L_c + M * G_(c-1).  O(chunks * k^2). */
    for (int j = 0; j < PLR_K; j++) global[j] = local[j];
    for (long long c = 1; c < chunks; c++) {{
        for (int r = 0; r < PLR_K; r++) {{
            {ctype} acc = local[c * PLR_K + r];
            for (int j = 0; j < PLR_K; j++)
                acc += plr_carry_matrix[r][j] * global[(c - 1) * PLR_K + j];
            global[c * PLR_K + r] = acc;
        }}
    }}

    /* Phase 2 bulk correction (embarrassingly parallel). */
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (long long c = 0; c < chunks; c++) {{
        const {ctype} *prev = (c > 0) ? global + (c - 1) * PLR_K : 0;
        {ctype} *chunk_vals = work + c * PLR_M;
        if (prev) {{
            for (long long i = 0; i < PLR_M; i++) {{
                {ctype} acc = 0;
{final_corrections}
                chunk_vals[i] += acc;
            }}
        }}
        long long lo = c * PLR_M;
        long long count = (lo + PLR_M <= n) ? PLR_M : (n - lo);
        memcpy(output + lo, chunk_vals, (size_t)count * sizeof({ctype}));
    }}

    free(work);
    free(local);
    free(global);
}}
"""


@dataclass
class CompiledCKernel:
    """A compiled-and-loaded generated kernel, callable from numpy."""

    ir: KernelIR
    source: str
    library_path: Path
    _lib: ctypes.CDLL

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.ascontiguousarray(values, dtype=self.ir.dtype)
        out = np.empty_like(values)
        self._lib.plr_compute(
            values.ctypes.data_as(ctypes.c_void_p),
            out.ctypes.data_as(ctypes.c_void_p),
            ctypes.c_longlong(values.size),
        )
        return out


def _find_compiler() -> str:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    raise BackendError("no C compiler found (tried cc, gcc, clang)")


def compile_c_kernel(
    ir: KernelIR, workdir: str | os.PathLike | None = None
) -> CompiledCKernel:
    """Emit, compile (with OpenMP when available), and load a kernel."""
    source = emit_c(ir)
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    base = Path(workdir) if workdir else Path(tempfile.gettempdir()) / "plr_cgen"
    base.mkdir(parents=True, exist_ok=True)
    c_path = base / f"plr_{digest}.c"
    so_path = base / f"plr_{digest}.so"
    c_path.write_text(source)

    if not so_path.exists():
        compiler = _find_compiler()
        cmd = [compiler, "-O2", "-fPIC", "-shared", str(c_path), "-o", str(so_path)]
        attempt = subprocess.run(
            cmd[:1] + ["-fopenmp"] + cmd[1:], capture_output=True, text=True
        )
        if attempt.returncode != 0:
            attempt = subprocess.run(cmd, capture_output=True, text=True)
        if attempt.returncode != 0:
            raise BackendError(
                f"C compilation failed:\n{attempt.stderr}\n(source at {c_path})"
            )

    lib = ctypes.CDLL(str(so_path))
    lib.plr_compute.restype = None
    lib.plr_compute.argtypes = [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_longlong]
    return CompiledCKernel(ir=ir, source=source, library_path=so_path, _lib=lib)
