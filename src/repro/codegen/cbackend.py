"""The C backend: emitted code that actually compiles and runs.

The paper's toolchain emits CUDA and runs it on a GPU; without one, the
reproduction still needs an end-to-end *executable* code-generation
path, or the emitters would be write-only artifacts.  This backend
emits C99 implementing the identical algorithm —

* the same FIR map stage,
* the same Phase 1 doubling with the same correction factors, realized
  per the same optimizer decisions (constants folded, periodic lists
  indexed modulo their period, decayed tails suppressed, 0/1 factors as
  conditional adds),
* the same carry-transition propagation and final correction

— parallelized with OpenMP across chunks.  The decoupled-lookback
busy-wait of the GPU version is replaced by a chunk-barrier between the
carry propagation and the bulk correction, which is the natural shape
for a CPU with a handful of cores (the carry spine is O(chunks * k^2)
and not worth pipelining there); the protocol itself is exercised by
:mod:`repro.gpusim.executor`.

The emitted source is compiled with the system C compiler into a shared
object and loaded through ctypes, giving a genuine
signature -> generated code -> machine code -> verified result path.

Compiled objects are cached on disk as ``plr_<digest>.so`` under
:func:`default_cache_dir`.  The digest covers the emitted source, the
compiler's real path and ``--version`` banner, the exact flag set, and
the dtype/chunk-size pair, so a toolchain swap or flag change can never
resurrect a stale binary.  Publication is atomic (compile to a unique
temp file, then ``os.replace``): concurrent processes race benignly —
first writer wins, later writers replace it with a byte-equivalent
object — and a reader can never load a half-written ``.so``.  A
corrupt cache entry (e.g. left by a compile killed before this
hardening) fails its load-time validation and is recompiled in place.
See ``docs/native.md`` for the cache layout and how to clear it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.codegen.ir import KernelIR
from repro.core.errors import BackendError
from repro.plr.optimizer import FactorRealization
from repro.plr.phase2 import transition_matrix

__all__ = [
    "emit_c",
    "CompiledCKernel",
    "compile_c_kernel",
    "default_cache_dir",
    "kernel_digest",
    "load_kernel_library",
]


def _chunked(literals: list[str], per_line: int = 12) -> str:
    lines = []
    for i in range(0, len(literals), per_line):
        lines.append("    " + ", ".join(literals[i : i + per_line]) + ",")
    return "\n".join(lines).rstrip(",")


def _factor_function(ir: KernelIR, j: int) -> str:
    """A C function returning factor j at offset i, realization-aware."""
    decision = ir.factor_plan.decisions[j]
    ctype = ir.c_type
    real = decision.realization
    if real == FactorRealization.CONSTANT:
        return (
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    (void)i;\n    return {ir.literal(decision.constant)};\n}}\n"
        )
    if real == FactorRealization.SHIFT_OF_FIRST:
        scale = ir.literal(decision.scale)
        return (
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    return (i == 0) ? {scale} : {scale} * plr_factor_0(i - 1);\n}}\n"
        )
    if real == FactorRealization.PERIODIC:
        period = decision.period
        lits = ir.factor_row_literals(j, period)
        return (
            f"static const {ctype} plr_factors_{j}[{period}] = {{\n{_chunked(lits)}\n}};\n"
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    return plr_factors_{j}[i % {period}];\n}}\n"
        )
    if real == FactorRealization.TRUNCATED:
        cutoff = max(1, decision.cutoff)
        lits = ir.factor_row_literals(j, cutoff)
        return (
            f"static const {ctype} plr_factors_{j}[{cutoff}] = {{\n{_chunked(lits)}\n}};\n"
            f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
            f"    return (i < {cutoff}) ? plr_factors_{j}[i] : {ir.literal(0)};\n}}\n"
        )
    lits = ir.factor_row_literals(j)
    return (
        f"static const {ctype} plr_factors_{j}[{ir.chunk_size}] = {{\n{_chunked(lits)}\n}};\n"
        f"static inline {ctype} plr_factor_{j}(long long i) {{\n"
        f"    return plr_factors_{j}[i];\n}}\n"
    )


def _correction_statement(ir: KernelIR, j: int, offset: str, carry: str) -> str:
    """One carry's contribution, honoring the zero/one optimization."""
    decision = ir.factor_plan.decisions[j]
    if decision.realization == FactorRealization.CONSTANT:
        const = decision.constant
        if const == 0:
            return ";"
        if const == 1:
            return f"acc += {carry};"
        return f"acc += {ir.literal(const)} * {carry};"
    factor = f"plr_factor_{j}({offset})"
    zero_one = decision.realization == FactorRealization.ZERO_ONE or (
        decision.realization == FactorRealization.PERIODIC
        and ir.factor_plan.config.zero_one_conditional
        and ir.table.is_zero_one(j)
    )
    if zero_one:
        return f"if ({factor}) acc += {carry};"
    return f"acc += {factor} * {carry};"


def emit_c(ir: KernelIR) -> str:
    """Emit the complete C99 translation unit for one kernel plan."""
    ctype = ir.c_type
    k = ir.order
    x = ir.plan.values_per_thread
    sig = ir.recurrence.signature
    active = ir.factor_plan.phase1_active_elements

    factor_functions = [
        f"static inline {ctype} plr_factor_0(long long i);"
        if any(
            d.realization == FactorRealization.SHIFT_OF_FIRST
            for d in ir.factor_plan.decisions
        )
        else ""
    ]
    for j in range(k):
        factor_functions.append(_factor_function(ir, j))

    matrix = transition_matrix(ir.table)
    matrix_rows = ", ".join(
        "{" + ", ".join(ir.literal(v) for v in matrix[r]) + "}" for r in range(k)
    )

    map_stage_lines = []
    if ir.recurrence.has_map_stage:
        ff = ir.feedforward_literals()
        map_stage_lines.append(
            f"        {ctype} acc = {ff[0]} * ((gpos < n) ? input[gpos] : {ir.literal(0)});"
        )
        for d in range(1, len(ff)):
            map_stage_lines.append(
                f"        if (gpos >= {d} && gpos - {d} < n) acc += {ff[d]} * input[gpos - {d}];"
            )
        map_stage_lines.append("        chunk_vals[i] = acc;")
    else:
        map_stage_lines.append(
            f"        chunk_vals[i] = (gpos < n) ? input[gpos] : {ir.literal(0)};"
        )
    map_stage = "\n".join(map_stage_lines)

    fb = ir.feedback_literals()
    local_solve = []
    for j, b in enumerate(fb, start=1):
        local_solve.append(f"            if (i >= lo + {j}) acc += {b} * chunk_vals[i - {j}];")
    local_solve_body = "\n".join(local_solve)

    merge_corrections = "\n".join(
        f"                    {{ {_correction_statement(ir, j, 'i', f'carry[{j}]')} }}"
        for j in range(k)
    )
    final_corrections = "\n".join(
        f"            {{ {_correction_statement(ir, j, 'i', f'prev[{j}]')} }}"
        for j in range(k)
    )

    active_guard = (
        f"                long long limit = width < {active} ? width : {active};"
        if active < ir.chunk_size
        else "                long long limit = width;"
    )

    return f"""\
/* Generated by PLR (reproduction, C backend) -- do not edit.
 * Recurrence signature: {sig}
 * order k={k}, chunk m={ir.chunk_size}, x={x}, dtype={ir.dtype}
 * Factor realizations: {", ".join(d.realization.value for d in ir.factor_plan.decisions)}
 */
#include <stdlib.h>
#include <string.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#define PLR_K {k}
#define PLR_M {ir.chunk_size}
#define PLR_X {x}

{chr(10).join(f for f in factor_functions if f)}
static const {ctype} plr_carry_matrix[PLR_K][PLR_K] = {{ {matrix_rows} }};

/* Phase 1 for one chunk: thread-local solve then pairwise doubling. */
static void plr_phase1_chunk(const {ctype} *input, {ctype} *chunk_vals,
                             long long base, long long n) {{
    for (long long i = 0; i < PLR_M; i++) {{
        long long gpos = base + i;
{map_stage}
    }}
    /* thread-local serial solve over each width-PLR_X cell */
    for (long long lo = 0; lo < PLR_M; lo += PLR_X) {{
        for (long long i = lo + 1; i < lo + PLR_X; i++) {{
            {ctype} acc = chunk_vals[i];
{local_solve_body}
            chunk_vals[i] = acc;
        }}
    }}
    /* doubling merges: widths PLR_X, 2*PLR_X, ..., PLR_M/2 */
    for (long long width = PLR_X; width < PLR_M; width <<= 1) {{
        for (long long border = width; border < PLR_M; border += 2 * width) {{
            {ctype} carry[PLR_K];
            for (int j = 0; j < PLR_K; j++)
                carry[j] = (j < width) ? chunk_vals[border - 1 - j] : {ir.literal(0)};
            {{
{active_guard}
                for (long long i = 0; i < limit; i++) {{
                    {ctype} acc = 0;
{merge_corrections}
                    chunk_vals[border + i] += acc;
                }}
            }}
        }}
    }}
}}

void plr_compute(const {ctype} *input, {ctype} *output, long long n) {{
    if (n <= 0) return;
    long long chunks = (n + PLR_M - 1) / PLR_M;
    {ctype} *work = ({ctype} *)malloc((size_t)chunks * PLR_M * sizeof({ctype}));
    {ctype} *local = ({ctype} *)malloc((size_t)chunks * PLR_K * sizeof({ctype}));
    {ctype} *global = ({ctype} *)malloc((size_t)chunks * PLR_K * sizeof({ctype}));

    /* Phase 1 over all chunks (embarrassingly parallel). */
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (long long c = 0; c < chunks; c++) {{
        plr_phase1_chunk(input, work + c * PLR_M, c * PLR_M, n);
        for (int j = 0; j < PLR_K; j++)
            local[c * PLR_K + j] = work[c * PLR_M + PLR_M - 1 - j];
    }}

    /* Carry spine: G_c = L_c + M * G_(c-1).  O(chunks * k^2). */
    for (int j = 0; j < PLR_K; j++) global[j] = local[j];
    for (long long c = 1; c < chunks; c++) {{
        for (int r = 0; r < PLR_K; r++) {{
            {ctype} acc = local[c * PLR_K + r];
            for (int j = 0; j < PLR_K; j++)
                acc += plr_carry_matrix[r][j] * global[(c - 1) * PLR_K + j];
            global[c * PLR_K + r] = acc;
        }}
    }}

    /* Phase 2 bulk correction (embarrassingly parallel). */
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (long long c = 0; c < chunks; c++) {{
        const {ctype} *prev = (c > 0) ? global + (c - 1) * PLR_K : 0;
        {ctype} *chunk_vals = work + c * PLR_M;
        if (prev) {{
            for (long long i = 0; i < PLR_M; i++) {{
                {ctype} acc = 0;
{final_corrections}
                chunk_vals[i] += acc;
            }}
        }}
        long long lo = c * PLR_M;
        long long count = (lo + PLR_M <= n) ? PLR_M : (n - lo);
        memcpy(output + lo, chunk_vals, (size_t)count * sizeof({ctype}));
    }}

    free(work);
    free(local);
    free(global);
}}
"""


@dataclass
class CompiledCKernel:
    """A compiled-and-loaded generated kernel, callable from numpy."""

    ir: KernelIR
    source: str
    library_path: Path
    _lib: ctypes.CDLL
    digest: str = ""

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise BackendError(
                f"native kernel expects a 1-D array, got shape {values.shape}"
            )
        if values.size == 0:
            raise BackendError(
                "native kernel expects a non-empty array (length-0 inputs "
                "are handled by the numpy path before reaching a kernel)"
            )
        values = np.ascontiguousarray(values, dtype=self.ir.dtype)
        out = np.empty_like(values)
        self._lib.plr_compute(
            values.ctypes.data_as(ctypes.c_void_p),
            out.ctypes.data_as(ctypes.c_void_p),
            ctypes.c_longlong(values.size),
        )
        return out


_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

# Base flag set.  -fwrapv makes signed-integer overflow wrap (two's
# complement) instead of being undefined: the integer recurrences are
# ring arithmetic and must match numpy's wraparound bit for bit.
_BASE_FLAGS = ("-O2", "-fPIC", "-shared", "-fwrapv")

# OpenMP support per compiler realpath, probed once per process.
_OPENMP_SUPPORT: dict[str, bool] = {}


def _find_compiler() -> str:
    for candidate in _COMPILER_CANDIDATES:
        path = shutil.which(candidate)
        if path:
            return path
    raise BackendError(
        f"no C compiler found (tried {', '.join(_COMPILER_CANDIDATES)})"
    )


def _compiler_version(compiler: str) -> str:
    """First line of ``<compiler> --version`` — the toolchain identity."""
    try:
        proc = subprocess.run(
            [compiler, "--version"], capture_output=True, text=True, timeout=30
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    text = (proc.stdout or proc.stderr or "").strip()
    return text.splitlines()[0] if text else "unknown"


def _openmp_supported(compiler: str) -> bool:
    """Whether the compiler accepts -fopenmp, probed on a trivial TU.

    The probe runs once per compiler per process.  Knowing the answer
    *before* compiling a kernel means the final flag set is fixed up
    front and can be part of the cache digest — the old try-with-then-
    without dance made ``-fopenmp`` availability invisible to the cache
    key, so toolchain changes silently reused stale binaries.
    """
    real = os.path.realpath(compiler)
    cached = _OPENMP_SUPPORT.get(real)
    if cached is not None:
        return cached
    with tempfile.TemporaryDirectory(prefix="plr_omp_probe_") as tmp:
        probe = Path(tmp) / "probe.c"
        probe.write_text("int plr_probe(void) { return 0; }\n")
        proc = subprocess.run(
            [compiler, "-fopenmp", "-fPIC", "-shared", str(probe),
             "-o", str(Path(tmp) / "probe.so")],
            capture_output=True,
            text=True,
        )
        ok = proc.returncode == 0
    _OPENMP_SUPPORT[real] = ok
    return ok


def default_cache_dir() -> Path:
    """Where compiled kernels live: $PLR_NATIVE_CACHE_DIR or the tmpdir."""
    env = os.environ.get("PLR_NATIVE_CACHE_DIR")
    return Path(env) if env else Path(tempfile.gettempdir()) / "plr_cgen"


def kernel_digest(
    source: str,
    compiler: str,
    flags: tuple[str, ...],
    dtype: np.dtype,
    chunk_size: int,
) -> str:
    """The cache key: source + toolchain identity + flags + shape.

    dtype and chunk size are already baked into the source, but they are
    hashed explicitly so the key's coverage doesn't depend on the header
    comment the emitter happens to write.
    """
    h = hashlib.sha256()
    parts = (
        source,
        os.path.realpath(compiler),
        _compiler_version(compiler),
        "\x1f".join(flags),
        np.dtype(dtype).str,
        str(chunk_size),
    )
    for part in parts:
        h.update(part.encode("utf-8", "replace"))
        h.update(b"\x00")
    return h.hexdigest()[:16]


def load_kernel_library(so_path: str | os.PathLike) -> ctypes.CDLL:
    """Load a compiled kernel and validate its entry point.

    Raises a typed :class:`BackendError` both when the object cannot be
    loaded (truncated/corrupt file) and when it loads but does not
    export ``plr_compute`` — callers never see a raw ``OSError`` or
    ``AttributeError`` from the ctypes layer.
    """
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError as exc:
        raise BackendError(f"failed to load native kernel {so_path}: {exc}") from exc
    try:
        entry = lib.plr_compute
    except AttributeError:
        raise BackendError(
            f"native kernel {so_path} does not export the 'plr_compute' symbol"
        ) from None
    entry.restype = None
    entry.argtypes = [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_longlong]
    return lib


def _atomic_write_text(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def compile_c_kernel(
    ir: KernelIR,
    workdir: str | os.PathLike | None = None,
    extra_flags: tuple[str, ...] = (),
) -> CompiledCKernel:
    """Emit, compile (with OpenMP when available), and load a kernel.

    The compile goes to a unique temp file that is ``os.replace``d into
    ``plr_<digest>.so`` only once it is complete, so a concurrent or
    killed compile can never leave a partially written object under the
    published name.  An existing entry that fails to load (corrupt
    leftovers from before this hardening) is recompiled in place.
    """
    source = emit_c(ir)
    compiler = _find_compiler()
    flags = list(_BASE_FLAGS)
    if _openmp_supported(compiler):
        flags.insert(0, "-fopenmp")
    flags.extend(extra_flags)
    digest = kernel_digest(source, compiler, tuple(flags), ir.dtype, ir.chunk_size)
    base = Path(workdir) if workdir else default_cache_dir()
    base.mkdir(parents=True, exist_ok=True)
    so_path = base / f"plr_{digest}.so"

    lib = None
    if so_path.exists():
        try:
            lib = load_kernel_library(so_path)
        except BackendError:
            lib = None
    if lib is None:
        c_path = base / f"plr_{digest}.c"
        _atomic_write_text(c_path, source)
        fd, tmp_so = tempfile.mkstemp(dir=base, prefix=f"plr_{digest}.", suffix=".so.tmp")
        os.close(fd)
        try:
            attempt = subprocess.run(
                [compiler, *flags, str(c_path), "-o", tmp_so],
                capture_output=True,
                text=True,
            )
            if attempt.returncode != 0:
                raise BackendError(
                    f"C compilation failed ({compiler} {' '.join(flags)}):\n"
                    f"{attempt.stderr}\n(source at {c_path})"
                )
            os.replace(tmp_so, so_path)
        finally:
            if os.path.exists(tmp_so):
                os.unlink(tmp_so)
        lib = load_kernel_library(so_path)
    return CompiledCKernel(
        ir=ir, source=source, library_path=so_path, _lib=lib, digest=digest
    )
