"""Runtime compile-and-load: the layer behind ``backend="native"``.

The C backend (:mod:`repro.codegen.cbackend`) can turn a
:class:`~repro.codegen.ir.KernelIR` into a loaded shared object; this
module makes that a *hot path* rather than a one-shot artifact:

* a process-global in-memory kernel cache keyed by the IR's structural
  identity (recursive signature, chunk size, values-per-thread, dtype,
  optimization config) so a serving loop pays the emit+compile cost at
  most once per kernel shape — subsequent solves are a dict lookup;
* the hardened on-disk cache underneath (atomic publication, toolchain-
  aware digest) shared across processes and survivable across restarts;
* :func:`native_available` for cheap "is there a compiler at all?"
  gating, and :class:`NativeAttempt` records describing what the native
  path did for one solve — used, or degraded to numpy and why.

Failures are *never* cached: a solve that cannot get a kernel raises a
typed :class:`~repro.core.errors.BackendError` (or
:class:`~repro.core.errors.CodegenError` for unsupported dtypes) and the
caller degrades to the numpy path; if a compiler appears later, the next
attempt simply succeeds.  ``native.compiles`` / ``native.kernel_hits`` /
``native.fallbacks`` counters on the global metrics registry track the
cache behaviour.  See ``docs/native.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.codegen import cbackend
from repro.codegen.cbackend import CompiledCKernel
from repro.codegen.ir import KernelIR
from repro.core.errors import BackendError
from repro.obs.metrics import global_metrics

__all__ = [
    "NativeAttempt",
    "clear_native_cache",
    "native_available",
    "native_kernel",
]


@dataclass(frozen=True)
class NativeAttempt:
    """What the native path did for one solve.

    Attributes
    ----------
    used:
        True when the solve ran through a compiled kernel; False when it
        degraded to the numpy path.
    digest:
        The kernel's cache digest (``plr_<digest>.so``) when used.
    library_path:
        The loaded shared object when used.
    sharded:
        True when the kernel ran per-slab under the multicore sharded
        backend rather than in-process.
    error:
        The typed error message that forced the numpy fallback, empty
        when ``used``.
    """

    used: bool
    digest: str = ""
    library_path: str = ""
    sharded: bool = False
    error: str = ""


_KERNELS: dict[tuple, CompiledCKernel] = {}
_LOCK = threading.Lock()


def native_available() -> bool:
    """Whether a C compiler is on PATH (cheap; no compilation)."""
    try:
        cbackend._find_compiler()
        return True
    except BackendError:
        return False


def _kernel_key(ir: KernelIR, workdir) -> tuple:
    # The emitted source is a pure function of these — hashing them is
    # much cheaper than emitting ~chunk_size factor literals per solve.
    return (
        str(ir.recurrence.signature),
        ir.plan.chunk_size,
        ir.plan.values_per_thread,
        np.dtype(ir.dtype).str,
        ir.factor_plan.config,
        str(workdir) if workdir is not None else None,
    )


def native_kernel(ir: KernelIR, workdir=None) -> CompiledCKernel:
    """A compiled kernel for ``ir``, memoized in-process.

    Raises :class:`~repro.core.errors.BackendError` when no compiler is
    found or the compile fails, and
    :class:`~repro.core.errors.CodegenError` for dtypes the C backend
    cannot spell; neither outcome is cached, so a toolchain appearing
    later is picked up by the next call.
    """
    key = _kernel_key(ir, workdir)
    with _LOCK:
        kernel = _KERNELS.get(key)
    if kernel is not None:
        global_metrics().counter("native.kernel_hits").inc()
        return kernel
    kernel = cbackend.compile_c_kernel(ir, workdir=workdir)
    global_metrics().counter("native.compiles").inc()
    with _LOCK:
        _KERNELS[key] = kernel
    return kernel


def clear_native_cache(disk: bool = False) -> int:
    """Drop the in-memory kernel cache; optionally the disk cache too.

    Kernels are immutable and rebuilt on demand, so clearing is always
    safe.  With ``disk=True`` every ``plr_*`` artifact under
    :func:`~repro.codegen.cbackend.default_cache_dir` is removed as well
    (already-loaded kernels keep working — the object stays mapped).
    Returns the number of in-memory entries dropped.
    """
    with _LOCK:
        dropped = len(_KERNELS)
        _KERNELS.clear()
    if disk:
        base = cbackend.default_cache_dir()
        if base.is_dir():
            for path in base.glob("plr_*"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
    return dropped
