"""The CUDA emitter: signature in, .cu source out (Section 3).

The emitted program follows the paper's eight code sections:

1. constant correction-factor arrays (shaped by the optimizer: folded
   constants, periodic patterns, truncated tails, zero/one handling);
2. kernel prologue — atomic chunk-id acquisition and input loading;
3. the FIR map stage eliminating the feed-forward coefficients;
4. Phase 1 — thread-local solve, warp-level merging with
   ``__shfl_sync``, then cross-warp merging through shared memory;
5. local-carry publication with ``__threadfence`` and a ready flag;
6. variable look-back — warp-cooperative flag polling, carry
   combination through the transition matrix, global-carry publication;
7. chunk correction and result write-out;
8. a host ``main`` that allocates, launches, times, and verifies the
   kernel against the serial CPU code.

Without an NVIDIA toolchain we cannot execute this artifact; tests
validate it structurally (all sections present, balanced braces,
factor literals exactly matching the table, optimization decisions
reflected in the emitted accessors) and validate the *logic* through
the C backend, which emits the same algorithm for a target we can run.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.ir import KernelIR
from repro.plr.optimizer import FactorRealization
from repro.plr.phase2 import transition_matrix

__all__ = ["emit_cuda", "emit_cuda_program"]

_FLAG_LOCAL = 1
_FLAG_GLOBAL = 2


def _chunked_literals(literals: list[str], per_line: int = 12) -> str:
    lines = []
    for i in range(0, len(literals), per_line):
        lines.append("    " + ", ".join(literals[i : i + per_line]) + ",")
    text = "\n".join(lines)
    return text[:-1] if text.endswith(",") else text


def _emit_factor_storage(ir: KernelIR) -> str:
    """Section 1: the constant factor arrays, realization-aware."""
    out = ["// ---- Section 1: correction factors (n-nacci sequences) ----"]
    for decision in ir.factor_plan.decisions:
        j = decision.carry_index
        real = decision.realization
        if real == FactorRealization.CONSTANT:
            out.append(
                f"#define PLR_FACTOR_{j}_CONST {ir.literal(decision.constant)} "
                f"// all m factors identical; array suppressed"
            )
        elif real == FactorRealization.SHIFT_OF_FIRST:
            out.append(
                f"// factor list {j} is b_k * (list 0 shifted by one); array suppressed"
            )
            out.append(f"#define PLR_FACTOR_{j}_SCALE {ir.literal(decision.scale)}")
        elif real == FactorRealization.PERIODIC:
            lits = ir.factor_row_literals(j, decision.period)
            out.append(
                f"__device__ const {ir.c_type} plr_factors_{j}[{decision.period}] = {{"
                f" // period {decision.period} of {ir.chunk_size}"
            )
            out.append(_chunked_literals(lits))
            out.append("};")
        elif real == FactorRealization.TRUNCATED:
            cutoff = max(1, decision.cutoff)
            lits = ir.factor_row_literals(j, cutoff)
            out.append(
                f"__device__ const {ir.c_type} plr_factors_{j}[{cutoff}] = {{"
                f" // decays to zero at index {decision.cutoff}; tail suppressed"
            )
            out.append(_chunked_literals(lits))
            out.append("};")
        else:  # ZERO_ONE, BUFFERED_ARRAY, GLOBAL_ARRAY keep the full list
            lits = ir.factor_row_literals(j)
            out.append(
                f"__device__ const {ir.c_type} plr_factors_{j}[{ir.chunk_size}] = {{"
            )
            out.append(_chunked_literals(lits))
            out.append("};")
    # The k-by-k carry transition matrix for the look-back combination.
    matrix = transition_matrix(ir.table)
    k = ir.order
    rows = []
    for r in range(k):
        rows.append("{" + ", ".join(ir.literal(v) for v in matrix[r]) + "}")
    out.append(
        f"__device__ const {ir.c_type} plr_carry_matrix[{k}][{k}] = {{"
        + ", ".join(rows)
        + "};"
    )
    return "\n".join(out)


def _emit_factor_accessor(ir: KernelIR) -> str:
    """Device functions mapping (carry, offset) -> factor value."""
    out = ["// Factor accessors reflect the optimizer's realizations."]
    buffered = ir.factor_plan.shared_buffer_elements
    for decision in ir.factor_plan.decisions:
        j = decision.carry_index
        real = decision.realization
        body: str
        if real == FactorRealization.CONSTANT:
            body = f"    return PLR_FACTOR_{j}_CONST;"
        elif real == FactorRealization.SHIFT_OF_FIRST:
            body = (
                f"    return (i == 0) ? PLR_FACTOR_{j}_SCALE\n"
                f"                    : PLR_FACTOR_{j}_SCALE * plr_factor_0(i - 1, s_factors);"
            )
        elif real == FactorRealization.PERIODIC:
            body = f"    return plr_factors_{j}[i % {decision.period}];"
        elif real == FactorRealization.TRUNCATED:
            cutoff = max(1, decision.cutoff)
            body = (
                f"    return (i < {cutoff}) ? plr_factors_{j}[i] : {ir.literal(0)};"
            )
        elif real == FactorRealization.BUFFERED_ARRAY and buffered:
            body = (
                f"    return (i < {buffered}) ? s_factors[{j}][i] : plr_factors_{j}[i];"
            )
        else:  # GLOBAL_ARRAY or ZERO_ONE without buffering
            body = f"    return plr_factors_{j}[i];"
        out.append(
            f"static __device__ __forceinline__ {ir.c_type} plr_factor_{j}"
            f"(int i, const {ir.c_type} s_factors[][{max(buffered, 1)}]) {{\n{body}\n}}"
        )
    return "\n".join(out)


def _emit_correction_expr(ir: KernelIR, j: int, offset: str, carry: str) -> str:
    """One carry's correction term, using a conditional add for 0/1 rows."""
    decision = ir.factor_plan.decisions[j]
    if decision.realization == FactorRealization.CONSTANT:
        const = decision.constant
        if const == 0:
            return ""
        if const == 1:
            return f"acc += {carry};"
        return f"acc += PLR_FACTOR_{j}_CONST * {carry};"
    factor = f"plr_factor_{j}({offset}, s_factors)"
    if decision.realization == FactorRealization.ZERO_ONE or (
        decision.realization == FactorRealization.PERIODIC
        and ir.table.is_zero_one(j)
        and ir.factor_plan.config.zero_one_conditional
    ):
        return f"if ({factor} != 0) acc += {carry}; /* 0/1 factors: no multiply */"
    return f"acc += {factor} * {carry};"


def _emit_map_stage(ir: KernelIR) -> str:
    """Section 3: eliminate the feed-forward coefficients."""
    sig = ir.recurrence.signature
    if not ir.recurrence.has_map_stage:
        return "    // Section 3: map stage elided — signature is (1 : ...).\n"
    ff = ir.feedforward_literals()
    lines = [
        "    // ---- Section 3: FIR map stage t[i] = sum_j a_j x[i-j] ----",
        "    {",
        f"        {ir.c_type} mapped[PLR_X];",
        "        for (int i = 0; i < PLR_X; i++) {",
        f"            long long gpos = base + (long long)tid * PLR_X + i;",
        f"            {ir.c_type} acc = {ff[0]} * v[i];",
    ]
    for d in range(1, len(ff)):
        lines.append(
            f"            acc += (gpos >= {d}) ? {ff[d]} * plr_load_input(input, gpos - {d}, n) : {ir.literal(0)};"
        )
    lines += [
        "            mapped[i] = acc;",
        "        }",
        "        for (int i = 0; i < PLR_X; i++) v[i] = mapped[i];",
        "    }",
        "",
    ]
    return "\n".join(lines)


def _emit_thread_local(ir: KernelIR) -> str:
    fb = ir.feedback_literals()
    lines = [
        "    // Thread-local serial solve over this thread's PLR_X registers.",
        "    for (int i = 1; i < PLR_X; i++) {",
        f"        {ir.c_type} acc = v[i];",
    ]
    for j, b in enumerate(fb, start=1):
        lines.append(f"        if (i >= {j}) acc += {b} * v[i - {j}];")
    lines += ["        v[i] = acc;", "    }", ""]
    return "\n".join(lines)


def _emit_warp_phase(ir: KernelIR) -> str:
    k = ir.order
    lines = [
        "    // ---- Section 4a: Phase 1 within the warp via shuffles ----",
        "    for (int g = 1; g < PLR_WARP; g <<= 1) {",
        "        int pairbase = lane & ~(2 * g - 1);",
        "        bool second = (lane & g) != 0;",
        f"        {ir.c_type} carry[PLR_K];",
        "        for (int j = 0; j < PLR_K; j++) {",
        "            int cpos = (pairbase + g) * PLR_X - 1 - j;  // donor value index",
        "            int clane = cpos / PLR_X;",
        "            int creg  = cpos - clane * PLR_X;",
        f"            {ir.c_type} got = ({ir.c_type})0;",
        "            for (int r = 0; r < PLR_X; r++) {  // lockstep register select",
        f"                {ir.c_type} cand = __shfl_sync(0xffffffffu, v[r], clane);",
        "                if (r == creg) got = cand;",
        "            }",
        "            carry[j] = (cpos >= pairbase * PLR_X) ? got : " + ir.literal(0) + ";",
        "        }",
        "        if (second) {",
        "            int chunkoff = (lane - pairbase - g) * PLR_X;",
        "            for (int i = 0; i < PLR_X; i++) {",
        f"                {ir.c_type} acc = ({ir.c_type})0;",
    ]
    for j in range(k):
        expr = _emit_correction_expr(ir, j, "chunkoff + i", f"carry[{j}]")
        if expr:
            lines.append(
                f"                if (chunkoff + i >= 0 && {j} < g * PLR_X) {{ {expr} }}"
            )
    lines += [
        "                v[i] += acc;",
        "            }",
        "        }",
        "        __syncwarp();",
        "    }",
        "",
    ]
    return "\n".join(lines)


def _emit_block_phase(ir: KernelIR) -> str:
    k = ir.order
    active = ir.factor_plan.phase1_active_elements
    lines = [
        "    // ---- Section 4b: Phase 1 across warps via shared memory ----",
        "    for (int G = 1; G < PLR_WARPS; G <<= 1) {",
        "        // Every warp stages its last PLR_K values.",
        "        for (int j = 0; j < PLR_K; j++) {",
        "            int cpos = (warp + 1) * PLR_WARP * PLR_X - 1 - j;",
        "            int clane = (cpos / PLR_X) - warp * PLR_WARP;",
        "            int creg  = cpos - (cpos / PLR_X) * PLR_X;",
        "            if (lane == clane) s_carries[warp][j] = v[creg];",
        "        }",
        "        __syncthreads();",
        "        int pairbase = warp & ~(2 * G - 1);",
        "        bool second = (warp & G) != 0;",
        "        if (second) {",
        "            int donor = pairbase + G - 1;",
        "            int chunkoff = ((warp - pairbase - G) * PLR_WARP + lane) * PLR_X;",
    ]
    if active < ir.chunk_size:
        lines.append(
            f"            if (chunkoff < {active}) {{  "
            "// decayed factors: later warps skip Phase 1 work"
        )
    else:
        lines.append("            {")
    lines += [
        "                for (int i = 0; i < PLR_X; i++) {",
        f"                    {ir.c_type} acc = ({ir.c_type})0;",
    ]
    for j in range(k):
        expr = _emit_correction_expr(ir, j, "chunkoff + i", f"s_carries[donor][{j}]")
        if expr:
            lines.append(f"                    {{ {expr} }}")
    lines += [
        "                    v[i] += acc;",
        "                }",
        "            }",
        "        }",
        "        __syncthreads();",
        "    }",
        "",
    ]
    return "\n".join(lines)


def _emit_lookback(ir: KernelIR) -> str:
    lines = [
        "    // ---- Section 5: publish local carries, fence, set flag ----",
        "    for (int j = 0; j < PLR_K; j++) {",
        "        int cpos = PLR_M - 1 - j;",
        "        if (tid == cpos / PLR_X) local_carries[chunk * PLR_K + j] = v[cpos % PLR_X];",
        "    }",
        "    __threadfence();",
        f"    if (tid == 0) atomicExch((int *)&flags[chunk], {_FLAG_LOCAL});",
        "",
        "    // ---- Section 6: variable look-back (Merrill & Garland) ----",
        f"    __shared__ {ir.c_type} s_prev_global[PLR_K];",
        "    if (chunk == 0) {",
        "        if (tid < PLR_K) s_prev_global[tid] = " + ir.literal(0) + ";",
        "    } else if (warp == 0) {",
        "        // Lane d polls the flag of chunk-1-d; ballot finds the most",
        "        // recent chunk whose *global* carries are ready within the",
        "        // maximum look-back window of 32.",
        "        long long probe = chunk - 1 - lane;",
        "        int base_dist;",
        "        for (;;) {",
        "            int f = (probe >= 0 && lane < PLR_LOOKBACK) ? flags[probe] : 0;",
        f"            unsigned int g_ready = __ballot_sync(0xffffffffu, f == {_FLAG_GLOBAL});",
        f"            unsigned int l_ready = __ballot_sync(0xffffffffu, f >= {_FLAG_LOCAL});",
        "            if (g_ready != 0u) {",
        "                base_dist = __ffs(g_ready);  // nearest global-ready",
        "                unsigned int need = (1u << (base_dist - 1)) - 1u;",
        "                if ((l_ready & need) == need) break;  // all locals ready",
        "            }",
        "            // busy wait; flags are volatile so re-read next round",
        "        }",
        "        if (lane == 0) {",
        f"            {ir.c_type} carries[PLR_K];",
        "            long long basec = chunk - base_dist;",
        "            for (int j = 0; j < PLR_K; j++) carries[j] = global_carries[basec * PLR_K + j];",
        "            for (long long c = basec + 1; c < chunk; c++) {",
        "                // hop: G <- L_c + M * G   (O(k^2) per intervening chunk)",
        f"                {ir.c_type} next[PLR_K];",
        "                for (int r = 0; r < PLR_K; r++) {",
        f"                    {ir.c_type} acc = local_carries[c * PLR_K + r];",
        "                    for (int j = 0; j < PLR_K; j++) acc += plr_carry_matrix[r][j] * carries[j];",
        "                    next[r] = acc;",
        "                }",
        "                for (int r = 0; r < PLR_K; r++) carries[r] = next[r];",
        "            }",
        "            for (int j = 0; j < PLR_K; j++) s_prev_global[j] = carries[j];",
        "        }",
        "    }",
        "    __syncthreads();",
        "",
        "    // Own global carries = own locals + M * prev_global; published",
        "    // before the bulk correction so successors can proceed early.",
        "    if (tid == 0) {",
        "        for (int r = 0; r < PLR_K; r++) {",
        f"            {ir.c_type} acc = local_carries[chunk * PLR_K + r];",
        "            if (chunk > 0)",
        "                for (int j = 0; j < PLR_K; j++) acc += plr_carry_matrix[r][j] * s_prev_global[j];",
        "            global_carries[chunk * PLR_K + r] = acc;",
        "        }",
        "        __threadfence();",
        f"        atomicExch((int *)&flags[chunk], {_FLAG_GLOBAL});",
        "    }",
        "",
    ]
    return "\n".join(lines)


def _emit_final_correction(ir: KernelIR) -> str:
    k = ir.order
    lines = [
        "    // ---- Section 7: correct the chunk and write results ----",
        "    for (int i = 0; i < PLR_X; i++) {",
        "        int off = tid * PLR_X + i;",
        f"        {ir.c_type} acc = ({ir.c_type})0;",
        "        if (chunk > 0) {",
    ]
    for j in range(k):
        expr = _emit_correction_expr(ir, j, "off", f"s_prev_global[{j}]")
        if expr:
            lines.append(f"            {{ {expr} }}")
    lines += [
        "        }",
        "        long long gpos = base + off;",
        "        if (gpos < n) output[gpos] = v[i] + acc;",
        "    }",
        "}",
        "",
    ]
    return "\n".join(lines)


def _emit_host_main(ir: KernelIR) -> str:
    ctype = ir.c_type
    fb = ir.feedback_literals()
    ff = ir.feedforward_literals()
    check = (
        "fabs((double)out_host[i] - (double)ref[i]) > 1e-3 * "
        "fmax(1.0, fabs((double)ref[i]))"
        if not ir.is_integer
        else "out_host[i] != ref[i]"
    )
    return f"""
// ---- Section 8: host driver — launch, time, verify ----
static void plr_serial_reference(const {ctype} *x, {ctype} *y, long long n) {{
    const double a[] = {{ {", ".join(str(float(np.float32(v) if not ir.is_integer else v)) for v in ir.recurrence.signature.feedforward)} }};
    const double b[] = {{ {", ".join(str(float(np.float32(v) if not ir.is_integer else v)) for v in ir.recurrence.signature.feedback)} }};
    for (long long i = 0; i < n; i++) {{
        double t = 0.0;
        for (int j = 0; j <= {len(ff) - 1}; j++) if (i - j >= 0) t += a[j] * (double)x[i - j];
        double acc = t;
        for (int j = 1; j <= {len(fb)}; j++) if (i - j >= 0) acc += b[j - 1] * (double)y[i - j];
        y[i] = ({ctype})acc;
    }}
}}

int main(int argc, char **argv) {{
    long long n = (argc > 1) ? atoll(argv[1]) : (1LL << 24);
    long long chunks = (n + PLR_M - 1) / PLR_M;
    {ctype} *in_host = ({ctype} *)malloc(n * sizeof({ctype}));
    {ctype} *out_host = ({ctype} *)malloc(n * sizeof({ctype}));
    {ctype} *ref = ({ctype} *)malloc(n * sizeof({ctype}));
    for (long long i = 0; i < n; i++) in_host[i] = ({ctype})((i % 97) - 48);

    {ctype} *d_in, *d_out, *d_local, *d_global;
    int *d_flags;
    cudaMalloc(&d_in, n * sizeof({ctype}));
    cudaMalloc(&d_out, n * sizeof({ctype}));
    cudaMalloc(&d_local, chunks * PLR_K * sizeof({ctype}));
    cudaMalloc(&d_global, chunks * PLR_K * sizeof({ctype}));
    cudaMalloc(&d_flags, chunks * sizeof(int));
    cudaMemcpy(d_in, in_host, n * sizeof({ctype}), cudaMemcpyHostToDevice);
    cudaMemset(d_flags, 0, chunks * sizeof(int));
    unsigned int zero = 0;
    cudaMemcpyToSymbol(plr_chunk_counter, &zero, sizeof(zero));

    cudaEvent_t t0, t1;
    cudaEventCreate(&t0);
    cudaEventCreate(&t1);
    cudaEventRecord(t0);
    plr_kernel<<<(unsigned)chunks, PLR_B>>>(d_in, d_out, n, d_flags, d_local, d_global);
    cudaEventRecord(t1);
    cudaEventSynchronize(t1);
    float ms = 0.0f;
    cudaEventElapsedTime(&ms, t0, t1);

    cudaMemcpy(out_host, d_out, n * sizeof({ctype}), cudaMemcpyDeviceToHost);
    plr_serial_reference(in_host, ref, n);
    long long bad = 0;
    for (long long i = 0; i < n; i++) if ({check}) bad++;
    printf("PLR %s n=%lld  %.3f ms  %.2f Gwords/s  %s\\n",
           "{ir.recurrence.signature}", n, ms, (double)n / ms / 1e6,
           bad ? "MISMATCH" : "verified");

    cudaFree(d_in); cudaFree(d_out); cudaFree(d_local);
    cudaFree(d_global); cudaFree(d_flags);
    free(in_host); free(out_host); free(ref);
    return bad != 0;
}}
"""


def _emit_header(ir: KernelIR) -> str:
    k = ir.order
    return f"""\
// Generated by PLR (reproduction) — do not edit.
// Recurrence signature: {ir.recurrence.signature}
// order k={k}, chunk m={ir.chunk_size}, x={ir.plan.values_per_thread},
// block={ir.plan.block_size}, dtype={ir.dtype}, lookback<={ir.plan.pipeline_depth}
// Optimizations: {", ".join(d.realization.value for d in ir.factor_plan.decisions)}

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cuda_runtime.h>

#define PLR_K {k}
#define PLR_X {ir.plan.values_per_thread}
#define PLR_B {ir.plan.block_size}
#define PLR_M {ir.chunk_size}
#define PLR_WARP {ir.plan.warp_size}
#define PLR_WARPS (PLR_B / PLR_WARP)
#define PLR_LOOKBACK {ir.plan.pipeline_depth}

__device__ unsigned int plr_chunk_counter;

static __device__ __forceinline__ {ir.c_type} plr_load_input(
        const {ir.c_type} *__restrict__ input, long long i, long long n) {{
    return (i >= 0 && i < n) ? input[i] : {ir.literal(0)};
}}
static __device__ {ir.c_type} plr_factor_storage(int j, int i);
"""


def _emit_kernel(ir: KernelIR, kernel_name: str = "plr_kernel") -> str:
    """One complete __global__ kernel for the IR's plan point."""
    buffered = ir.factor_plan.shared_buffer_elements

    smem_decl = [
        f"    __shared__ {ir.c_type} s_carries[PLR_WARPS][PLR_K];",
        "    __shared__ long long s_chunk;",
    ]
    buffer_fill = []
    if buffered:
        smem_decl.append(
            f"    __shared__ {ir.c_type} s_factors[PLR_K][{buffered}];"
        )
        buffer_fill = [
            "    // Stage the first factors of each list into shared memory;",
            "    // the merging starts with small chunks, so these are the",
            "    // hottest entries (Section 3.1).",
            "    for (int j = 0; j < PLR_K; j++)",
            f"        for (int i = tid; i < {buffered}; i += PLR_B)",
            "            s_factors[j][i] = plr_factor_storage(j, i);",
            "    __syncthreads();",
        ]
    else:
        smem_decl.append(
            f"    const {ir.c_type} (*s_factors)[1] = nullptr;  // buffering disabled"
        )

    kernel_open = f"""
extern "C" __global__ void {kernel_name}(
        const {ir.c_type} *__restrict__ input,
        {ir.c_type} *__restrict__ output,
        long long n,
        volatile int *flags,
        {ir.c_type} *local_carries,
        {ir.c_type} *global_carries) {{
    const int tid = threadIdx.x;
    const int lane = tid % PLR_WARP;
    const int warp = tid / PLR_WARP;
{chr(10).join(smem_decl)}

    // ---- Section 2: acquire a chunk id and load its values ----
    if (tid == 0) s_chunk = (long long)atomicAdd(&plr_chunk_counter, 1u);
    __syncthreads();
    const long long chunk = s_chunk;
    const long long base = chunk * (long long)PLR_M;
    {ir.c_type} v[PLR_X];
    for (int i = 0; i < PLR_X; i++)
        v[i] = plr_load_input(input, base + (long long)tid * PLR_X + i, n);
{chr(10).join(buffer_fill)}
"""
    body = (
        _emit_map_stage(ir)
        + _emit_thread_local(ir)
        + _emit_warp_phase(ir)
        + _emit_block_phase(ir)
        + _emit_lookback(ir)
        + _emit_final_correction(ir)
    )
    return kernel_open + body


def _emit_storage_reader(ir: KernelIR) -> str:
    # A raw-storage reader used only to fill the shared buffer.
    storage_reader_cases = []
    for decision in ir.factor_plan.decisions:
        j = decision.carry_index
        if decision.realization == FactorRealization.CONSTANT:
            storage_reader_cases.append(f"    if (j == {j}) return PLR_FACTOR_{j}_CONST;")
        elif decision.realization == FactorRealization.SHIFT_OF_FIRST:
            storage_reader_cases.append(
                f"    if (j == {j}) return (i == 0) ? PLR_FACTOR_{j}_SCALE : "
                f"PLR_FACTOR_{j}_SCALE * plr_factor_storage(0, i - 1);"
            )
        elif decision.realization == FactorRealization.PERIODIC:
            storage_reader_cases.append(
                f"    if (j == {j}) return plr_factors_{j}[i % {decision.period}];"
            )
        elif decision.realization == FactorRealization.TRUNCATED:
            cutoff = max(1, decision.cutoff)
            storage_reader_cases.append(
                f"    if (j == {j}) return (i < {cutoff}) ? plr_factors_{j}[i] : {ir.literal(0)};"
            )
        else:
            storage_reader_cases.append(f"    if (j == {j}) return plr_factors_{j}[i];")
    return (
        f"static __device__ {ir.c_type} plr_factor_storage(int j, int i) {{\n"
        + "\n".join(storage_reader_cases)
        + f"\n    return {ir.literal(0)};\n}}\n"
    )


def emit_cuda(ir: KernelIR) -> str:
    """Emit the complete CUDA translation unit for one kernel plan."""
    return (
        _emit_header(ir)
        + "\n"
        + _emit_factor_storage(ir)
        + "\n\n"
        + _emit_storage_reader(ir)
        + "\n"
        + _emit_factor_accessor(ir)
        + "\n"
        + _emit_kernel(ir)
        + _emit_host_main(ir)
    )


def emit_cuda_program(
    irs: "list[KernelIR]",
) -> str:
    """Emit a multi-kernel translation unit (the paper's code section 8).

    "Multiple kernels are generated in the above manner for various
    values of x.  For testing, PLR also emits a main function that
    calls the appropriate kernel."

    ``irs`` holds one IR per x (same recurrence, same machine), in
    increasing x order.  The factor arrays are emitted once, sized for
    the largest chunk — "the longest list contains all needed shorter
    lists" — and every kernel indexes into them; per-kernel constants
    are rebound with #undef/#define blocks; the host driver picks the
    kernel by the paper's smallest-covering-x rule.
    """
    if not irs:
        raise ValueError("need at least one kernel plan")
    recurrence = irs[0].recurrence
    for ir in irs:
        if ir.recurrence.signature != recurrence.signature:
            raise ValueError("all kernels must share one recurrence")
    irs = sorted(irs, key=lambda ir: ir.plan.values_per_thread)
    largest = irs[-1]

    pieces = [
        _emit_header(largest),
        "",
        _emit_factor_storage(largest),
        "",
        _emit_storage_reader(largest),
        "",
        _emit_factor_accessor(largest),
    ]
    for ir in irs:
        x = ir.plan.values_per_thread
        pieces.append(
            f"""
// ======== kernel variant for x = {x} (m = {ir.chunk_size}) ========
#undef PLR_X
#define PLR_X {x}
#undef PLR_M
#define PLR_M {ir.chunk_size}"""
        )
        pieces.append(_emit_kernel(ir, kernel_name=f"plr_kernel_x{x}"))

    # Host driver with the paper's kernel-selection rule.
    resident = largest.plan.resident_blocks
    block = largest.plan.block_size
    cases = "\n".join(
        f"    if (x == {ir.plan.values_per_thread}) "
        f"plr_kernel_x{ir.plan.values_per_thread}"
        f"<<<(unsigned)chunks, {block}>>>(d_in, d_out, n, d_flags, d_local, d_global);"
        for ir in irs
    )
    xs = [ir.plan.values_per_thread for ir in irs]
    selector = f"""
// ---- Section 8: kernel selection — smallest x with x*{block}*{resident} > n ----
static int plr_select_x(long long n) {{
    static const int xs[] = {{ {", ".join(str(x) for x in xs)} }};
    for (unsigned i = 0; i < sizeof(xs) / sizeof(xs[0]); i++)
        if ((long long)xs[i] * {block} * {resident} > n) return xs[i];
    return {xs[-1]};
}}

static void plr_launch(int x, long long n, long long chunks,
                       const {largest.c_type} *d_in, {largest.c_type} *d_out,
                       int *d_flags, {largest.c_type} *d_local,
                       {largest.c_type} *d_global) {{
{cases}
}}
"""
    pieces.append(selector)
    pieces.append(_emit_multi_host_main(largest, xs, block))
    return "\n".join(pieces)


def _emit_multi_host_main(ir: KernelIR, xs: "list[int]", block: int) -> str:
    ctype = ir.c_type
    check = (
        "fabs((double)out_host[i] - (double)ref[i]) > 1e-3 * "
        "fmax(1.0, fabs((double)ref[i]))"
        if not ir.is_integer
        else "out_host[i] != ref[i]"
    )
    return f"""
static void plr_serial_reference(const {ctype} *x, {ctype} *y, long long n) {{
    const double a[] = {{ {", ".join(str(float(np.float32(v)) if not ir.is_integer else str(v)) for v in ir.recurrence.signature.feedforward)} }};
    const double b[] = {{ {", ".join(str(float(np.float32(v)) if not ir.is_integer else str(v)) for v in ir.recurrence.signature.feedback)} }};
    for (long long i = 0; i < n; i++) {{
        double t = 0.0;
        for (int j = 0; j <= {ir.recurrence.signature.fir_order}; j++) if (i - j >= 0) t += a[j] * (double)x[i - j];
        double acc = t;
        for (int j = 1; j <= {ir.order}; j++) if (i - j >= 0) acc += b[j - 1] * (double)y[i - j];
        y[i] = ({ctype})acc;
    }}
}}

int main(int argc, char **argv) {{
    long long n = (argc > 1) ? atoll(argv[1]) : (1LL << 24);
    int x = plr_select_x(n);
    long long m = (long long)x * {block};
    long long chunks = (n + m - 1) / m;
    {ctype} *in_host = ({ctype} *)malloc(n * sizeof({ctype}));
    {ctype} *out_host = ({ctype} *)malloc(n * sizeof({ctype}));
    {ctype} *ref = ({ctype} *)malloc(n * sizeof({ctype}));
    for (long long i = 0; i < n; i++) in_host[i] = ({ctype})((i % 97) - 48);

    {ctype} *d_in, *d_out, *d_local, *d_global;
    int *d_flags;
    cudaMalloc(&d_in, n * sizeof({ctype}));
    cudaMalloc(&d_out, n * sizeof({ctype}));
    cudaMalloc(&d_local, chunks * PLR_K * sizeof({ctype}));
    cudaMalloc(&d_global, chunks * PLR_K * sizeof({ctype}));
    cudaMalloc(&d_flags, chunks * sizeof(int));
    cudaMemcpy(d_in, in_host, n * sizeof({ctype}), cudaMemcpyHostToDevice);
    cudaMemset(d_flags, 0, chunks * sizeof(int));
    unsigned int zero = 0;
    cudaMemcpyToSymbol(plr_chunk_counter, &zero, sizeof(zero));

    cudaEvent_t t0, t1;
    cudaEventCreate(&t0);
    cudaEventCreate(&t1);
    cudaEventRecord(t0);
    plr_launch(x, n, chunks, d_in, d_out, d_flags, d_local, d_global);
    cudaEventRecord(t1);
    cudaEventSynchronize(t1);
    float ms = 0.0f;
    cudaEventElapsedTime(&ms, t0, t1);

    cudaMemcpy(out_host, d_out, n * sizeof({ctype}), cudaMemcpyDeviceToHost);
    plr_serial_reference(in_host, ref, n);
    long long bad = 0;
    for (long long i = 0; i < n; i++) if ({check}) bad++;
    printf("PLR %s n=%lld x=%d  %.3f ms  %.2f Gwords/s  %s\\n",
           "{ir.recurrence.signature}", n, x, ms, (double)n / ms / 1e6,
           bad ? "MISMATCH" : "verified");

    cudaFree(d_in); cudaFree(d_out); cudaFree(d_local);
    cudaFree(d_global); cudaFree(d_flags);
    free(in_host); free(out_host); free(ref);
    return bad != 0;
}}
"""
