"""The PLR compiler: IR construction and the CUDA / C / Python emitters."""

from repro.codegen.cbackend import (
    CompiledCKernel,
    compile_c_kernel,
    default_cache_dir,
    emit_c,
    kernel_digest,
    load_kernel_library,
)
from repro.codegen.compiler import BACKENDS, CompilationResult, PLRCompiler
from repro.codegen.jit import (
    NativeAttempt,
    clear_native_cache,
    native_available,
    native_kernel,
)
from repro.codegen.cuda import emit_cuda, emit_cuda_program
from repro.codegen.frontend import (
    LoopPatternError,
    RecognizedLoop,
    parallelize,
    recognize_loop,
)
from repro.codegen.ir import KernelIR, build_ir
from repro.codegen.pybackend import (
    CompiledPythonKernel,
    compile_python_kernel,
    emit_python,
)

__all__ = [
    "BACKENDS",
    "CompilationResult",
    "CompiledCKernel",
    "CompiledPythonKernel",
    "KernelIR",
    "LoopPatternError",
    "NativeAttempt",
    "PLRCompiler",
    "RecognizedLoop",
    "build_ir",
    "clear_native_cache",
    "compile_c_kernel",
    "compile_python_kernel",
    "default_cache_dir",
    "kernel_digest",
    "load_kernel_library",
    "native_available",
    "native_kernel",
    "emit_c",
    "emit_cuda",
    "emit_cuda_program",
    "emit_python",
    "parallelize",
    "recognize_loop",
]
