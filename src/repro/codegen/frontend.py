"""A loop front end: recognize serial recurrence loops automatically.

The paper closes by noting PLR "could equally be part of a full-fledged
(C/C++) compiler that is invoked either via an intrinsic or to augment
an existing loop-nest transformation engine that automatically
parallelizes code (such as Graphite in gcc)".  This module is that idea
for Python: it inspects a function containing a serial recurrence loop,

    def lowpass(x, y, n):
        for i in range(n):
            y[i] = 0.2 * x[i] + 0.8 * y[i - 1]

pattern-matches the loop body against recursion equation (1), extracts
the signature ``(0.2 : 0.8)``, and hands back a parallel replacement
built on :class:`~repro.plr.solver.PLRSolver` — with the original
function never executed.

Recognized shape (anything else raises :class:`LoopPatternError` with a
reason):

* ``for i in range(n)`` over a single statement
  ``y[i] = <linear expression>``;
* the expression is a sum of terms ``c * x[i - j]`` and ``c * y[i - j]``
  (constant c, non-negative literal offset j; bare ``x[i]`` means c=1,
  unary minus folds into the constant);
* ``y`` terms must use strictly positive offsets (an in-iteration
  ``y[i]`` read would not be a linear recurrence);
* coefficients are Python literals (int/float), so the signature is
  fully static — the same restriction the paper's DSL imposes.

This is deliberately a *recognizer*, not a symbolic algebra system: it
accepts the loops people actually write for filters/prefix sums and
gives actionable errors for the rest.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.errors import ReproError
from repro.core.signature import Signature
from repro.plr.solver import PLRSolver

__all__ = ["LoopPatternError", "RecognizedLoop", "recognize_loop", "parallelize"]


class LoopPatternError(ReproError):
    """The function does not contain a recognizable recurrence loop."""


@dataclass(frozen=True)
class RecognizedLoop:
    """What the recognizer extracted from a serial loop."""

    signature: Signature
    input_name: str
    output_name: str
    index_name: str
    bound_name: str

    def describe(self) -> str:
        return (
            f"{self.output_name}[{self.index_name}] over "
            f"{self.input_name}: signature {self.signature}"
        )


def _literal_number(node: ast.AST) -> float | int | None:
    """Evaluate a numeric literal, allowing unary +/- chains."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    return None


def _match_subscript(node: ast.AST, index_name: str) -> tuple[str, int] | None:
    """Match ``name[i]`` or ``name[i - j]`` -> (name, j)."""
    if not isinstance(node, ast.Subscript) or not isinstance(node.value, ast.Name):
        return None
    array = node.value.id
    sub = node.slice
    if isinstance(sub, ast.Name) and sub.id == index_name:
        return array, 0
    if (
        isinstance(sub, ast.BinOp)
        and isinstance(sub.op, ast.Sub)
        and isinstance(sub.left, ast.Name)
        and sub.left.id == index_name
    ):
        offset = _literal_number(sub.right)
        if offset is not None and float(offset).is_integer() and offset >= 0:
            return array, int(offset)
    return None


@dataclass
class _Term:
    array: str
    offset: int
    coefficient: float | int


def _collect_terms(node: ast.AST, index_name: str, sign: int = 1) -> list[_Term]:
    """Flatten a linear expression into coefficient terms."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _collect_terms(node.left, index_name, sign) + _collect_terms(
            node.right, index_name, sign
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
        return _collect_terms(node.left, index_name, sign) + _collect_terms(
            node.right, index_name, -sign
        )
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _collect_terms(node.operand, index_name, -sign)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd):
        return _collect_terms(node.operand, index_name, sign)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        # constant * subscript, in either order
        for const_node, sub_node in ((node.left, node.right), (node.right, node.left)):
            constant = _literal_number(const_node)
            match = _match_subscript(sub_node, index_name)
            if constant is not None and match is not None:
                return [_Term(match[0], match[1], sign * constant)]
        raise LoopPatternError(
            f"line {node.lineno}: multiplication must be "
            "<constant> * <array>[i - j] with a literal constant"
        )
    match = _match_subscript(node, index_name)
    if match is not None:
        return [_Term(match[0], match[1], sign * 1)]
    raise LoopPatternError(
        f"unsupported term at line {getattr(node, 'lineno', '?')}: the loop "
        "body must be a sum of constant-coefficient array references"
    )


def _find_loop(tree: ast.AST) -> ast.For:
    loops = [node for node in ast.walk(tree) if isinstance(node, ast.For)]
    if not loops:
        raise LoopPatternError("no for-loop found in the function")
    if len(loops) > 1:
        raise LoopPatternError("expected exactly one loop, found nested/multiple")
    return loops[0]


def recognize_loop(function: Callable | str) -> RecognizedLoop:
    """Extract the recurrence signature from a serial loop function."""
    source = (
        function if isinstance(function, str) else inspect.getsource(function)
    )
    tree = ast.parse(textwrap.dedent(source))
    loop = _find_loop(tree)

    if not isinstance(loop.target, ast.Name):
        raise LoopPatternError("loop index must be a simple name")
    index_name = loop.target.id
    if not (
        isinstance(loop.iter, ast.Call)
        and isinstance(loop.iter.func, ast.Name)
        and loop.iter.func.id == "range"
        and len(loop.iter.args) == 1
        and isinstance(loop.iter.args[0], ast.Name)
    ):
        raise LoopPatternError("loop must iterate `for i in range(n)`")
    bound_name = loop.iter.args[0].id
    if len(loop.body) != 1 or not isinstance(loop.body[0], ast.Assign):
        raise LoopPatternError("loop body must be a single assignment")
    assign = loop.body[0]
    if len(assign.targets) != 1:
        raise LoopPatternError("assignment must have a single target")
    target = _match_subscript(assign.targets[0], index_name)
    if target is None or target[1] != 0:
        raise LoopPatternError("assignment target must be `y[i]`")
    output_name = target[0]

    terms = _collect_terms(assign.value, index_name)
    input_names = {t.array for t in terms if t.array != output_name}
    if len(input_names) != 1:
        raise LoopPatternError(
            f"expected exactly one input array, found {sorted(input_names) or 'none'}"
        )
    input_name = input_names.pop()

    ff_terms: dict[int, float | int] = {}
    fb_terms: dict[int, float | int] = {}
    for term in terms:
        bucket = ff_terms if term.array == input_name else fb_terms
        bucket[term.offset] = bucket.get(term.offset, 0) + term.coefficient
    if 0 in fb_terms:
        raise LoopPatternError(
            f"`{output_name}[{index_name}]` on the right-hand side: not a "
            "causal linear recurrence"
        )
    if not fb_terms:
        raise LoopPatternError(
            "no feedback term: this is a pure map/FIR, which is "
            "embarrassingly parallel without PLR"
        )
    if not ff_terms:
        raise LoopPatternError("no input term: the output would be all zeros")

    p = max(ff_terms)
    feedforward = tuple(ff_terms.get(j, 0) for j in range(p + 1))
    k = max(fb_terms)
    feedback = tuple(fb_terms.get(j, 0) for j in range(1, k + 1))
    signature = Signature(feedforward, feedback)
    return RecognizedLoop(
        signature=signature,
        input_name=input_name,
        output_name=output_name,
        index_name=index_name,
        bound_name=bound_name,
    )


def parallelize(function: Callable) -> Callable[[np.ndarray], np.ndarray]:
    """Turn a serial recurrence loop into a parallel PLR computation.

    The returned callable takes the input array and returns the output
    array; the original function body is never executed.

        @parallelize
        def smooth(x, y, n):
            for i in range(n):
                y[i] = 0.2 * x[i] + 0.8 * y[i - 1]

        y = smooth(samples)
    """
    recognized = recognize_loop(function)
    solver = PLRSolver(recognized.signature)

    def parallel(values: np.ndarray) -> np.ndarray:
        return solver.solve(np.asarray(values))

    parallel.__name__ = getattr(function, "__name__", "parallelized")
    parallel.__doc__ = (
        f"Parallelized by PLR from a serial loop: {recognized.describe()}"
    )
    parallel.recognized = recognized  # type: ignore[attr-defined]
    return parallel
