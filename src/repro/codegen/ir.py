"""The compiler's intermediate representation.

A :class:`KernelIR` is everything an emitter needs to generate code for
one recurrence at one plan point: the signature split into its map and
recursive stages, the execution-plan constants (m, x, block size,
pipeline depth), the correction-factor table, and the optimizer's
per-carry realization decisions.  Emitters (CUDA, C, Python) are pure
functions of the IR, which is what makes "the same optimization plan
everywhere" checkable: tests build one IR and assert all backends agree
with the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import CodegenError
from repro.core.recurrence import Recurrence
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import (
    FactorPlan,
    OptimizationConfig,
    optimize_factors,
)
from repro.plr.planner import ExecutionPlan, plan_execution

__all__ = ["KernelIR", "build_ir"]

_C_TYPES = {np.dtype(np.int32): "int", np.dtype(np.float32): "float",
            np.dtype(np.int64): "long long", np.dtype(np.float64): "double"}


@dataclass(frozen=True)
class KernelIR:
    """Backend-independent description of one generated recurrence kernel."""

    recurrence: Recurrence
    plan: ExecutionPlan
    table: CorrectionFactorTable
    factor_plan: FactorPlan
    dtype: np.dtype

    @property
    def order(self) -> int:
        return self.recurrence.order

    @property
    def chunk_size(self) -> int:
        return self.plan.chunk_size

    @property
    def c_type(self) -> str:
        """The element type spelled in C/CUDA."""
        try:
            return _C_TYPES[self.dtype]
        except KeyError:
            raise CodegenError(f"no C type mapping for dtype {self.dtype}") from None

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.dtype, np.integer)

    def feedforward_literals(self) -> list[str]:
        return [self.literal(a) for a in self.recurrence.signature.feedforward]

    def feedback_literals(self) -> list[str]:
        return [self.literal(b) for b in self.recurrence.signature.feedback]

    def literal(self, value) -> str:
        """Spell one coefficient as a C/CUDA literal of the right type."""
        if self.is_integer:
            return str(int(value))
        v = float(value)
        if self.dtype == np.float32:
            # Shortest decimal that round-trips in float32 ("0.8f",
            # not "0.800000011920929f").
            text = np.format_float_positional(
                np.float32(v), unique=True, trim="0"
            )
            if text.endswith("."):
                text += "0"
            return f"{text}f"
        return repr(v)

    def factor_row_literals(self, carry_index: int, count: int | None = None) -> list[str]:
        """The stored factor values for one carry, as source literals."""
        row = self.table.factors[carry_index]
        if count is not None:
            row = row[:count]
        return [self.literal(v) for v in row]


def build_ir(
    recurrence: Recurrence,
    n: int,
    machine: MachineSpec | None = None,
    optimization: OptimizationConfig | None = None,
    dtype: np.dtype | type | None = None,
    plan: ExecutionPlan | None = None,
) -> KernelIR:
    """Plan, build factors, optimize — the front half of the compiler."""
    machine = machine or MachineSpec.titan_x()
    if plan is None:
        plan = plan_execution(recurrence.signature, n, machine)
    if dtype is None:
        # The paper evaluates 32-bit words throughout (Section 5).
        dtype = np.int32 if recurrence.is_integer else np.float32
    dtype = np.dtype(dtype)
    table = CorrectionFactorTable.build(
        recurrence.recursive_signature, plan.chunk_size, dtype
    )
    factor_plan = optimize_factors(table, optimization)
    return KernelIR(
        recurrence=recurrence,
        plan=plan,
        table=table,
        factor_plan=factor_plan,
        dtype=dtype,
    )
