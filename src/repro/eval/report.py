"""ASCII rendering of the reproduced figures and tables.

The benchmark harness prints these so a reader can put them next to
the paper's charts: sizes down the rows, codes across the columns,
throughput in billions of words per second (the paper's y-axis unit).
"""

from __future__ import annotations

from repro.eval.figures import Figure10Bar
from repro.eval.harness import FigureResult
from repro.eval.tables import TableCell

__all__ = ["render_figure", "render_figure10", "render_table"]


def _fmt_size(n: int) -> str:
    exponent = n.bit_length() - 1
    if n == 1 << exponent:
        return f"2^{exponent}"
    return str(n)


def render_figure(result: FigureResult) -> str:
    """One throughput figure as a size-by-code text table."""
    definition = result.definition
    codes = list(definition.codes)
    lines = [
        f"{definition.figure_id}: {definition.title}",
        f"  recurrence {definition.recurrence.signature}  "
        "[billions of words per second]",
    ]
    header = f"  {'size':>8} " + " ".join(f"{c:>9}" for c in codes)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for idx, n in enumerate(definition.sizes):
        cells = []
        for code in codes:
            series = result.series[code]
            if series.supported[idx]:
                cells.append(f"{series.throughput[idx] / 1e9:>9.2f}")
            else:
                cells.append(f"{'-':>9}")
        lines.append(f"  {_fmt_size(n):>8} " + " ".join(cells))
    if result.validated:
        checked = ", ".join(sorted(c for c, ok in result.validated.items() if ok))
        lines.append(f"  validated vs serial reference: {checked}")
    return "\n".join(lines)


def render_figure10(bars: list[Figure10Bar]) -> str:
    """Figure 10 as a recurrence-by-config text table."""
    lines = [
        "fig10: PLR throughput with and without optimizations",
        f"  largest input ({_fmt_size(bars[0].n)})  "
        "[billions of words per second]",
        f"  {'recurrence':>20} {'opts on':>9} {'opts off':>9} {'speedup':>8}",
        "  " + "-" * 50,
    ]
    for bar in bars:
        lines.append(
            f"  {bar.recurrence:>20} {bar.with_optimizations / 1e9:>9.2f} "
            f"{bar.without_optimizations / 1e9:>9.2f} {bar.speedup:>7.2f}x"
        )
    return "\n".join(lines)


def render_table(cells: list[TableCell], title: str) -> str:
    """Tables 2/3 as an order-by-code text table."""
    codes: list[str] = []
    for cell in cells:
        if cell.code not in codes:
            codes.append(cell.code)
    orders = sorted({cell.order for cell in cells})
    by_key = {(c.code, c.order): c.megabytes for c in cells}
    lines = [title, f"  {'':>8} " + " ".join(f"{c:>9}" for c in codes)]
    for order in orders:
        row = [f"  order {order:>2}"]
        for code in codes:
            value = by_key.get((code, order))
            row.append(f"{value:>9.1f}" if value is not None else f"{'-':>9}")
        lines.append(" ".join(row))
    return "\n".join(lines)
