"""The evaluation harness: figure/table definitions, sweeps, reports."""

from repro.eval.figures import (
    FIGURE10_ORDER,
    FLOAT_CODES,
    INTEGER_CODES,
    Figure10Bar,
    figure10_throughputs,
    figure_definitions,
)
from repro.eval.harness import (
    DEFAULT_SIZES,
    ExperimentDef,
    FigureResult,
    Series,
    run_experiment,
    validate_code,
)
from repro.eval.calibration import Anchor, calibration_report, render_calibration
from repro.eval.export import export_everything, figure_to_rows, table_to_rows
from repro.eval.report import render_figure, render_figure10, render_table
from repro.eval.tables import (
    TABLE_CODES,
    TABLE_INPUT_WORDS,
    TableCell,
    representative_recurrence,
    table2_memory_usage,
    table3_l2_misses,
)

__all__ = [
    "Anchor",
    "DEFAULT_SIZES",
    "ExperimentDef",
    "FIGURE10_ORDER",
    "FLOAT_CODES",
    "Figure10Bar",
    "FigureResult",
    "INTEGER_CODES",
    "Series",
    "TABLE_CODES",
    "TABLE_INPUT_WORDS",
    "TableCell",
    "calibration_report",
    "export_everything",
    "figure10_throughputs",
    "figure_definitions",
    "figure_to_rows",
    "render_calibration",
    "table_to_rows",
    "render_figure",
    "render_figure10",
    "render_table",
    "representative_recurrence",
    "run_experiment",
    "table2_memory_usage",
    "table3_l2_misses",
    "validate_code",
]
