"""The cost model's calibration anchors, made auditable.

The analytical model has a handful of tuned constants
(:class:`~repro.gpusim.cost.CostModel` and the per-event costs in
:class:`~repro.baselines.plr_code.PLRCode`).  They were fixed once
against anchors the paper itself states, and this module re-derives
each anchor from the current model so any drift is visible —
``plr calibration`` prints the report, and
``tests/test_calibration.py`` pins every anchor with a tolerance.

Anchors (all from the paper's text, not read off charts):

* memcpy plateau ≈ 35 G words/s ("the three codes transfer up to
  264 GB/s" and the figures' memcpy ceiling);
* PLR == memcpy on large prefix sums and 1-stage filters;
* Scan ≈ memcpy/2 at order 1;
* PLR +30% / +17% over the best prior on 2-/3-tuples;
* SAM +50% / +38% / +33% over PLR at orders 2/3/4;
* PLR/Rec 1.90 / 1.88 / 1.58 on 1-/2-/3-stage low-pass at 1 GB;
* high-pass ≈ 17% below low-pass;
* Figure 10: ≈3% on higher-order sums, >2x on the 2-stage low-pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Workload
from repro.baselines.registry import make_code
from repro.core.coefficients import table1_signatures
from repro.core.recurrence import Recurrence
from repro.core.signature import Signature
from repro.eval.figures import figure10_throughputs
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import MachineSpec

__all__ = ["Anchor", "calibration_report", "render_calibration"]


@dataclass(frozen=True)
class Anchor:
    """One calibration target: paper value vs current model value."""

    name: str
    paper: float
    model: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return abs(self.model - self.paper) <= self.tolerance

    @property
    def error(self) -> float:
        return self.model - self.paper


def _throughput(code_name: str, recurrence: Recurrence, n: int) -> float:
    machine = MachineSpec.titan_x()
    model = CostModel(machine)
    code = make_code(code_name)
    workload = Workload(recurrence, n)
    return model.throughput(n, code.traffic(workload, machine))


def calibration_report() -> list[Anchor]:
    """Every anchor, re-derived from the current model."""
    sigs = table1_signatures()
    big = 2**30
    gb = 2**28  # "for 1 GB inputs" in the filter comparison

    def rec(name: str) -> Recurrence:
        return Recurrence(sigs[name])

    memcpy = _throughput("memcpy", rec("prefix_sum"), big)
    anchors = [
        Anchor("memcpy plateau (G words/s)", 35.0, memcpy / 1e9, 1.5),
        Anchor(
            "PLR / memcpy, prefix sum",
            1.0,
            _throughput("PLR", rec("prefix_sum"), big) / memcpy,
            0.08,
        ),
        Anchor(
            "Scan / memcpy, order 1",
            0.5,
            _throughput("Scan", rec("prefix_sum"), 2**29) / memcpy,
            0.06,
        ),
        Anchor(
            "PLR / best prior, 2-tuple",
            1.30,
            _throughput("PLR", rec("tuple2_prefix_sum"), big)
            / max(
                _throughput("CUB", rec("tuple2_prefix_sum"), big),
                _throughput("SAM", rec("tuple2_prefix_sum"), big),
            ),
            0.15,
        ),
        Anchor(
            "PLR / best prior, 3-tuple",
            1.17,
            _throughput("PLR", rec("tuple3_prefix_sum"), big)
            / max(
                _throughput("CUB", rec("tuple3_prefix_sum"), big),
                _throughput("SAM", rec("tuple3_prefix_sum"), big),
            ),
            0.12,
        ),
        Anchor(
            "SAM / PLR, order 2",
            1.50,
            _throughput("SAM", rec("order2_prefix_sum"), big)
            / _throughput("PLR", rec("order2_prefix_sum"), big),
            0.15,
        ),
        Anchor(
            "SAM / PLR, order 3",
            1.38,
            _throughput("SAM", rec("order3_prefix_sum"), big)
            / _throughput("PLR", rec("order3_prefix_sum"), big),
            0.15,
        ),
        Anchor(
            "SAM / PLR, order 4",
            1.33,
            _throughput("SAM", Recurrence(Signature.higher_order_prefix_sum(4)), big)
            / _throughput("PLR", Recurrence(Signature.higher_order_prefix_sum(4)), big),
            0.18,
        ),
        Anchor(
            "PLR / memcpy, 1-stage low-pass",
            1.0,
            _throughput("PLR", rec("low_pass_1"), big) / memcpy,
            0.08,
        ),
        Anchor(
            "PLR / Rec, 1-stage low-pass @1GB",
            1.90,
            _throughput("PLR", rec("low_pass_1"), gb)
            / _throughput("Rec", rec("low_pass_1"), gb),
            0.25,
        ),
        Anchor(
            "PLR / Rec, 2-stage low-pass @1GB",
            1.88,
            _throughput("PLR", rec("low_pass_2"), gb)
            / _throughput("Rec", rec("low_pass_2"), gb),
            0.25,
        ),
        Anchor(
            "PLR / Rec, 3-stage low-pass @1GB",
            1.58,
            _throughput("PLR", rec("low_pass_3"), gb)
            / _throughput("Rec", rec("low_pass_3"), gb),
            0.25,
        ),
        Anchor(
            "high-pass / low-pass, 1 stage",
            0.83,
            _throughput("PLR", rec("high_pass_1"), big)
            / _throughput("PLR", rec("low_pass_1"), big),
            0.12,
        ),
    ]
    bars = {bar.recurrence: bar for bar in figure10_throughputs()}
    anchors.append(
        Anchor(
            "fig10 speedup, order-2 sums",
            1.03,
            bars["order2_prefix_sum"].speedup,
            0.08,
        )
    )
    anchors.append(
        Anchor(
            "fig10 speedup, 2-stage low-pass",
            2.1,
            bars["low_pass_2"].speedup,
            0.3,
        )
    )
    return anchors


def render_calibration(anchors: list[Anchor] | None = None) -> str:
    """ASCII report: anchor, paper, model, error, verdict."""
    anchors = anchors if anchors is not None else calibration_report()
    width = max(len(a.name) for a in anchors)
    lines = [
        "Cost-model calibration vs the paper's stated anchors",
        f"  {'anchor':<{width}} {'paper':>7} {'model':>7} {'error':>7}  ok",
        "  " + "-" * (width + 28),
    ]
    for anchor in anchors:
        lines.append(
            f"  {anchor.name:<{width}} {anchor.paper:>7.2f} "
            f"{anchor.model:>7.2f} {anchor.error:>+7.2f}  "
            f"{'yes' if anchor.ok else 'NO'}"
        )
    return "\n".join(lines)
