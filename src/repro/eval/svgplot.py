"""Dependency-free SVG rendering of the throughput figures.

The evaluation environment has no plotting stack, so this module draws
the paper-style charts (log2 x-axis of input sizes, linear y-axis of
G words/s, one polyline per code) directly as SVG text.  The output
mirrors the paper's figures closely enough to overlay visually:
markers per point, a legend, dashed grid lines, unsupported sizes
simply absent from a series.

`plr export OUTDIR --svg` writes one .svg per figure alongside the CSVs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.eval.figures import Figure10Bar
from repro.eval.harness import FigureResult

__all__ = [
    "render_figure_svg",
    "render_figure10_svg",
    "render_timeline_svg",
    "SvgStyle",
]

# Distinguishable line colors; memcpy gets neutral gray like the paper.
_PALETTE = {
    "memcpy": "#888888",
    "CUB": "#1f77b4",
    "SAM": "#2ca02c",
    "Scan": "#d62728",
    "PLR": "#9467bd",
    "Alg3": "#ff7f0e",
    "Rec": "#17becf",
}
_FALLBACK_COLORS = ["#8c564b", "#e377c2", "#7f7f7f", "#bcbd22"]


@dataclass(frozen=True)
class SvgStyle:
    width: int = 720
    height: int = 420
    margin_left: int = 64
    margin_right: int = 150
    margin_top: int = 48
    margin_bottom: int = 56
    font: str = "ui-sans-serif, system-ui, sans-serif"

    @property
    def plot_width(self) -> int:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> int:
        return self.height - self.margin_top - self.margin_bottom


def _color(code: str, index: int) -> str:
    return _PALETTE.get(code, _FALLBACK_COLORS[index % len(_FALLBACK_COLORS)])


def _nice_ceiling(value: float) -> float:
    """Round a y-maximum up to a pleasant tick boundary."""
    if value <= 0:
        return 1.0
    magnitude = 10 ** math.floor(math.log10(value))
    for mult in (1, 2, 2.5, 4, 5, 8, 10):
        if value <= mult * magnitude:
            return mult * magnitude
    return 10 * magnitude


def render_figure_svg(result: FigureResult, style: SvgStyle | None = None) -> str:
    """One throughput figure as a complete SVG document."""
    style = style or SvgStyle()
    definition = result.definition
    sizes = definition.sizes
    x_lo = math.log2(sizes[0])
    x_hi = math.log2(sizes[-1])

    peak = 0.0
    for series in result.series.values():
        for tp, ok in zip(series.throughput, series.supported):
            if ok:
                peak = max(peak, tp / 1e9)
    y_hi = _nice_ceiling(peak * 1.05)

    def px(n: int) -> float:
        frac = (math.log2(n) - x_lo) / max(x_hi - x_lo, 1e-9)
        return style.margin_left + frac * style.plot_width

    def py(gwords: float) -> float:
        frac = gwords / y_hi
        return style.margin_top + (1.0 - frac) * style.plot_height

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{style.width}" '
        f'height="{style.height}" viewBox="0 0 {style.width} {style.height}">',
        f'<rect width="{style.width}" height="{style.height}" fill="white"/>',
        f'<text x="{style.margin_left}" y="24" font-family="{style.font}" '
        f'font-size="15" font-weight="bold">{definition.figure_id}: '
        f"{definition.title}</text>",
        f'<text x="{style.margin_left}" y="40" font-family="{style.font}" '
        f'font-size="11" fill="#555">recurrence {definition.recurrence.signature} '
        "&#8212; billions of words per second vs sequence length</text>",
    ]

    # Grid and axes.
    ticks = 5
    for t in range(ticks + 1):
        g = y_hi * t / ticks
        y = py(g)
        parts.append(
            f'<line x1="{style.margin_left}" y1="{y:.1f}" '
            f'x2="{style.margin_left + style.plot_width}" y2="{y:.1f}" '
            'stroke="#dddddd" stroke-dasharray="3,3"/>'
        )
        parts.append(
            f'<text x="{style.margin_left - 8}" y="{y + 4:.1f}" '
            f'font-family="{style.font}" font-size="10" text-anchor="end">'
            f"{g:g}</text>"
        )
    for n in sizes:
        exp = int(math.log2(n))
        if exp % 2 == 0:
            x = px(n)
            parts.append(
                f'<text x="{x:.1f}" y="{style.height - style.margin_bottom + 16}" '
                f'font-family="{style.font}" font-size="10" text-anchor="middle">'
                f"2^{exp}</text>"
            )
    axis_y = style.margin_top + style.plot_height
    parts.append(
        f'<line x1="{style.margin_left}" y1="{axis_y}" '
        f'x2="{style.margin_left + style.plot_width}" y2="{axis_y}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{style.margin_left}" y1="{style.margin_top}" '
        f'x2="{style.margin_left}" y2="{axis_y}" stroke="black"/>'
    )

    # Series.
    legend_y = style.margin_top + 6
    for index, code in enumerate(definition.codes):
        series = result.series[code]
        color = _color(code, index)
        points = [
            (px(n), py(tp / 1e9))
            for n, tp, ok in zip(series.sizes, series.throughput, series.supported)
            if ok
        ]
        if points:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                'stroke-width="2"/>'
            )
            for x, y in points:
                parts.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.6" fill="{color}"/>'
                )
        lx = style.margin_left + style.plot_width + 12
        parts.append(
            f'<line x1="{lx}" y1="{legend_y}" x2="{lx + 22}" y2="{legend_y}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{lx + 28}" y="{legend_y + 4}" font-family="{style.font}" '
            f'font-size="12">{code}</text>'
        )
        legend_y += 20

    parts.append("</svg>")
    return "\n".join(parts)


# Event categories -> timeline colors (trace timelines, repro.obs).
_TIMELINE_PALETTE = {
    "phase1": "#1f77b4",
    "phase2": "#2ca02c",
    "sim": "#9467bd",
    "sched": "#ff7f0e",
    "solver": "#17becf",
    "resilience": "#d62728",
}
_TIMELINE_INSTANT = {
    "lookback": "#2ca02c",
    "spin": "#d62728",
    "publish_local": "#ff7f0e",
    "publish_global": "#9467bd",
}


def render_timeline_svg(
    events: list, title: str = "trace timeline", max_rows: int = 160
) -> str:
    """A Gantt timeline of trace events: one row per (pid, tid) lane.

    ``events`` are :class:`~repro.obs.tracer.TraceEvent`-shaped objects
    (duck-typed: name/ph/ts/dur/cat/pid/tid).  Complete ("X") events
    draw as bars colored by category; instants draw as ticks colored by
    name.  The x-axis is whatever clock the tracer used — scheduler
    steps for simulator traces, microseconds for host traces.  Lanes
    beyond ``max_rows`` are dropped with a note, keeping pathological
    traces renderable.
    """
    spans = [e for e in events if e.ph == "X" and e.dur is not None]
    instants = [e for e in events if e.ph == "i"]
    lanes = sorted({(e.pid, e.tid) for e in spans + instants})
    omitted = max(0, len(lanes) - max_rows)
    lanes = lanes[:max_rows]
    lane_index = {lane: i for i, lane in enumerate(lanes)}

    row_h = 14
    margin_left, margin_top, margin_right, margin_bottom = 110, 48, 20, 30
    width = 860
    height = margin_top + max(1, len(lanes)) * row_h + margin_bottom
    plot_w = width - margin_left - margin_right

    ts_all = [e.ts for e in spans + instants] + [
        e.ts + e.dur for e in spans
    ]
    t_lo = min(ts_all, default=0.0)
    t_hi = max(ts_all, default=1.0)
    span_t = max(t_hi - t_lo, 1e-9)

    def px(ts: float) -> float:
        return margin_left + (ts - t_lo) / span_t * plot_w

    font = "ui-sans-serif, system-ui, sans-serif"
    pid_names = {0: "host", 1: "simulator", 2: "scheduler"}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_left}" y="20" font-family="{font}" '
        f'font-size="14" font-weight="bold">{title}</text>',
        f'<text x="{margin_left}" y="36" font-family="{font}" font-size="10" '
        f'fill="#555">{len(spans)} spans, {len(instants)} instants, '
        f"clock [{t_lo:g}, {t_hi:g}]"
        + (f" &#8212; {omitted} lanes omitted" if omitted else "")
        + "</text>",
    ]

    for (pid, tid), i in lane_index.items():
        y = margin_top + i * row_h
        if i % 2:
            parts.append(
                f'<rect x="{margin_left}" y="{y}" width="{plot_w}" '
                f'height="{row_h}" fill="#f4f4f4"/>'
            )
        label = f"{pid_names.get(pid, pid)}/{tid}"
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + row_h - 4}" '
            f'font-family="{font}" font-size="9" text-anchor="end">{label}</text>'
        )

    for e in spans:
        lane = (e.pid, e.tid)
        if lane not in lane_index:
            continue
        y = margin_top + lane_index[lane] * row_h + 2
        x0, x1 = px(e.ts), px(e.ts + e.dur)
        w = max(x1 - x0, 1.0)
        color = _TIMELINE_PALETTE.get(e.cat, "#7f7f7f")
        parts.append(
            f'<rect x="{x0:.1f}" y="{y}" width="{w:.1f}" height="{row_h - 4}" '
            f'fill="{color}" fill-opacity="0.8"><title>{e.name} '
            f"[{e.ts:g}, {e.ts + e.dur:g}]</title></rect>"
        )

    for e in instants:
        lane = (e.pid, e.tid)
        if lane not in lane_index:
            continue
        y = margin_top + lane_index[lane] * row_h
        x = px(e.ts)
        color = _TIMELINE_INSTANT.get(
            e.name, _TIMELINE_PALETTE.get(e.cat, "#444444")
        )
        parts.append(
            f'<line x1="{x:.1f}" y1="{y + 2}" x2="{x:.1f}" y2="{y + row_h - 2}" '
            f'stroke="{color}" stroke-width="1"><title>{e.name}@{e.ts:g}</title></line>'
        )

    axis_y = margin_top + len(lanes) * row_h
    parts.append(
        f'<line x1="{margin_left}" y1="{axis_y}" '
        f'x2="{margin_left + plot_w}" y2="{axis_y}" stroke="black"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = t_lo + frac * span_t
        x = px(t)
        parts.append(
            f'<text x="{x:.1f}" y="{axis_y + 14}" font-family="{font}" '
            f'font-size="9" text-anchor="middle">{t:g}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def render_figure10_svg(
    bars: list[Figure10Bar], style: SvgStyle | None = None
) -> str:
    """Figure 10 as grouped bars (optimizations on vs off)."""
    style = style or SvgStyle(width=860, margin_right=40, margin_bottom=120)
    peak = max(bar.with_optimizations for bar in bars) / 1e9
    y_hi = _nice_ceiling(peak * 1.05)
    plot_h = style.plot_height
    axis_y = style.margin_top + plot_h
    group_w = style.plot_width / len(bars)
    bar_w = group_w * 0.32

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{style.width}" '
        f'height="{style.height}" viewBox="0 0 {style.width} {style.height}">',
        f'<rect width="{style.width}" height="{style.height}" fill="white"/>',
        f'<text x="{style.margin_left}" y="24" font-family="{style.font}" '
        'font-size="15" font-weight="bold">fig10: PLR throughput with and '
        "without optimizations</text>",
    ]
    for t in range(6):
        g = y_hi * t / 5
        y = style.margin_top + (1 - g / y_hi) * plot_h
        parts.append(
            f'<line x1="{style.margin_left}" y1="{y:.1f}" '
            f'x2="{style.margin_left + style.plot_width}" y2="{y:.1f}" '
            'stroke="#dddddd" stroke-dasharray="3,3"/>'
        )
        parts.append(
            f'<text x="{style.margin_left - 8}" y="{y + 4:.1f}" '
            f'font-family="{style.font}" font-size="10" text-anchor="end">{g:g}</text>'
        )
    for i, bar in enumerate(bars):
        x0 = style.margin_left + i * group_w + group_w * 0.15
        for offset, value, color in (
            (0.0, bar.with_optimizations, "#9467bd"),
            (bar_w + 2, bar.without_optimizations, "#c5b0d5"),
        ):
            h = (value / 1e9) / y_hi * plot_h
            parts.append(
                f'<rect x="{x0 + offset:.1f}" y="{axis_y - h:.1f}" '
                f'width="{bar_w:.1f}" height="{h:.1f}" fill="{color}"/>'
            )
        label_x = x0 + bar_w
        parts.append(
            f'<text x="{label_x:.1f}" y="{axis_y + 10}" '
            f'font-family="{style.font}" font-size="10" text-anchor="end" '
            f'transform="rotate(-45 {label_x:.1f} {axis_y + 10})">'
            f"{bar.recurrence}</text>"
        )
    parts.append(
        f'<line x1="{style.margin_left}" y1="{axis_y}" '
        f'x2="{style.margin_left + style.plot_width}" y2="{axis_y}" stroke="black"/>'
    )
    legend_x = style.margin_left + 10
    parts.append(
        f'<rect x="{legend_x}" y="{style.margin_top}" width="12" height="12" fill="#9467bd"/>'
        f'<text x="{legend_x + 18}" y="{style.margin_top + 10}" '
        f'font-family="{style.font}" font-size="12">optimizations on</text>'
    )
    parts.append(
        f'<rect x="{legend_x + 150}" y="{style.margin_top}" width="12" height="12" fill="#c5b0d5"/>'
        f'<text x="{legend_x + 168}" y="{style.margin_top + 10}" '
        f'font-family="{style.font}" font-size="12">optimizations off</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
