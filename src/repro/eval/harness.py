"""The experiment runner: sweeps, series, and claim checking.

One :class:`ExperimentDef` describes a figure or table from the paper:
which codes run, on which recurrence, over which input sizes.  The
harness produces :class:`Series` of modeled throughput (words/second,
the y-axis of Figures 1-9), optionally validating each code's
executable semantics against the serial reference at a reduced size —
the reproduction's analogue of the paper's "after each run, we
validate the result by comparing it to the serial CPU result".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import RecurrenceCode, Workload
from repro.baselines.registry import make_code
from repro.core.errors import ReproError
from repro.core.recurrence import Recurrence
from repro.core.validation import assert_valid
from repro.core.reference import serial_full
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import MachineSpec
from repro.obs.tracer import coerce_tracer

__all__ = [
    "DEFAULT_SIZES",
    "ExperimentDef",
    "Series",
    "FigureResult",
    "run_experiment",
    "validate_code",
]

DEFAULT_SIZES = tuple(2**e for e in range(14, 31))
"""The paper's sweep: 2^14 to 2^30 words in powers of two."""


@dataclass(frozen=True)
class ExperimentDef:
    """One figure's workload matrix."""

    figure_id: str
    title: str
    recurrence: Recurrence
    codes: tuple[str, ...]
    sizes: tuple[int, ...] = DEFAULT_SIZES
    validate_at: int = 50_000
    """Input size for the correctness cross-check (0 disables)."""


@dataclass
class Series:
    """One code's throughput curve for one recurrence."""

    code: str
    sizes: list[int] = field(default_factory=list)
    throughput: list[float] = field(default_factory=list)
    supported: list[bool] = field(default_factory=list)

    def at(self, n: int) -> float | None:
        """Modeled throughput at size n, or None when unsupported."""
        try:
            idx = self.sizes.index(n)
        except ValueError:
            return None
        return self.throughput[idx] if self.supported[idx] else None

    def largest_supported(self) -> tuple[int, float] | None:
        for size, tp, ok in zip(
            reversed(self.sizes), reversed(self.throughput), reversed(self.supported)
        ):
            if ok:
                return size, tp
        return None


@dataclass
class FigureResult:
    """All series of one figure, plus validation outcomes."""

    definition: ExperimentDef
    series: dict[str, Series]
    validated: dict[str, bool]
    validation_errors: dict[str, str] = field(default_factory=dict)
    """Typed validation failures when running resiliently: code name ->
    ``"ErrorType: message"`` for every code whose cross-check raised a
    :class:`~repro.core.errors.ReproError` instead of passing."""

    def series_for(self, code: str) -> Series:
        return self.series[code]


def validate_code(
    code: RecurrenceCode, recurrence: Recurrence, n: int, seed: int = 20180324
) -> bool:
    """Run the code's executable path against the serial reference."""
    if code.name == "memcpy":
        return True  # not a recurrence solver
    rng = np.random.default_rng(seed)
    if recurrence.is_integer:
        values = rng.integers(-50, 50, size=n).astype(np.int32)
    else:
        values = rng.standard_normal(n).astype(np.float32)
    got = code.compute(values, recurrence)
    expected = serial_full(values, recurrence.signature)
    assert_valid(got, expected, context=code.name)
    return True


def run_experiment(
    definition: ExperimentDef,
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
    validate: bool = True,
    resilient: bool = False,
    tracer=None,
) -> FigureResult:
    """Produce every code's throughput curve for one experiment.

    With ``resilient=True`` a code whose correctness cross-check raises
    a typed :class:`~repro.core.errors.ReproError` is recorded as
    failed (``validated[code] = False`` plus an entry in
    ``validation_errors``) instead of aborting the whole sweep — one
    broken baseline should not cost the other curves of a long
    evaluation run.  Untyped exceptions still propagate: those are
    bugs, not measured failures.

    ``tracer`` (``True`` / a :class:`~repro.obs.tracer.Tracer` /
    ``None``) records one ``sweep`` span per code plus a ``validate``
    instant per cross-check outcome, so a long figure run shows where
    the wall-clock went.
    """
    machine = machine or MachineSpec.titan_x()
    cost_model = cost_model or CostModel(machine)
    tracer = coerce_tracer(tracer)
    series: dict[str, Series] = {}
    validated: dict[str, bool] = {}
    validation_errors: dict[str, str] = {}
    for code_name in definition.codes:
        code = make_code(code_name)
        curve = Series(code=code_name)
        with tracer.span(
            "sweep",
            cat="eval",
            args={"code": code_name, "figure": definition.figure_id}
            if tracer.enabled
            else None,
        ):
            for n in definition.sizes:
                workload = Workload(definition.recurrence, n)
                ok = code.supports(workload, machine)
                curve.sizes.append(n)
                curve.supported.append(ok)
                if ok:
                    traffic = code.traffic(workload, machine)
                    curve.throughput.append(cost_model.throughput(n, traffic))
                else:
                    curve.throughput.append(0.0)
        series[code_name] = curve
        if validate and definition.validate_at:
            workload = Workload(definition.recurrence, definition.validate_at)
            if code.supports(workload, machine):
                try:
                    validated[code_name] = validate_code(
                        code, definition.recurrence, definition.validate_at
                    )
                except ReproError as exc:
                    if not resilient:
                        raise
                    validated[code_name] = False
                    validation_errors[code_name] = f"{type(exc).__name__}: {exc}"
            else:
                validated[code_name] = False
            if tracer.enabled:
                tracer.instant(
                    "validate",
                    cat="eval",
                    args={"code": code_name, "ok": validated[code_name]},
                )
    return FigureResult(
        definition=definition,
        series=series,
        validated=validated,
        validation_errors=validation_errors,
    )
