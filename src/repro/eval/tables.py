"""Tables 2 and 3: GPU memory usage and L2 read misses.

Both tables use the largest input every code supports — 67,108,864
words (2^26) — and report one row per recurrence order.  The paper
notes the measurements "only depend on the order of the recurrence but
not the coefficients or the data type"; per code we therefore pick a
representative recurrence of each order from its supported domain
(tuple prefix sums for the scan libraries, low-pass filters for the
image-filtering codes, either for PLR and Scan).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Workload
from repro.baselines.registry import make_code
from repro.core.coefficients import table1_signatures
from repro.core.recurrence import Recurrence
from repro.gpusim.spec import MachineSpec

__all__ = [
    "TABLE_INPUT_WORDS",
    "TABLE_CODES",
    "TableCell",
    "table2_memory_usage",
    "table3_l2_misses",
    "representative_recurrence",
]

TABLE_INPUT_WORDS = 67_108_864
"""2^26 words: the largest input all six codes support."""

TABLE_CODES = ("PLR", "CUB", "SAM", "Scan", "Alg3", "Rec")

_INTEGER_BY_ORDER = {
    1: "prefix_sum",
    2: "tuple2_prefix_sum",
    3: "tuple3_prefix_sum",
}
_FLOAT_BY_ORDER = {1: "low_pass_1", 2: "low_pass_2", 3: "low_pass_3"}


def representative_recurrence(code_name: str, order: int) -> Recurrence:
    """A supported order-k recurrence for the given code."""
    sigs = table1_signatures()
    if code_name in ("Alg3", "Rec"):
        return Recurrence(sigs[_FLOAT_BY_ORDER[order]])
    return Recurrence(sigs[_INTEGER_BY_ORDER[order]])


@dataclass(frozen=True)
class TableCell:
    """One (code, order) measurement in megabytes."""

    code: str
    order: int
    megabytes: float


def table2_memory_usage(
    machine: MachineSpec | None = None,
    n: int = TABLE_INPUT_WORDS,
    include_memcpy: bool = True,
) -> list[TableCell]:
    """Total GPU memory usage (Table 2), in megabytes."""
    machine = machine or MachineSpec.titan_x()
    cells = []
    for order in (1, 2, 3):
        for code_name in TABLE_CODES:
            code = make_code(code_name)
            workload = Workload(representative_recurrence(code_name, order), n)
            usage = code.memory_usage_bytes(workload, machine)
            cells.append(TableCell(code_name, order, usage / 2**20))
        if include_memcpy:
            code = make_code("memcpy")
            workload = Workload(representative_recurrence("PLR", order), n)
            usage = code.memory_usage_bytes(workload, machine)
            cells.append(TableCell("memcpy", order, usage / 2**20))
    return cells


def table3_l2_misses(
    machine: MachineSpec | None = None,
    n: int = TABLE_INPUT_WORDS,
) -> list[TableCell]:
    """L2 read misses converted to megabytes (Table 3)."""
    machine = machine or MachineSpec.titan_x()
    cells = []
    for order in (1, 2, 3):
        for code_name in TABLE_CODES:
            code = make_code(code_name)
            workload = Workload(representative_recurrence(code_name, order), n)
            misses = code.l2_read_miss_bytes(workload, machine)
            assert misses is not None  # all table codes use the L2
            cells.append(TableCell(code_name, order, misses / 2**20))
    return cells
