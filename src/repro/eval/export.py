"""Machine-readable export of the reproduced evaluation.

Reviewers replotting a reproduction want data, not ASCII art.  This
module serializes the figures and tables to JSON and CSV:

* :func:`figure_to_rows` / :func:`table_to_rows` — flat dict rows;
* :func:`export_csv` / :func:`export_json` — file writers;
* :func:`export_everything` — one call, one directory, every figure
  (1-10) and both tables, plus a manifest with the machine and cost-
  model parameters used, so a plot can cite its provenance.

The CLI exposes this as ``plr export OUTDIR``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Mapping

from repro.eval.figures import figure10_throughputs, figure_definitions
from repro.eval.harness import FigureResult, run_experiment
from repro.eval.tables import TableCell, table2_memory_usage, table3_l2_misses
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import MachineSpec

__all__ = [
    "figure_to_rows",
    "table_to_rows",
    "export_csv",
    "export_json",
    "export_everything",
]


def figure_to_rows(result: FigureResult) -> list[dict]:
    """One row per (size, code) point of a throughput figure."""
    rows = []
    definition = result.definition
    for code, series in result.series.items():
        for size, throughput, supported in zip(
            series.sizes, series.throughput, series.supported
        ):
            rows.append(
                {
                    "figure": definition.figure_id,
                    "recurrence": str(definition.recurrence.signature),
                    "code": code,
                    "n_words": size,
                    "words_per_second": throughput if supported else None,
                    "supported": supported,
                }
            )
    return rows


def figure10_rows() -> list[dict]:
    rows = []
    for bar in figure10_throughputs():
        rows.append(
            {
                "figure": "fig10",
                "recurrence": bar.recurrence,
                "n_words": bar.n,
                "optimizations_on": bar.with_optimizations,
                "optimizations_off": bar.without_optimizations,
                "speedup": bar.speedup,
            }
        )
    return rows


def table_to_rows(cells: Iterable[TableCell], table: str) -> list[dict]:
    return [
        {"table": table, "code": c.code, "order": c.order, "megabytes": c.megabytes}
        for c in cells
    ]


def export_csv(rows: list[Mapping], path: Path) -> None:
    """Write homogeneous dict rows as CSV."""
    if not rows:
        raise ValueError(f"no rows to write to {path}")
    fields = list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)


def export_json(payload, path: Path) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def export_everything(
    outdir: str | Path,
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
    svg: bool = False,
    tracer=None,
) -> list[Path]:
    """Write every figure and table under ``outdir``; returns the paths.

    With ``svg=True``, also renders each figure as a standalone SVG
    chart (no plotting stack required).  A ``tracer`` is threaded into
    every :func:`run_experiment` sweep so a full export can be profiled
    end to end.
    """
    machine = machine or MachineSpec.titan_x()
    cost_model = cost_model or CostModel(machine)
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    all_figure_rows: list[dict] = []
    for fid, definition in sorted(figure_definitions().items()):
        result = run_experiment(
            definition,
            machine=machine,
            cost_model=cost_model,
            validate=False,
            tracer=tracer,
        )
        rows = figure_to_rows(result)
        all_figure_rows.extend(rows)
        stem = fid.replace(".", "_")
        path = outdir / f"{stem}.csv"
        export_csv(rows, path)
        written.append(path)
        if svg:
            from repro.eval.svgplot import render_figure_svg

            svg_path = outdir / f"{stem}.svg"
            svg_path.write_text(render_figure_svg(result))
            written.append(svg_path)

    fig10 = figure10_rows()
    path = outdir / "fig10.csv"
    export_csv(fig10, path)
    written.append(path)
    if svg:
        from repro.eval.figures import figure10_throughputs
        from repro.eval.svgplot import render_figure10_svg

        svg_path = outdir / "fig10.svg"
        svg_path.write_text(render_figure10_svg(figure10_throughputs()))
        written.append(svg_path)

    for name, cells in (
        ("table2_memory", table2_memory_usage(machine)),
        ("table3_l2", table3_l2_misses(machine)),
    ):
        rows = table_to_rows(cells, name)
        path = outdir / f"{name}.csv"
        export_csv(rows, path)
        written.append(path)

    manifest = {
        "paper": "Maleki & Burtscher, ASPLOS 2018, DOI 10.1145/3173162.3173168",
        "machine": asdict(machine),
        "cost_model": {
            "bandwidth_efficiency": cost_model.bandwidth_efficiency,
            "compute_efficiency": cost_model.compute_efficiency,
            "l2_bandwidth_ratio": cost_model.l2_bandwidth_ratio,
            "hop_latency_s": cost_model.hop_latency_s,
        },
        "figures": sorted({row["figure"] for row in all_figure_rows} | {"fig10"}),
        "tables": ["table2_memory", "table3_l2"],
    }
    path = outdir / "manifest.json"
    export_json(manifest, path)
    written.append(path)

    combined = outdir / "all_figures.json"
    export_json(all_figure_rows + fig10, combined)
    written.append(combined)
    return written
