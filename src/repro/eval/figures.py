"""The figure definitions of the paper's evaluation (Figures 1-10).

Each definition names the recurrence, the competing codes, and the
sweep, exactly as Section 6 describes.  ``figure10_throughputs``
handles the special structure of Figure 10 (largest input, eleven
recurrences, optimizations on vs off).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Workload
from repro.baselines.registry import make_code
from repro.core.coefficients import table1_signatures
from repro.core.recurrence import Recurrence
from repro.eval.harness import DEFAULT_SIZES, ExperimentDef
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import MachineSpec

__all__ = [
    "INTEGER_CODES",
    "FLOAT_CODES",
    "figure_definitions",
    "figure10_throughputs",
    "FIGURE10_ORDER",
]

INTEGER_CODES = ("memcpy", "CUB", "SAM", "Scan", "PLR")
FLOAT_CODES = ("memcpy", "Alg3", "Rec", "Scan", "PLR")


def _rec(name: str) -> Recurrence:
    return Recurrence(table1_signatures()[name])


def figure_definitions() -> dict[str, ExperimentDef]:
    """Figures 1-9, keyed by their short ids."""
    defs = [
        ExperimentDef(
            "fig1", "Prefix-sum throughput", _rec("prefix_sum"), INTEGER_CODES
        ),
        ExperimentDef(
            "fig2",
            "Two-tuple prefix-sum throughput",
            _rec("tuple2_prefix_sum"),
            INTEGER_CODES,
        ),
        ExperimentDef(
            "fig3",
            "Three-tuple prefix-sum throughput",
            _rec("tuple3_prefix_sum"),
            INTEGER_CODES,
        ),
        ExperimentDef(
            "fig4",
            "Second-order prefix-sum throughput",
            _rec("order2_prefix_sum"),
            INTEGER_CODES,
        ),
        ExperimentDef(
            "fig5",
            "Third-order prefix-sum throughput",
            _rec("order3_prefix_sum"),
            INTEGER_CODES,
        ),
        ExperimentDef(
            "fig6", "1-stage low-pass filter throughput", _rec("low_pass_1"), FLOAT_CODES
        ),
        ExperimentDef(
            "fig7", "2-stage low-pass filter throughput", _rec("low_pass_2"), FLOAT_CODES
        ),
        ExperimentDef(
            "fig8", "3-stage low-pass filter throughput", _rec("low_pass_3"), FLOAT_CODES
        ),
        # Figure 9 overlays PLR's three high-pass stages and Scan's
        # 1-stage curve; represented as three defs sharing a prefix.
        ExperimentDef(
            "fig9.1",
            "1-stage high-pass filter throughput",
            _rec("high_pass_1"),
            ("memcpy", "Scan", "PLR"),
        ),
        ExperimentDef(
            "fig9.2",
            "2-stage high-pass filter throughput",
            _rec("high_pass_2"),
            ("memcpy", "PLR"),
        ),
        ExperimentDef(
            "fig9.3",
            "3-stage high-pass filter throughput",
            _rec("high_pass_3"),
            ("memcpy", "PLR"),
        ),
    ]
    return {d.figure_id: d for d in defs}


FIGURE10_ORDER = (
    "prefix_sum",
    "tuple2_prefix_sum",
    "tuple3_prefix_sum",
    "order2_prefix_sum",
    "order3_prefix_sum",
    "low_pass_1",
    "low_pass_2",
    "low_pass_3",
    "high_pass_1",
    "high_pass_2",
    "high_pass_3",
)


@dataclass(frozen=True)
class Figure10Bar:
    """One recurrence's optimizations-on/off throughput pair."""

    recurrence: str
    n: int
    with_optimizations: float
    without_optimizations: float

    @property
    def speedup(self) -> float:
        return self.with_optimizations / self.without_optimizations


def figure10_throughputs(
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
) -> list[Figure10Bar]:
    """PLR on the largest supported input, optimizations on vs off.

    "Figure 10 combines the PLR throughputs on the largest input of the
    eleven studied recurrences ... For each recurrence, the figure
    includes the throughput when turning off the optimizations
    pertaining to the correction factors."
    """
    machine = machine or MachineSpec.titan_x()
    cost_model = cost_model or CostModel(machine)
    plr_on = make_code("PLR")
    plr_off = make_code("PLR-noopt")
    bars = []
    largest = DEFAULT_SIZES[-1]
    for name in FIGURE10_ORDER:
        recurrence = _rec(name)
        workload = Workload(recurrence, largest)
        on = cost_model.throughput(largest, plr_on.traffic(workload, machine))
        off = cost_model.throughput(largest, plr_off.traffic(workload, machine))
        bars.append(
            Figure10Bar(
                recurrence=name,
                n=largest,
                with_optimizations=on,
                without_optimizations=off,
            )
        )
    return bars
