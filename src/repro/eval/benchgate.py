"""The perf-regression gate: compare a bench run against a baseline.

``plr bench --compare BENCH_parallel.json`` re-runs the benchmark that
produced the baseline and fails (exit 1) when any backend regressed
beyond the tolerance.  The unit of comparison is one **row** — the
``(op, n, dtype, backend)`` tuple — so a regression in the process
backend cannot hide behind an improvement in the vectorized one, and a
baseline row with no current counterpart fails loudly instead of
silently shrinking coverage.

Two metrics are supported:

* ``speedup`` (default) — higher is better; measured relative to the
  serial reference *within the same run*, which cancels machine-wide
  noise (a globally slow CI box slows serial and parallel alike).
* ``wall_s`` — lower is better; absolute wall time, for when the
  machine is known to be stable.

The gate is advisory-by-tolerance, never advisory-by-silence: every row
is printed with its delta, and ``--update-baseline`` is the documented
escape hatch for intentional performance changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.errors import ReproError

__all__ = [
    "BenchRow",
    "GateReport",
    "compare_payloads",
    "load_baseline",
    "render_report",
]

METRICS = ("speedup", "wall_s")

_HIGHER_IS_BETTER = {"speedup": True, "wall_s": False}


@dataclass(frozen=True)
class BenchRow:
    """One gated comparison: a baseline row against its current twin."""

    op: str
    n: int
    dtype: str
    backend: str
    baseline: float
    current: float | None
    delta_pct: float | None
    regressed: bool
    skipped_reason: str | None = None

    @property
    def key(self) -> tuple:
        return (self.op, self.n, self.dtype, self.backend)


@dataclass(frozen=True)
class GateReport:
    """Every row's verdict plus the gate's overall outcome."""

    metric: str
    tolerance_pct: float
    rows: tuple

    @property
    def ok(self) -> bool:
        return not any(row.regressed for row in self.rows)

    @property
    def regressions(self) -> list:
        return [row for row in self.rows if row.regressed]


def _row_key(record: dict) -> tuple:
    return (
        record["op"],
        int(record["n"]),
        record["dtype"],
        record["backend"],
    )


def _validate_payload(payload, *, what: str) -> list[dict]:
    if not isinstance(payload, dict) or not isinstance(
        payload.get("results"), list
    ):
        raise ReproError(
            f"{what} is not a bench payload: expected an object with a "
            "'results' array"
        )
    records = payload["results"]
    if not records:
        raise ReproError(f"{what} has an empty 'results' array")
    for record in records:
        missing = [
            key
            for key in ("op", "n", "dtype", "backend", "wall_s", "speedup")
            if key not in record
        ]
        if missing:
            raise ReproError(
                f"{what} row {record!r} is missing {', '.join(missing)}"
            )
    return records


def load_baseline(path: str) -> dict:
    """Read and shape-check a bench payload written by ``plr bench``."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ReproError(
            f"baseline {path!r} does not exist; run 'plr bench -o {path}' "
            "to create one"
        ) from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    _validate_payload(payload, what=f"baseline {path!r}")
    return payload


def compare_payloads(
    baseline: dict,
    current: dict,
    *,
    tolerance_pct: float = 10.0,
    metric: str = "speedup",
    skipped_backends: dict | None = None,
) -> GateReport:
    """Gate ``current`` against ``baseline`` row by row.

    A row regresses when its metric moved in the *bad* direction by more
    than ``tolerance_pct`` percent of the baseline value; a baseline row
    absent from the current run regresses unconditionally (lost
    coverage must not pass silently).  Rows only in the current run are
    ignored — the baseline defines the contract.

    ``skipped_backends`` maps a backend name to a declared reason it
    could not run on this machine (e.g. the native backend on a box
    with no C compiler).  A baseline row for such a backend that is
    missing from the current run is reported as skipped, not regressed
    — the machine lacks the capability, the code did not lose it.
    """
    if metric not in METRICS:
        raise ReproError(
            f"unknown gate metric {metric!r}; known: {', '.join(METRICS)}"
        )
    if tolerance_pct < 0:
        raise ReproError(
            f"tolerance must be >= 0 percent, got {tolerance_pct}"
        )
    base_rows = _validate_payload(baseline, what="baseline")
    cur_by_key = {
        _row_key(record): record
        for record in _validate_payload(current, what="current run")
    }
    higher_better = _HIGHER_IS_BETTER[metric]
    rows = []
    for record in base_rows:
        key = _row_key(record)
        base_value = float(record[metric])
        cur = cur_by_key.get(key)
        if cur is None:
            reason = (skipped_backends or {}).get(record["backend"])
            rows.append(
                BenchRow(*key, baseline=base_value, current=None,
                         delta_pct=None, regressed=reason is None,
                         skipped_reason=reason)
            )
            continue
        cur_value = float(cur[metric])
        if base_value > 0:
            # Signed change, oriented so positive == worse.
            if higher_better:
                delta_pct = (base_value - cur_value) / base_value * 100.0
            else:
                delta_pct = (cur_value - base_value) / base_value * 100.0
        else:
            delta_pct = 0.0
        rows.append(
            BenchRow(
                *key,
                baseline=base_value,
                current=cur_value,
                delta_pct=delta_pct,
                regressed=delta_pct > tolerance_pct,
            )
        )
    return GateReport(
        metric=metric, tolerance_pct=float(tolerance_pct), rows=tuple(rows)
    )


def render_report(report: GateReport) -> str:
    """The human-readable gate verdict, one line per row."""
    lines = [
        f"perf gate: metric={report.metric} "
        f"tolerance={report.tolerance_pct:g}%"
    ]
    for row in report.rows:
        label = f"{row.op} n={row.n} {row.dtype} {row.backend}"
        if row.current is None:
            if row.skipped_reason is not None:
                lines.append(f"  skip {label}: {row.skipped_reason}")
            else:
                lines.append(f"  FAIL {label}: row missing from current run")
            continue
        verdict = "FAIL" if row.regressed else "ok  "
        lines.append(
            f"  {verdict} {label}: {report.metric} "
            f"{row.baseline:g} -> {row.current:g} "
            f"({-row.delta_pct:+.1f}% vs baseline)"
        )
    if report.ok:
        lines.append(f"gate passed: {len(report.rows)} rows within tolerance")
    else:
        lines.append(
            f"gate FAILED: {len(report.regressions)}/{len(report.rows)} rows "
            f"regressed beyond {report.tolerance_pct:g}% "
            "(if intentional, refresh with --update-baseline)"
        )
    return "\n".join(lines)
