"""Recursive audio filtering: the paper's DSP motivation, end to end.

"IIR filters ... are, for example, used for DC removal, noise
suppression, wave shaping, and smoothing of discrete-time signals in
telecommunication and audio applications."

This example designs filters with the library's Smith-formula helpers
and the z-transform cascade (the offline combination step the paper
defers to the z-transform), then runs them through the PLR solver on a
synthetic audio signal:

1. build a noisy signal: a 440 Hz tone + a DC offset + white noise;
2. remove the noise with a cascaded low-pass filter;
3. remove the DC offset with a high-pass filter;
4. quantify the SNR improvement and verify against the serial filter.
"""

import math

import numpy as np

from repro import PLRSolver, Recurrence, assert_valid, serial_full
from repro.core.coefficients import high_pass, pole_for_cutoff, single_pole_low_pass
from repro.core.ztransform import cascade, frequency_response, is_stable, poles

SAMPLE_RATE = 44_100
TONE_HZ = 440.0
DURATION_S = 4.0


def make_signal(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A 440 Hz tone buried in white noise, riding on a DC offset."""
    t = np.arange(int(SAMPLE_RATE * DURATION_S)) / SAMPLE_RATE
    tone = np.sin(2 * math.pi * TONE_HZ * t).astype(np.float32)
    noise = 0.8 * rng.standard_normal(t.size).astype(np.float32)
    dc = np.float32(0.5)
    return tone, tone + noise + dc


def snr_db(reference: np.ndarray, signal: np.ndarray) -> float:
    noise_power = float(np.mean((signal - reference) ** 2))
    signal_power = float(np.mean(reference**2))
    return 10.0 * math.log10(signal_power / noise_power)


def main() -> None:
    rng = np.random.default_rng(7)
    tone, noisy = make_signal(rng)
    print(f"input SNR: {snr_db(tone + 0.5, noisy):.1f} dB "
          f"({noisy.size} samples at {SAMPLE_RATE} Hz)")

    # --- design: two-stage low-pass with cutoff above the tone ---------
    # pole for a -3 dB point at ~1.5 kHz (normalized f = 1500/44100)
    pole = pole_for_cutoff(1500 / SAMPLE_RATE)
    one_stage = single_pole_low_pass(pole)
    two_stage = cascade(one_stage, one_stage)  # the offline z-transform step
    print(f"low-pass stage:   {one_stage}")
    print(f"cascaded 2-stage: {two_stage}")
    assert is_stable(two_stage), "cascade must stay stable"
    print(f"poles: {[f'{abs(p):.3f}' for p in poles(two_stage)]}")

    # check the passband/stopband like a filter designer would
    h = frequency_response(two_stage, [TONE_HZ / SAMPLE_RATE, 0.25])
    print(f"|H| at 440 Hz: {abs(h[0]):.3f}, |H| at Nyquist/2: {abs(h[1]):.4f}")

    # --- run the cascaded filter through the PLR solver ----------------
    lp = Recurrence(two_stage)
    smoothed = PLRSolver(lp).solve(noisy)
    assert_valid(smoothed, serial_full(noisy, two_stage))
    # The filter has unity DC gain, so the offset survives; SNR is
    # judged against the DC-shifted tone.
    print(f"after low-pass:  SNR {snr_db(tone + 0.5, smoothed):.1f} dB")

    # --- DC removal with a gentle high-pass ----------------------------
    hp = high_pass(1, x=0.999)  # very low cutoff: keeps the tone, kills DC
    dc_free = PLRSolver(Recurrence(hp)).solve(smoothed)
    assert_valid(dc_free, serial_full(smoothed, hp))
    print(f"after high-pass: mean {float(np.mean(dc_free)):+.4f} "
          f"(was {float(np.mean(smoothed)):+.4f})")
    print(f"final SNR vs clean tone: {snr_db(tone, dc_free):.1f} dB")


if __name__ == "__main__":
    main()
