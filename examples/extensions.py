"""The future-work extensions, exercised end to end.

The paper's closing section lists several directions; this library
implements four of them, and this example drives each one:

1. **streaming** — seamless block-wise evaluation with carried state
   (buffered audio / batched logs);
2. **multiple dimensions** — batched rows, separable 2D filters, and
   summed-area tables;
3. **operators other than addition** — recurrences over semirings:
   a tropical (max, +) sliding-window DP and boolean reachability;
4. **auto-tuning m and x** — SAM-style tuning of the per-thread grain
   against the cost model.
"""

import numpy as np

from repro import Recurrence
from repro.gpusim.cost import CostModel
from repro.gpusim.spec import MachineSpec
from repro.plr import (
    BooleanSemiring,
    MaxPlus,
    StreamingSolver,
    semiring_serial,
    semiring_solve,
    solve_batch,
    summed_area_table,
    tuned_plan,
)
from repro.plr.semiring import SlidingWindowDP


def streaming_demo(rng: np.random.Generator) -> None:
    print("== streaming ==")
    stream = StreamingSolver("(0.04: 1.6, -0.64)")  # 2-stage low-pass
    total = rng.standard_normal(1_000_000).astype(np.float32)
    chunks = np.split(total, [100_000, 137_000, 600_000])
    out = stream.push_many(chunks)
    one_shot = StreamingSolver("(0.04: 1.6, -0.64)").push(total)
    worst = float(np.max(np.abs(out - one_shot)))
    print(
        f"  4 blocks vs one shot over {total.size} samples: "
        f"max deviation {worst:.2e}"
    )
    checkpoint = stream.state
    print(f"  checkpointable state: {checkpoint.outputs.size} outputs, "
          f"{checkpoint.inputs.size} inputs, position {checkpoint.position}")


def nd_demo(rng: np.random.Generator) -> None:
    print("== multiple dimensions ==")
    image = rng.integers(0, 255, (512, 512)).astype(np.int64)
    sat = summed_area_table(image)
    r0, r1, c0, c1 = 100, 399, 50, 349
    box = (
        sat[r1, c1]
        - sat[r0 - 1, c1]
        - sat[r1, c0 - 1]
        + sat[r0 - 1, c0 - 1]
    )
    assert box == image[r0 : r1 + 1, c0 : c1 + 1].sum()
    print(f"  512x512 SAT built; O(1) box query verified (sum={box})")

    rows = rng.standard_normal((256, 4096)).astype(np.float32)
    smoothed = solve_batch(rows, "(0.2: 0.8)")
    print(f"  batched filtering: {rows.shape[0]} rows x {rows.shape[1]} "
          f"samples in one vectorized pass -> {smoothed.shape}")


def semiring_demo(rng: np.random.Generator) -> None:
    print("== semirings (operators other than addition) ==")
    # Tropical DP: best score ending at i with gap penalties.
    scores = rng.normal(0.0, 2.0, 500_000)
    dp = SlidingWindowDP((-1.0, -3.0))
    best = dp.solve(scores)
    print(f"  (max,+) sliding-window DP over {scores.size} scores: "
          f"optimum {best.max():.2f}")

    # Boolean reachability: can position i be reached by steps of 2/3
    # from any seed?
    seeds = rng.random(10_000) < 0.001
    reach = semiring_solve(seeds, [False, True, True], BooleanSemiring(), 256)
    oracle = semiring_serial(seeds, [False, True, True], BooleanSemiring())
    assert np.array_equal(reach, oracle)
    print(f"  boolean step-reachability: {int(reach.sum())} of {reach.size} "
          "positions reachable (verified vs serial)")

    # The tropical correction factors are the semiring n-naccis:
    from repro.plr.semiring import semiring_correction_factors

    factors = semiring_correction_factors([-1.5], MaxPlus(), 5)
    print(f"  (max,+) factors of penalty -1.5: {factors[0].tolist()} "
          "(arithmetic progression = tropical powers)")


def autotune_demo() -> None:
    print("== auto-tuning x (SAM-style) ==")
    from repro.baselines.base import Workload
    from repro.baselines.plr_code import PLRCode

    machine = MachineSpec.titan_x()
    model = CostModel(machine)
    recurrence = Recurrence.parse("(1: 1)")
    code = PLRCode()

    def objective(plan):
        workload = Workload(recurrence, plan.n)
        return model.time(code.traffic(workload, machine, plan=plan))

    for n in (1 << 16, 1 << 20, 1 << 26):
        plan = tuned_plan(recurrence.signature, n, objective)
        print(f"  n=2^{n.bit_length() - 1}: tuned x={plan.values_per_thread} "
              f"(m={plan.chunk_size})")


def frontend_demo(rng: np.random.Generator) -> None:
    print("== auto-parallelizing a serial loop ==")
    from repro.codegen.frontend import parallelize

    @parallelize
    def smooth(x, y, n):
        for i in range(n):
            y[i] = 0.2 * x[i] + 0.8 * y[i - 1]

    samples = rng.standard_normal(1_000_000).astype(np.float32)
    out = smooth(samples)  # the loop body above never runs
    print(f"  recognized: {smooth.recognized.describe()}")
    print(f"  parallel result over {samples.size} samples, "
          f"tail value {out[-1]:.4f}")


def main() -> None:
    rng = np.random.default_rng(2018)
    streaming_demo(rng)
    nd_demo(rng)
    semiring_demo(rng)
    autotune_demo()
    frontend_demo(rng)


if __name__ == "__main__":
    main()
