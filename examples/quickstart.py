"""Quickstart: signatures, the PLR solver, and the compiler.

Run with ``python examples/quickstart.py``.

This walks the paper's core loop in five minutes: express a linear
recurrence as a signature, compute it in parallel form, verify against
the serial reference, and look at the CUDA the PLR compiler would ship
to a GPU.
"""

import numpy as np

from repro import (
    PLRCompiler,
    PLRSolver,
    Recurrence,
    assert_valid,
    serial_full,
    table1_signatures,
)


def main() -> None:
    # --- 1. Signatures: "(feed-forward : feedback)" --------------------
    # The paper's Table 1, via the library's constructors:
    for name, signature in table1_signatures().items():
        print(f"{name:20s} {signature}")
    print()

    # --- 2. Solve a second-order prefix sum in parallel form -----------
    recurrence = Recurrence.parse("(1: 2, -1)")
    rng = np.random.default_rng(42)
    values = rng.integers(-100, 100, size=1_000_000).astype(np.int32)

    solver = PLRSolver(recurrence)
    result = solver.solve(values)

    # Validate exactly like the paper: integers must match bit-for-bit.
    expected = serial_full(values, recurrence.signature)
    report = assert_valid(result, expected)
    print(f"second-order prefix sum over {values.size} ints: {report.describe()}")

    # The plan PLR chose (the paper's m, x, T heuristics):
    print(f"execution plan: {solver.plan_for(values.size).describe()}")
    print()

    # --- 3. A floating-point recursive filter --------------------------
    lowpass = Recurrence.parse("(0.2: 0.8)")  # 1-stage low-pass, Table 1
    signal = rng.standard_normal(500_000).astype(np.float32)
    filtered = PLRSolver(lowpass).solve(signal)
    expected = serial_full(signal, lowpass.signature)
    report = assert_valid(filtered, expected)  # floats: within 1e-3
    print(f"low-pass filter over {signal.size} floats: {report.describe()}")
    print()

    # --- 4. The compiler: signature -> CUDA ----------------------------
    compiled = PLRCompiler().compile("(1: 2, -1)", n=1 << 24, backend="cuda")
    header = "\n".join(compiled.source.splitlines()[:12])
    print(f"CUDA emitted in {compiled.codegen_seconds * 1e3:.1f} ms; header:")
    print(header)
    print()

    # --- 5. The executable backend: generated C, compiled and run ------
    c_kernel = PLRCompiler().compile("(1: 2, -1)", n=values.size, backend="c")
    from_c = c_kernel.kernel(values)
    assert_valid(from_c, serial_full(values, recurrence.signature))
    print("generated C kernel verified against the serial reference")


if __name__ == "__main__":
    main()
