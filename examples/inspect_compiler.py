"""Looking over the compiler's shoulder: optimizations made visible.

The PLR compiler's distinguishing feature is that it *specializes* the
generated code to the correction factors of each recurrence (Section
3.1).  This example compiles four recurrences from Table 1 and shows
how differently they come out:

* standard prefix sum  -> every factor is 1: arrays folded to a constant;
* 2-tuple prefix sum   -> 0/1 factors: conditional adds, no multiplies;
* 2nd-order prefix sum -> general factors: shared-memory buffering;
* 2-stage low-pass     -> decaying factors: tails truncated to zero.

It then demonstrates that the optimizations are semantics-preserving
(optimized and unoptimized kernels agree) and times code generation,
which the paper reports as ~10 ms.
"""

import time

import numpy as np

from repro import OptimizationConfig, PLRCompiler, Recurrence, assert_valid
from repro.plr.optimizer import optimize_factors

SHOWCASES = {
    "prefix sum": "(1: 1)",
    "2-tuple prefix sum": "(1: 0, 1)",
    "2nd-order prefix sum": "(1: 2, -1)",
    "2-stage low-pass": "(0.04: 1.6, -0.64)",
}


def show_decisions(compiler: PLRCompiler, signature: str) -> None:
    ir = compiler.build_ir(signature, n=1 << 22)
    decisions = ", ".join(
        f"carry{d.carry_index}={d.realization.value}"
        for d in ir.factor_plan.decisions
    )
    stored = ir.factor_plan.stored_factor_words()
    full = ir.order * ir.chunk_size
    print(f"  realizations: {decisions}")
    print(f"  factor words stored: {stored} of {full} unoptimized")
    # A taste of the specialized CUDA:
    from repro.codegen.cuda import emit_cuda

    source = emit_cuda(ir)
    for line in source.splitlines():
        if "PLR_FACTOR" in line or "decays to zero" in line or "period" in line:
            print(f"  cuda| {line.strip()}")
            break


def main() -> None:
    compiler = PLRCompiler()
    for label, signature in SHOWCASES.items():
        print(f"{label}: {signature}")
        show_decisions(compiler, signature)
        print()

    # --- optimizations are semantics-preserving -------------------------
    rng = np.random.default_rng(0)
    values = rng.standard_normal(300_000).astype(np.float32)
    recurrence = Recurrence.parse("(0.04: 1.6, -0.64)")
    plain = PLRCompiler(optimization=OptimizationConfig.disabled())
    opt_result = compiler.compile(recurrence, n=values.size, backend="c")
    plain_result = plain.compile(recurrence, n=values.size, backend="c")
    assert_valid(opt_result.kernel(values), plain_result.kernel(values))
    shrink = len(plain_result.source) / len(opt_result.source)
    print(
        "optimized and unoptimized C kernels agree; source is "
        f"{shrink:.1f}x smaller with optimizations on"
    )

    # --- codegen speed (paper: "roughly 10 ms") -------------------------
    start = time.perf_counter()
    compiler.compile("(1: 3, -3, 1)", n=1 << 24, backend="cuda")
    elapsed = (time.perf_counter() - start) * 1e3
    print(f"CUDA generation for (1: 3, -3, 1) at n=2^24: {elapsed:.0f} ms")

    # The paper attributes this speed to the n-nacci formulation: the
    # slow path it replaced (solving the correction equations) exists
    # in this library too, as the test oracle:
    from repro.core.nnacci import correction_factors, solved_correction_factors
    from repro.core import Signature

    sig = Signature.parse("(1: 3, -3, 1)")
    start = time.perf_counter()
    fast = correction_factors(sig, 0, 512)
    fast_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    slow = solved_correction_factors(sig, 0, 512)
    slow_ms = (time.perf_counter() - start) * 1e3
    assert [int(v) for v in slow] == [int(v) for v in fast]
    print(
        f"n-nacci factors vs solved equations (512 terms): "
        f"{fast_ms:.2f} ms vs {slow_ms:.2f} ms, identical values"
    )


if __name__ == "__main__":
    main()
