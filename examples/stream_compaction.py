"""Stream compaction built on PLR prefix sums.

"Prefix sums are a key primitive that can be used to parallelize
computations such as sorting, stream compaction, polynomial
evaluation, histograms, and lexical analysis."

This example implements the classic compaction pipeline — predicate,
exclusive prefix sum, scatter — with the prefix sum computed by the
PLR solver, plus a radix-sort split step as a second consumer of the
same primitive.  Everything is verified against the obvious numpy
one-liners.
"""

import numpy as np

from repro import PLRSolver, Recurrence

_PREFIX_SUM = PLRSolver(Recurrence.parse("(1: 1)"))


def inclusive_prefix_sum(flags: np.ndarray) -> np.ndarray:
    return _PREFIX_SUM.solve(flags.astype(np.int32))


def compact(values: np.ndarray, predicate) -> np.ndarray:
    """Keep the elements satisfying ``predicate``, preserving order."""
    flags = predicate(values).astype(np.int32)
    positions = inclusive_prefix_sum(flags)  # 1-based target positions
    total = int(positions[-1]) if positions.size else 0
    out = np.empty(total, dtype=values.dtype)
    keep = flags.astype(bool)
    out[positions[keep] - 1] = values[keep]
    return out


def radix_split(values: np.ndarray, bit: int) -> np.ndarray:
    """One radix-sort split: stable partition by the given bit.

    The scatter addresses for the zero-bit elements are an exclusive
    prefix sum over the complemented bit, exactly the textbook
    scan-based formulation.
    """
    bits = ((values >> bit) & 1).astype(np.int32)
    zeros_incl = inclusive_prefix_sum((1 - bits).astype(np.int32))
    total_zeros = int(zeros_incl[-1]) if zeros_incl.size else 0
    ones_incl = inclusive_prefix_sum(bits)
    out = np.empty_like(values)
    zero_mask = bits == 0
    out[zeros_incl[zero_mask] - 1] = values[zero_mask]
    out[total_zeros + ones_incl[~zero_mask] - 1] = values[~zero_mask]
    return out


def main() -> None:
    rng = np.random.default_rng(3)
    values = rng.integers(0, 1 << 16, size=2_000_000).astype(np.int32)

    # --- compaction: keep the even elements -----------------------------
    survivors = compact(values, lambda v: v % 2 == 0)
    expected = values[values % 2 == 0]
    assert np.array_equal(survivors, expected)
    print(
        f"compaction: kept {survivors.size}/{values.size} elements "
        "(verified against numpy boolean indexing)"
    )

    # --- full LSD radix sort on 16-bit keys ------------------------------
    sorted_vals = values.copy()
    for bit in range(16):
        sorted_vals = radix_split(sorted_vals, bit)
    assert np.array_equal(sorted_vals, np.sort(values, kind="stable"))
    print(f"radix sort: {values.size} keys sorted with 16 scan-based splits")

    # --- histogram via indicator scans (another scan consumer) ----------
    small = rng.integers(0, 8, size=100_000).astype(np.int32)
    counts = np.array(
        [int(inclusive_prefix_sum((small == b).astype(np.int32))[-1]) for b in range(8)]
    )
    assert np.array_equal(counts, np.bincount(small, minlength=8))
    print("histogram: bucket counts recovered from indicator scans")


if __name__ == "__main__":
    main()
