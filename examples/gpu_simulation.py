"""Driving the GPU machine model: protocol, hierarchy, and faults.

The reproduction's stand-in for the paper's Titan X is a functional
simulator that really executes PLR's kernel protocol — atomic chunk
ids, warp shuffles, shared-memory staging, carry flags with fences,
and the variable look-back — under adversarial block schedules.  This
example:

1. runs a recurrence on the small test GPU and inspects the look-back
   distances the pipeline actually used;
2. shows the communication hierarchy in the block statistics
   (shuffles vs shared-memory traffic vs barriers);
3. demonstrates *why the memory fence matters* by injecting a
   flag-before-data fault and watching the result corrupt;
4. shows deadlock detection when a block never publishes its carries.
"""

import numpy as np

from repro import MachineSpec, Recurrence, SimulatedPLR, serial_full
from repro.core.errors import SimulationError
from repro.gpusim.executor import ProtocolFault


def main() -> None:
    machine = MachineSpec.small_test_gpu()
    recurrence = Recurrence.parse("(1: 2, -1)")
    rng = np.random.default_rng(11)
    values = rng.integers(-20, 20, size=1500).astype(np.int32)
    expected = serial_full(values, recurrence.signature)

    # --- 1. healthy run ------------------------------------------------
    sim = SimulatedPLR(recurrence, machine, values_per_thread=2, seed=1)
    run = sim.run(values)
    assert np.array_equal(run.output, expected)
    distances = run.lookback_distances
    print(
        f"healthy run: {len(run.block_stats)} blocks, verified; "
        f"look-back distances used: min={min(distances)} "
        f"max={max(distances)} mean={sum(distances) / len(distances):.2f}"
    )
    print(
        f"scheduling: {run.schedule_steps} block-steps, "
        f"{run.schedule_wait_steps} spent busy-waiting on carry flags"
    )

    # --- 2. the communication hierarchy --------------------------------
    stats = run.block_stats[0]
    print(
        f"block 0 communication: {stats.shuffles} shuffles (intra-warp), "
        f"{stats.shared_writes}+{stats.shared_reads} shared-memory ops "
        f"(cross-warp), {stats.barriers} barriers, "
        f"{stats.corrections} correction multiply-adds"
    )

    # --- 3. the fence matters -------------------------------------------
    corrupted = 0
    for seed in range(10):
        faulty = SimulatedPLR(
            recurrence,
            machine,
            values_per_thread=2,
            seed=seed,
            fault=ProtocolFault.FLAG_BEFORE_DATA,
        )
        if not np.array_equal(faulty.run(values).output, expected):
            corrupted += 1
    print(
        f"flag-before-data fault (missing __threadfence): "
        f"{corrupted}/10 schedules produced corrupt results"
    )

    # --- 4. deadlock detection ------------------------------------------
    dead = SimulatedPLR(
        recurrence,
        machine,
        seed=0,
        fault=ProtocolFault.NEVER_PUBLISH,
        deadlock_rounds=100,
    )
    try:
        dead.run(values)
        raise AssertionError("expected a deadlock")
    except SimulationError as exc:
        print(f"never-publish fault detected: {exc}")


if __name__ == "__main__":
    main()
