"""Reproduce the paper's evaluation: every figure and both tables.

Prints the modeled Titan X throughput curves for Figures 1-9, the
optimization on/off bars of Figure 10, and the memory/L2 accounting of
Tables 2-3, in a layout meant to be read next to the paper.  Each
code's executable path is cross-checked against the serial reference
at a reduced size first, mirroring the paper's per-run validation.

Run with ``python examples/reproduce_paper.py`` (about a minute; pass
``--fast`` to skip the validation runs).
"""

import sys

from repro.eval import (
    figure10_throughputs,
    figure_definitions,
    render_figure,
    render_figure10,
    render_table,
    run_experiment,
    table2_memory_usage,
    table3_l2_misses,
)


def main() -> None:
    validate = "--fast" not in sys.argv
    for fid, definition in sorted(figure_definitions().items()):
        result = run_experiment(definition, validate=validate)
        print(render_figure(result))
        print()
    print(render_figure10(figure10_throughputs()))
    print()
    print(render_table(table2_memory_usage(), "Table 2: Total GPU memory usage (MB)"))
    print()
    print(render_table(table3_l2_misses(), "Table 3: L2 read misses (MB)"))


if __name__ == "__main__":
    main()
