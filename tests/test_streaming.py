"""The streaming API: block-wise evaluation with carried state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.core.validation import assert_valid
from repro.plr.streaming import StreamingSolver
from tests.conftest import make_values


class TestEquivalence:
    """push()-ing blocks equals solving the concatenation."""

    def test_all_table1_random_splits(self, table1_recurrence, rng):
        total = make_values(table1_recurrence, 5000)
        expected = serial_full(total, table1_recurrence.signature)
        stream = StreamingSolver(table1_recurrence)
        cuts = sorted(set(rng.integers(1, 5000, 5).tolist()))
        out = stream.push_many(np.split(total, cuts))
        assert_valid(out, expected, context=str(table1_recurrence))

    def test_docstring_example(self):
        stream = StreamingSolver("(1: 1)")
        first = stream.push(np.array([1, 2, 3], dtype=np.int32))
        np.testing.assert_array_equal(first, [1, 3, 6])
        second = stream.push(np.array([4], dtype=np.int32))
        np.testing.assert_array_equal(second, [10])

    def test_single_element_blocks(self, rng):
        total = rng.integers(-9, 9, 50).astype(np.int32)
        stream = StreamingSolver("(1: 2, -1)")
        out = stream.push_many([total[i : i + 1] for i in range(50)])
        np.testing.assert_array_equal(
            out, serial_full(total, Signature.parse("(1: 2, -1)"))
        )

    def test_blocks_shorter_than_order(self, rng):
        # Order-3 recurrence fed 1- and 2-element blocks: the carry
        # state must splice old and new outputs correctly.
        total = rng.integers(-9, 9, 23).astype(np.int32)
        stream = StreamingSolver("(1: 0, 0, 1)")
        blocks = [total[0:1], total[1:3], total[3:4], total[4:23]]
        out = stream.push_many(blocks)
        np.testing.assert_array_equal(
            out, serial_full(total, Signature.parse("(1: 0, 0, 1)"))
        )

    def test_fir_history_across_boundary(self, rng):
        # High-pass filters reference prior *inputs*; a split right
        # after position 0 exercises the retained input history.
        total = rng.standard_normal(400).astype(np.float32)
        sig = Signature.parse("(0.9, -0.9: 0.8)")
        stream = StreamingSolver(sig)
        out = stream.push_many([total[:1], total[1:200], total[200:]])
        assert_valid(out, serial_full(total, sig))

    def test_empty_block_is_noop(self, rng):
        total = rng.integers(-9, 9, 30).astype(np.int32)
        stream = StreamingSolver("(1: 1)")
        a = stream.push(total[:10])
        empty = stream.push(np.array([], dtype=np.int32))
        assert empty.size == 0
        b = stream.push(total[10:])
        np.testing.assert_array_equal(
            np.concatenate([a, b]), np.cumsum(total, dtype=np.int32)
        )


class TestState:
    def test_checkpoint_resume(self, rng):
        total = rng.integers(-9, 9, 600).astype(np.int32)
        reference = StreamingSolver("(1: 2, -1)")
        expected = np.concatenate(
            [reference.push(total[:300]), reference.push(total[300:])]
        )

        first = StreamingSolver("(1: 2, -1)")
        head = first.push(total[:300])
        checkpoint = first.state

        second = StreamingSolver("(1: 2, -1)")
        second.load_state(checkpoint)
        tail = second.push(total[300:])
        np.testing.assert_array_equal(np.concatenate([head, tail]), expected)

    def test_state_is_a_copy(self, rng):
        stream = StreamingSolver("(1: 1)")
        stream.push(np.array([5], dtype=np.int32))
        snapshot = stream.state
        stream.push(np.array([7], dtype=np.int32))
        assert snapshot.outputs[0] == 5  # unaffected by later pushes

    def test_position_tracks_consumption(self, rng):
        stream = StreamingSolver("(1: 1)")
        stream.push(np.zeros(10, dtype=np.int32))
        stream.push(np.zeros(5, dtype=np.int32))
        assert stream.state.position == 15

    def test_reset(self, rng):
        total = rng.integers(-9, 9, 40).astype(np.int32)
        stream = StreamingSolver("(1: 1)")
        stream.push(total)
        stream.reset()
        out = stream.push(total)
        np.testing.assert_array_equal(out, np.cumsum(total, dtype=np.int32))

    def test_load_state_validates_shape(self):
        stream = StreamingSolver("(1: 2, -1)")
        other = StreamingSolver("(1: 1)")
        with pytest.raises(ValueError):
            stream.load_state(other.state)

    def test_load_state_errors_are_typed(self):
        from repro.core.errors import StateError

        stream = StreamingSolver("(1: 2, -1)")
        other = StreamingSolver("(1: 1)")
        with pytest.raises(StateError, match="outputs of shape"):
            stream.load_state(other.state)

    def test_load_state_rejects_uncastable_dtype(self):
        from repro.core.errors import StateError
        from repro.plr.streaming import StreamState

        stream = StreamingSolver("(1: 1)")  # int32 solver
        bad = StreamState(
            outputs=np.array([1.5], dtype=np.float64),
            inputs=np.zeros(0, dtype=np.int32),
        )
        with pytest.raises(StateError, match="dtype"):
            stream.load_state(bad)

    def test_load_state_rejects_nonfinite_carries(self):
        from repro.core.errors import StateError
        from repro.plr.streaming import StreamState

        stream = StreamingSolver("(0.2: 0.8)")
        bad = StreamState(
            outputs=np.array([np.nan], dtype=np.float32),
            inputs=np.zeros(0, dtype=np.float32),
        )
        with pytest.raises(StateError, match="non-finite"):
            stream.load_state(bad)

    def test_load_state_rejects_negative_position(self):
        from repro.core.errors import StateError
        from repro.plr.streaming import StreamState

        stream = StreamingSolver("(1: 1)")
        bad = StreamState(
            outputs=np.zeros(1, dtype=np.int32),
            inputs=np.zeros(0, dtype=np.int32),
            position=-3,
        )
        with pytest.raises(StateError, match="position"):
            stream.load_state(bad)

    def test_load_state_casts_compatible_dtype(self):
        """A same-kind checkpoint (int64 for an int32 solver) restores."""
        stream = StreamingSolver("(1: 1)")
        from repro.plr.streaming import StreamState

        stream.load_state(
            StreamState(
                outputs=np.array([5], dtype=np.int64),
                inputs=np.zeros(0, dtype=np.int64),
                position=1,
            )
        )
        out = stream.push(np.array([1], dtype=np.int32))
        assert out[0] == 6  # carry applied after the cast


class TestAPI:
    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            StreamingSolver("(1: 1)").push(np.zeros((2, 2), dtype=np.int32))

    def test_push_many_empty(self):
        out = StreamingSolver("(1: 1)").push_many([])
        assert out.size == 0

    def test_dtype_override(self, rng):
        stream = StreamingSolver("(1: 1)", dtype=np.int64)
        out = stream.push(rng.integers(0, 9, 10).astype(np.int64))
        assert out.dtype == np.int64


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 800),
    num_cuts=st.integers(0, 6),
)
def test_streaming_property(seed, n, num_cuts):
    """Any split of any sequence equals the one-shot solve."""
    gen = np.random.default_rng(seed)
    total = gen.integers(-9, 9, n).astype(np.int32)
    cuts = sorted(set(gen.integers(1, max(n, 2), num_cuts).tolist())) if num_cuts else []
    cuts = [c for c in cuts if c < n]
    sig = Signature.parse("(1: 2, -1)")
    stream = StreamingSolver(sig)
    out = stream.push_many(np.split(total, cuts))
    np.testing.assert_array_equal(out, serial_full(total, sig))


class TestStateRestoreRegressions:
    """load_state / StreamState.copy hardening: value-preserving casts,
    no aliasing of caller arrays, integral positions."""

    def test_load_state_rejects_wrapping_integers(self):
        # Regression: int64 2**40 "same-kind" cast into an int32 solver
        # silently wrapped to 0 and corrupted every later block.
        from repro.core.errors import StateError
        from repro.plr.streaming import StreamState

        stream = StreamingSolver("(1: 2, -1)")
        state = StreamState(
            outputs=np.array([2**40, 1], dtype=np.int64),
            inputs=np.zeros(0, dtype=np.int32),
        )
        with pytest.raises(StateError, match="without wrapping"):
            stream.load_state(state)

    def test_load_state_rejects_float_overflowing_carries(self):
        from repro.core.errors import StateError
        from repro.plr.streaming import StreamState

        stream = StreamingSolver("(0.2: 0.8)")  # float32 solver
        state = StreamState(
            outputs=np.array([1e300], dtype=np.float64),
            inputs=np.zeros(0, dtype=np.float32),
        )
        with pytest.raises(StateError, match="overflow"):
            stream.load_state(state)

    def test_load_state_rejects_fractional_position(self):
        # Regression: position 2.5 silently truncated to 2, silently
        # shifting the bookkeeping of every checkpoint after it.
        from repro.core.errors import StateError
        from repro.plr.streaming import StreamState

        stream = StreamingSolver("(1: 1)")
        state = StreamState(
            outputs=np.zeros(1, dtype=np.int32),
            inputs=np.zeros(0, dtype=np.int32),
            position=2.5,
        )
        with pytest.raises(StateError, match="integer"):
            stream.load_state(state)

    def test_load_state_does_not_alias_caller_arrays(self, rng):
        from repro.plr.streaming import StreamState

        stream = StreamingSolver("(1: 2, -1)")
        carries = np.array([5, 7], dtype=np.int32)
        stream.load_state(
            StreamState(outputs=carries, inputs=np.zeros(0, dtype=np.int32))
        )
        before = stream.state.outputs.copy()
        carries[:] = -999  # mutating the checkpoint must not leak in
        np.testing.assert_array_equal(stream.state.outputs, before)
        out_with_clean_state = stream.push(np.array([1, 1, 1], dtype=np.int32))
        fresh = StreamingSolver("(1: 2, -1)")
        fresh.load_state(
            StreamState(
                outputs=np.array([5, 7], dtype=np.int32),
                inputs=np.zeros(0, dtype=np.int32),
            )
        )
        np.testing.assert_array_equal(
            out_with_clean_state, fresh.push(np.array([1, 1, 1], dtype=np.int32))
        )

    def test_copy_materializes_plain_sequences(self):
        # Regression: a checkpoint deserialized from JSON carries lists,
        # and StreamState.copy() used to assume .copy() existed on them.
        from repro.plr.streaming import StreamState

        state = StreamState(outputs=[1, 2], inputs=[], position=3)
        duplicate = state.copy()
        assert isinstance(duplicate.outputs, np.ndarray)
        assert isinstance(duplicate.inputs, np.ndarray)
        np.testing.assert_array_equal(duplicate.outputs, [1, 2])
        assert duplicate.position == 3

    def test_copy_is_deep(self):
        from repro.plr.streaming import StreamState

        state = StreamState(
            outputs=np.array([1, 2], dtype=np.int32),
            inputs=np.zeros(0, dtype=np.int32),
        )
        duplicate = state.copy()
        duplicate.outputs[0] = 99
        assert state.outputs[0] == 1


class TestBatchStreamingSolver:
    def test_rows_match_dedicated_streams(self, rng):
        from repro.plr.streaming import BatchStreamingSolver

        sig = "(1: 2, -1)"
        batch = BatchStreamingSolver(sig, batch_size=4)
        singles = [StreamingSolver(sig) for _ in range(4)]
        for block_len in (7, 1, 16, 3):
            blocks = rng.integers(-9, 9, size=(4, block_len)).astype(np.int32)
            out = batch.push(blocks)
            for row in range(4):
                np.testing.assert_array_equal(out[row], singles[row].push(blocks[row]))

    def test_fir_history_rows_match(self, rng):
        from repro.plr.streaming import BatchStreamingSolver

        sig = "(0.5, 0.5: 0.9)"
        batch = BatchStreamingSolver(sig, batch_size=3)
        singles = [StreamingSolver(sig) for _ in range(3)]
        for block_len in (5, 2, 9):
            blocks = rng.standard_normal((3, block_len)).astype(np.float32)
            out = batch.push(blocks)
            for row in range(3):
                np.testing.assert_allclose(
                    out[row], singles[row].push(blocks[row]), rtol=1e-5, atol=1e-6
                )

    def test_state_round_trip(self, rng):
        from repro.plr.streaming import BatchStreamingSolver

        solver = BatchStreamingSolver("(1: 1)", batch_size=2)
        solver.push(np.array([[1, 2], [3, 4]], dtype=np.int32))
        saved = solver.state
        after_more = solver.push(np.array([[5], [6]], dtype=np.int32))
        solver.load_state(saved)
        np.testing.assert_array_equal(
            solver.push(np.array([[5], [6]], dtype=np.int32)), after_more
        )

    def test_load_state_validates_batched_shapes(self):
        from repro.core.errors import StateError
        from repro.plr.streaming import BatchStreamingSolver, StreamState

        solver = BatchStreamingSolver("(1: 2, -1)", batch_size=2)
        with pytest.raises(StateError, match="shape"):
            solver.load_state(
                StreamState(
                    outputs=np.zeros((3, 2), dtype=np.int32),
                    inputs=np.zeros((2, 0), dtype=np.int32),
                )
            )
        with pytest.raises(StateError, match="without wrapping"):
            solver.load_state(
                StreamState(
                    outputs=np.full((2, 2), 2**40, dtype=np.int64),
                    inputs=np.zeros((2, 0), dtype=np.int32),
                )
            )

    def test_empty_block_is_noop(self):
        from repro.plr.streaming import BatchStreamingSolver

        solver = BatchStreamingSolver("(1: 1)", batch_size=2)
        out = solver.push(np.zeros((2, 0), dtype=np.int32))
        assert out.shape == (2, 0)
        assert solver.state.position == 0
