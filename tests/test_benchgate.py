"""The perf-regression gate: row comparison, tolerance, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ReproError
from repro.eval.benchgate import (
    compare_payloads,
    load_baseline,
    render_report,
)

pytestmark = pytest.mark.tier1


def payload(**speedups):
    """A bench payload with one row per backend; wall_s = 1/speedup."""
    return {
        "workers": 2,
        "repeat": 3,
        "results": [
            {
                "op": "(1: 2, -1)",
                "n": 1024,
                "dtype": "int32",
                "backend": backend,
                "wall_s": 1.0 / value,
                "speedup": value,
            }
            for backend, value in speedups.items()
        ],
    }


class TestCompare:
    def test_identical_runs_pass(self):
        base = payload(serial=1.0, vectorized=40.0, process=50.0)
        report = compare_payloads(base, base, tolerance_pct=10)
        assert report.ok and len(report.rows) == 3
        assert all(row.delta_pct == pytest.approx(0.0) for row in report.rows)

    def test_regression_beyond_tolerance_fails_that_row_only(self):
        base = payload(serial=1.0, vectorized=40.0, process=50.0)
        cur = payload(serial=1.0, vectorized=39.0, process=30.0)
        report = compare_payloads(base, cur, tolerance_pct=10)
        assert not report.ok
        (bad,) = report.regressions
        assert bad.backend == "process"
        assert bad.delta_pct == pytest.approx(40.0)

    def test_improvement_never_fails(self):
        base = payload(process=10.0)
        cur = payload(process=100.0)
        assert compare_payloads(base, cur, tolerance_pct=0).ok

    def test_tolerance_boundary_is_exclusive(self):
        base = payload(process=100.0)
        cur = payload(process=90.0)  # exactly -10%
        assert compare_payloads(base, cur, tolerance_pct=10).ok
        assert not compare_payloads(base, cur, tolerance_pct=9.9).ok

    def test_declared_skip_does_not_fail(self):
        # A machine without a C compiler cannot produce the native row;
        # the declared skip reports instead of regressing.
        base = payload(serial=1.0, native=90.0)
        cur = payload(serial=1.0)
        report = compare_payloads(
            base,
            cur,
            tolerance_pct=10,
            skipped_backends={"native": "no C compiler"},
        )
        assert report.ok
        assert "skip" in render_report(report)
        assert "no C compiler" in render_report(report)

    def test_missing_row_fails_loudly(self):
        base = payload(serial=1.0, process=50.0)
        cur = payload(serial=1.0)
        report = compare_payloads(base, cur, tolerance_pct=100)
        assert not report.ok
        (missing,) = report.regressions
        assert missing.current is None and missing.backend == "process"
        assert "missing" in render_report(report)

    def test_wall_s_metric_flips_direction(self):
        base = payload(process=10.0)  # wall_s 0.1
        slower = payload(process=5.0)  # wall_s 0.2: +100% wall time
        report = compare_payloads(base, slower, metric="wall_s", tolerance_pct=50)
        assert not report.ok
        assert report.rows[0].delta_pct == pytest.approx(100.0)

    def test_unknown_metric_and_bad_tolerance_rejected(self):
        base = payload(process=10.0)
        with pytest.raises(ReproError):
            compare_payloads(base, base, metric="latency")
        with pytest.raises(ReproError):
            compare_payloads(base, base, tolerance_pct=-1)

    def test_render_mentions_escape_hatch_on_failure(self):
        base = payload(process=100.0)
        report = compare_payloads(base, payload(process=1.0), tolerance_pct=10)
        text = render_report(report)
        assert "gate FAILED" in text and "--update-baseline" in text


class TestLoadBaseline:
    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_baseline(str(tmp_path / "nope.json"))

    def test_invalid_json_is_typed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_baseline(str(path))

    def test_wrong_shape_is_typed(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"results": [{"op": "x"}]}))
        with pytest.raises(ReproError, match="missing"):
            load_baseline(str(path))

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(payload(serial=1.0, process=8.0)))
        assert len(load_baseline(str(path))["results"]) == 2


class TestBenchCompareCLI:
    """Exit codes of ``plr bench --compare`` with the benchmark itself
    stubbed out (the real run is exercised by scripts/verify.sh)."""

    @pytest.fixture
    def fake_bench(self, monkeypatch):
        import repro.cli as cli

        current = payload(serial=1.0, vectorized=40.0, process=50.0)
        calls = {}

        def stub(**kwargs):
            calls.update(kwargs)
            return current

        monkeypatch.setattr(
            cli, "_bench_payload", lambda **kw: stub(**kw)
        )
        return current, calls

    def test_pass_exits_zero(self, tmp_path, capsys, fake_bench):
        from repro.cli import main

        current, calls = fake_bench
        base = tmp_path / "base.json"
        base.write_text(json.dumps(current))
        assert main(["bench", "--compare", str(base)]) == 0
        assert "gate passed" in capsys.readouterr().out
        # The run is derived from the baseline, not CLI defaults.
        assert calls["n"] == 1024 and calls["workers"] == 2

    def test_injected_slowdown_exits_one(self, tmp_path, capsys, fake_bench):
        from repro.cli import main

        current, _ = fake_bench
        doctored = json.loads(json.dumps(current))
        for row in doctored["results"]:
            row["speedup"] *= 3
        base = tmp_path / "base.json"
        base.write_text(json.dumps(doctored))
        assert main(["bench", "--compare", str(base), "--tolerance", "25"]) == 1
        assert "gate FAILED" in capsys.readouterr().out

    def test_update_baseline_rewrites_and_passes(
        self, tmp_path, capsys, fake_bench
    ):
        from repro.cli import main

        current, _ = fake_bench
        doctored = json.loads(json.dumps(current))
        for row in doctored["results"]:
            row["speedup"] *= 3
        base = tmp_path / "base.json"
        base.write_text(json.dumps(doctored))
        assert (
            main(
                [
                    "bench",
                    "--compare",
                    str(base),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert json.loads(base.read_text()) == current
        # And a re-run against the refreshed baseline passes.
        assert main(["bench", "--compare", str(base)]) == 0

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "--compare", str(tmp_path / "no.json")]) == 2
        assert "does not exist" in capsys.readouterr().err
