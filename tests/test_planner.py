"""Execution planning: the paper's m / x / T / register heuristics."""

import pytest

from repro.core.errors import PlanError
from repro.core.signature import Signature
from repro.gpusim.spec import MachineSpec
from repro.plr.planner import MAX_PIPELINE_DEPTH, plan_execution, tuned_plan


TITAN = MachineSpec.titan_x()


class TestRegisterHeuristic:
    def test_float_gets_32(self):
        plan = plan_execution(Signature.parse("(0.2: 0.8)"), 1 << 20, TITAN)
        assert plan.registers_per_thread == 32

    def test_simple_integer_gets_32(self):
        # "integer signatures that only contain ones and zeros".
        for text in ["(1: 1)", "(1: 0, 1)", "(1: 0, 0, 1)"]:
            plan = plan_execution(Signature.parse(text), 1 << 20, TITAN)
            assert plan.registers_per_thread == 32, text

    def test_complex_integer_gets_64(self):
        for text in ["(1: 2, -1)", "(1: 3, -3, 1)"]:
            plan = plan_execution(Signature.parse(text), 1 << 20, TITAN)
            assert plan.registers_per_thread == 64, text


class TestResidency:
    def test_32_regs_two_blocks_per_sm(self):
        # 65536 / (32 * 1024) = 2 blocks per SM, 24 SMs -> T = 48.
        plan = plan_execution(Signature.prefix_sum(), 1 << 20, TITAN)
        assert plan.resident_blocks == 48

    def test_64_regs_one_block_per_sm(self):
        plan = plan_execution(Signature.parse("(1: 2, -1)"), 1 << 20, TITAN)
        assert plan.resident_blocks == 24


class TestGrainSelection:
    def test_x_is_smallest_to_cover(self):
        # x * 1024 * T > n with T = 48; n small enough not to hit the cap.
        n = 100_000
        plan = plan_execution(Signature.prefix_sum(), n, TITAN)
        assert plan.values_per_thread * 1024 * 48 > n
        assert (plan.values_per_thread - 1) * 1024 * 48 <= n

    def test_x_capped_float(self):
        plan = plan_execution(Signature.parse("(0.2: 0.8)"), 1 << 30, TITAN)
        assert plan.values_per_thread == 9

    def test_x_capped_integer(self):
        plan = plan_execution(Signature.prefix_sum(), 1 << 30, TITAN)
        assert plan.values_per_thread == 11

    def test_chunk_is_1024x(self):
        plan = plan_execution(Signature.prefix_sum(), 1 << 24, TITAN)
        assert plan.chunk_size == 1024 * plan.values_per_thread

    def test_small_input_x_one(self):
        plan = plan_execution(Signature.prefix_sum(), 1000, TITAN)
        assert plan.values_per_thread == 1

    def test_boundary_exactly_covered(self):
        # n exactly x*1024*T must bump x (strict inequality in paper).
        n = 1024 * 48
        plan = plan_execution(Signature.prefix_sum(), n, TITAN)
        assert plan.values_per_thread == 2


class TestPlanShape:
    def test_num_chunks_ceil(self):
        plan = plan_execution(Signature.prefix_sum(), 5000, TITAN)
        assert plan.num_chunks == -(-5000 // plan.chunk_size)
        assert plan.padded_n >= 5000

    def test_pipeline_depth(self):
        plan = plan_execution(Signature.prefix_sum(), 1 << 16, TITAN)
        assert plan.pipeline_depth == MAX_PIPELINE_DEPTH == 32

    def test_warps_per_block(self):
        plan = plan_execution(Signature.prefix_sum(), 1 << 16, TITAN)
        assert plan.warps_per_block == 32

    def test_describe_contains_key_params(self):
        text = plan_execution(Signature.prefix_sum(), 1 << 16, TITAN).describe()
        for key in ("m=", "x=", "regs="):
            assert key in text


class TestLimits:
    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            plan_execution(Signature.prefix_sum(), 0, TITAN)

    def test_4gb_limit(self):
        # "PLR supports sequences of any length up to 4 GB."
        plan_execution(Signature.prefix_sum(), 2**30, TITAN)  # ok
        with pytest.raises(PlanError):
            plan_execution(Signature.prefix_sum(), 2**30 + 1, TITAN)

    def test_small_machine(self):
        machine = MachineSpec.small_test_gpu()
        plan = plan_execution(Signature.prefix_sum(), 500, machine)
        assert plan.block_size == machine.max_threads_per_block


class TestAutoTuner:
    def test_picks_objective_minimum(self):
        # Objective: prefer x == 3 explicitly.
        plan = tuned_plan(
            Signature.prefix_sum(),
            1 << 20,
            objective=lambda p: abs(p.values_per_thread - 3),
        )
        assert plan.values_per_thread == 3
        assert plan.chunk_size == 3072

    def test_respects_bounds(self):
        with pytest.raises(PlanError):
            tuned_plan(
                Signature.prefix_sum(),
                1 << 20,
                objective=lambda p: 0.0,
                candidate_x=[99],
            )

    def test_tuned_with_cost_model(self):
        # Auto-tune against the actual analytic model, like SAM does.
        from repro.baselines.plr_code import PLRCode
        from repro.baselines.base import Workload
        from repro.core.recurrence import Recurrence
        from repro.gpusim.cost import CostModel

        code = PLRCode()
        model = CostModel(TITAN)
        recurrence = Recurrence.parse("(1: 1)")
        workload = Workload(recurrence, 1 << 18)

        def objective(plan):
            traffic = code.traffic(workload, TITAN)
            return model.time(traffic)

        plan = tuned_plan(Signature.prefix_sum(), 1 << 18, objective)
        assert 1 <= plan.values_per_thread <= 11
