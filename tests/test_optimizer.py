"""The Section 3.1 optimizer: realizations, toggles, and invariants."""

import numpy as np
import pytest

from repro.core.coefficients import table1_signatures
from repro.core.signature import Signature
from repro.plr.factors import CorrectionFactorTable
from repro.plr.optimizer import (
    SHARED_MEMORY_FACTOR_CAPACITY,
    FactorRealization,
    OptimizationConfig,
    optimize_factors,
)


def plan_for(text: str, m: int = 64, dtype=np.int64, config=None):
    sig = Signature.parse(text).recursive_part()
    table = CorrectionFactorTable.build(sig, m, dtype)
    return optimize_factors(table, config)


class TestRealizations:
    def test_prefix_sum_constant(self):
        plan = plan_for("(1: 1)")
        assert plan.decisions[0].realization == FactorRealization.CONSTANT
        assert plan.decisions[0].constant == 1

    def test_tuple_zero_one_with_period(self):
        plan = plan_for("(1: 0, 1)")
        for decision in plan.decisions:
            assert decision.realization == FactorRealization.ZERO_ONE
            assert decision.period == 2

    def test_higher_order_buffered(self):
        plan = plan_for("(1: 2, -1)")
        for decision in plan.decisions:
            assert decision.realization == FactorRealization.BUFFERED_ARRAY

    def test_filter_truncated(self):
        plan = plan_for("(1: 0.8)", m=2048, dtype=np.float32)
        decision = plan.decisions[0]
        assert decision.realization == FactorRealization.TRUNCATED
        assert 300 < decision.cutoff < 500

    def test_alternating_periodic(self):
        plan = plan_for("(1: -1)")
        decision = plan.decisions[0]
        assert decision.realization == FactorRealization.PERIODIC
        assert decision.period == 2

    def test_shift_suppression_extension(self):
        plan = plan_for("(1: 1, 1)", config=OptimizationConfig.extended())
        assert plan.decisions[1].realization == FactorRealization.SHIFT_OF_FIRST
        assert plan.decisions[1].scale == 1

    def test_shift_suppression_off_by_default(self):
        plan = plan_for("(1: 1, 1)")
        assert plan.decisions[1].realization == FactorRealization.BUFFERED_ARRAY


class TestDisabledConfig:
    def test_everything_global(self):
        config = OptimizationConfig.disabled()
        for text in ["(1: 1)", "(1: 0, 1)", "(1: 2, -1)"]:
            plan = plan_for(text, config=config)
            for decision in plan.decisions:
                assert decision.realization == FactorRealization.GLOBAL_ARRAY

    def test_no_shared_buffer(self):
        plan = plan_for("(1: 1)", config=OptimizationConfig.disabled())
        assert plan.shared_buffer_elements == 0

    def test_no_truncation(self):
        config = OptimizationConfig.disabled()
        plan = plan_for("(1: 0.8)", m=2048, dtype=np.float32, config=config)
        assert plan.phase1_active_elements == 2048


class TestPartialToggles:
    def test_constants_only(self):
        config = OptimizationConfig(
            buffer_in_shared=False,
            fold_constants=True,
            zero_one_conditional=False,
            fold_repeats=False,
            truncate_decayed=False,
        )
        plan = plan_for("(1: 1)", config=config)
        assert plan.decisions[0].realization == FactorRealization.CONSTANT

    def test_zero_one_without_repeats_loses_period(self):
        config = OptimizationConfig(fold_repeats=False)
        plan = plan_for("(1: 0, 1)", config=config)
        assert plan.decisions[0].realization == FactorRealization.ZERO_ONE
        assert plan.decisions[0].period is None

    def test_repeats_without_zero_one(self):
        config = OptimizationConfig(zero_one_conditional=False)
        plan = plan_for("(1: 0, 1)", config=config)
        assert plan.decisions[0].realization == FactorRealization.PERIODIC


class TestPlanAccounting:
    def test_shared_buffer_capped_at_1024(self):
        plan = plan_for("(1: 2, -1)", m=4096)
        assert plan.shared_buffer_elements == SHARED_MEMORY_FACTOR_CAPACITY

    def test_shared_buffer_capped_at_m(self):
        plan = plan_for("(1: 2, -1)", m=64)
        assert plan.shared_buffer_elements == 64

    def test_stored_words_constant_is_zero(self):
        plan = plan_for("(1: 1)", m=128)
        assert plan.stored_factor_words() == 0

    def test_stored_words_periodic(self):
        plan = plan_for("(1: 0, 0, 1)", m=128)
        assert plan.stored_factor_words() == 3 * 3  # three rows, period 3

    def test_stored_words_truncated(self):
        plan = plan_for("(1: 0.8)", m=2048, dtype=np.float32)
        cutoff = plan.decisions[0].cutoff
        assert plan.stored_factor_words() == cutoff

    def test_stored_words_unoptimized_is_full(self):
        plan = plan_for("(1: 2, -1)", m=128, config=OptimizationConfig.disabled())
        assert plan.stored_factor_words() == 2 * 128

    def test_active_elements_from_decay(self):
        plan = plan_for("(1: 0.8)", m=2048, dtype=np.float32)
        assert plan.phase1_active_elements == plan.table.max_decay_index

    def test_uses_multiplies_flag(self):
        assert not plan_for("(1: 1)").uses_multiplies  # constant 1
        assert not plan_for("(1: 0, 1)").uses_multiplies  # zero/one
        assert plan_for("(1: 2, -1)").uses_multiplies


class TestSemanticsPreserved:
    """Optimized and unoptimized solves produce identical results."""

    @pytest.mark.parametrize("name", list(table1_signatures()))
    def test_solver_agrees(self, name, rng):
        from repro.core.recurrence import Recurrence
        from repro.plr.solver import PLRSolver

        sig = table1_signatures()[name]
        rec = Recurrence(sig)
        values = (
            rng.integers(-40, 40, 5000).astype(np.int32)
            if sig.is_integer
            else rng.standard_normal(5000).astype(np.float32)
        )
        optimized = PLRSolver(rec).solve(values)
        plain = PLRSolver(rec, optimization=OptimizationConfig.disabled()).solve(values)
        np.testing.assert_array_equal(optimized, plain)


def test_default_config_is_all_paper_optimizations():
    config = OptimizationConfig()
    assert config.buffer_in_shared
    assert config.fold_constants
    assert config.zero_one_conditional
    assert config.fold_repeats
    assert config.truncate_decayed
    assert not config.suppress_shifted_duplicate  # future work: opt-in
