"""The functional GPU executor: protocol correctness under adversity."""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.signature import Signature
from repro.core.validation import assert_valid
from repro.gpusim.block import ThreadBlock, block_phase1
from repro.gpusim.executor import ProtocolFault, SimulatedPLR
from repro.gpusim.spec import MachineSpec
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase1 import phase1
from tests.conftest import make_values


@pytest.fixture(scope="module")
def machine() -> MachineSpec:
    return MachineSpec.small_test_gpu()


class TestBlockPhase1LaneLevel:
    """The shuffle/shared-memory implementation equals the numpy one."""

    @pytest.mark.parametrize("text", ["(1: 1)", "(1: 2, -1)", "(1: 1, 1, 1)"])
    @pytest.mark.parametrize("x", [1, 2, 4])
    def test_matches_reference_phase1(self, text, x, rng, machine):
        sig = Signature.parse(text)
        m = machine.max_threads_per_block * x
        values = rng.integers(-9, 9, m).astype(np.int64)
        table = CorrectionFactorTable.build(sig, m, np.int64)

        block = ThreadBlock.create(
            values, machine.max_threads_per_block, machine.warp_size,
            machine.shared_memory_per_block,
        )
        block_phase1(block, table)
        expected = phase1(values.copy(), table, x)
        np.testing.assert_array_equal(block.values(), expected.reshape(-1))

    def test_hierarchy_accounting(self, rng, machine):
        m = machine.max_threads_per_block  # x = 1
        values = rng.integers(-9, 9, m).astype(np.int64)
        table = CorrectionFactorTable.build(Signature.parse("(1: 1)"), m, np.int64)
        block = ThreadBlock.create(
            values, machine.max_threads_per_block, machine.warp_size,
            machine.shared_memory_per_block,
        )
        block_phase1(block, table)
        # Warp-internal levels used shuffles; cross-warp ones used
        # shared memory with barriers on both sides.
        assert block.stats.shuffles > 0
        assert block.stats.shared_writes > 0
        assert block.stats.shared_reads > 0
        assert block.stats.barriers > 0

    def test_table_size_mismatch_rejected(self, rng, machine):
        table = CorrectionFactorTable.build(Signature.parse("(1: 1)"), 8, np.int64)
        block = ThreadBlock.create(
            rng.integers(0, 5, 16).astype(np.int64), 16, 4, 4096
        )
        with pytest.raises(SimulationError, match="factor table"):
            block_phase1(block, table)


class TestEndToEndSimulation:
    def test_all_table1(self, table1_recurrence, machine):
        values = make_values(table1_recurrence, 700)
        sim = SimulatedPLR(table1_recurrence, machine, values_per_thread=2, seed=5)
        result = sim.run(values)
        expected = serial_full(values, table1_recurrence.signature)
        assert_valid(result.output, expected, context=str(table1_recurrence))

    @pytest.mark.parametrize("seed", range(8))
    def test_schedule_independence(self, seed, machine, rng):
        """Any interleaving produces the same (correct) result."""
        rec = Recurrence.parse("(1: 2, -1)")
        values = rng.integers(-9, 9, 900).astype(np.int32)
        expected = serial_full(values, rec.signature)
        out = SimulatedPLR(rec, machine, seed=seed).run(values).output
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("n", [1, 15, 16, 17, 100, 1024])
    def test_sizes_including_partial_chunks(self, n, machine, rng):
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-9, 9, n).astype(np.int32)
        out = SimulatedPLR(rec, machine, seed=2).run(values).output
        np.testing.assert_array_equal(out, np.cumsum(values, dtype=np.int32))

    def test_lookback_bounded_by_depth(self, machine, rng):
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-9, 9, 2000).astype(np.int32)
        result = SimulatedPLR(rec, machine, seed=9).run(values)
        assert 1 <= result.max_lookback <= 32

    def test_lookback_pipelining_happens(self, machine, rng):
        # With many chunks and interleaved blocks, at least some blocks
        # should combine over distance > 1 (the whole point of the
        # decoupled variable look-back).
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-9, 9, 4000).astype(np.int32)
        distances = []
        for seed in range(6):
            result = SimulatedPLR(rec, machine, seed=seed).run(values)
            distances.extend(result.lookback_distances)
        assert max(distances) > 1

    def test_device_memory_reported(self, machine, rng):
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-9, 9, 256).astype(np.int32)
        result = SimulatedPLR(rec, machine, seed=0).run(values)
        assert result.device_memory_bytes > machine.baseline_context_bytes

    def test_l2_tracking(self, machine, rng):
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-9, 9, 512).astype(np.int32)
        result = SimulatedPLR(rec, machine, seed=0, track_l2=True).run(values)
        assert result.l2 is not None
        # Cold input misses at least cover the input once.
        assert result.l2.read_miss_bytes >= values.nbytes

    def test_empty_input_rejected(self, machine):
        with pytest.raises(SimulationError):
            SimulatedPLR(Recurrence.parse("(1: 1)"), machine).run(
                np.array([], dtype=np.int32)
            )


class TestFaultInjection:
    def test_missing_fence_corrupts(self, machine, rng):
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(0, 10, 600).astype(np.int32)
        expected = serial_full(values, rec.signature)
        corrupted = 0
        for seed in range(10):
            sim = SimulatedPLR(
                rec, machine, seed=seed, fault=ProtocolFault.FLAG_BEFORE_DATA
            )
            if not np.array_equal(sim.run(values).output, expected):
                corrupted += 1
        assert corrupted >= 8  # the race fires under almost any schedule

    def test_skip_local_flag_degrades_but_stays_correct(self, machine, rng):
        # Liveness: without local-carry flags, successors fall back to
        # waiting for full global carries; slower but still correct.
        rec = Recurrence.parse("(1: 2, -1)")
        values = rng.integers(-9, 9, 800).astype(np.int32)
        expected = serial_full(values, rec.signature)
        sim = SimulatedPLR(
            rec, machine, seed=3, fault=ProtocolFault.SKIP_LOCAL_FLAG
        )
        result = sim.run(values)
        np.testing.assert_array_equal(result.output, expected)
        assert all(d == 1 for d in result.lookback_distances)

    def test_never_publish_deadlocks(self, machine, rng):
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(0, 5, 400).astype(np.int32)
        sim = SimulatedPLR(
            rec, machine, seed=0, fault=ProtocolFault.NEVER_PUBLISH,
            deadlock_rounds=60,
        )
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(values)

    @pytest.mark.parametrize("seed", range(16))
    def test_skip_local_flag_liveness_across_seeds(self, seed, machine):
        """Liveness of the global-flag fallback under 16 adversarial
        schedules: dropping every local publication must never hang the
        grid, and the output stays exact with look-back pinned to 1."""
        rec = Recurrence.parse("(1: 2, -1)")
        values = np.random.default_rng(seed).integers(-9, 9, 640).astype(np.int32)
        expected = serial_full(values, rec.signature)
        sim = SimulatedPLR(
            rec, machine, seed=seed, fault=ProtocolFault.SKIP_LOCAL_FLAG,
            deadlock_rounds=200,
        )
        result = sim.run(values)
        np.testing.assert_array_equal(result.output, expected)
        assert all(d == 1 for d in result.lookback_distances)

    def test_deadlock_forensics_content(self, machine, rng):
        """The watchdog must name the stalled chunks, the flag class
        they wait for, and the blocking chunk ids."""
        from repro.core.errors import DeadlockError
        from repro.gpusim.faults import FaultKind, FaultPlan

        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(0, 5, 400).astype(np.int32)
        sim = SimulatedPLR(
            rec, machine, seed=0,
            fault=FaultPlan.single(FaultKind.DROP_GLOBAL_FLAG, chunks=(0,)),
            deadlock_rounds=60,
        )
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(values)
        err = excinfo.value
        assert isinstance(err, SimulationError)  # chaos-contract typing
        assert err.forensics, "deadlock must carry per-block wait records"
        # Every stalled block is ultimately blocked on the victim chunk 0.
        for wait in err.forensics:
            assert wait.waiting_for == "global"
            assert 0 in wait.blocked_on
            # No global-ready base exists anywhere in the window, so
            # the distance is unresolved and the window is reported.
            assert wait.lookback_distance is None
            assert wait.chunk_id - wait.lookback_lo >= 1
        message = str(err)
        assert "deadlock" in message
        assert "blocked on" in message and "chunk" in message


class TestAgainstNumpySolver:
    def test_simulator_equals_solver(self, machine, rng):
        """Same algorithm, two very different engines, one answer."""
        from repro.plr.solver import PLRSolver

        rec = Recurrence.parse("(1: 3, -3, 1)")
        values = rng.integers(-5, 5, 1200).astype(np.int32)
        sim_out = SimulatedPLR(rec, machine, values_per_thread=2, seed=1).run(values).output
        solver_out = PLRSolver(rec).solve(values)
        np.testing.assert_array_equal(sim_out, solver_out)


class TestPipeliningValue:
    def test_deeper_lookback_reduces_waiting(self, machine, rng):
        """The variable look-back is load-bearing: a depth-1 window
        (wait for the immediate predecessor's global carries) spends
        more scheduler steps busy-waiting than the full depth-32
        window, for the same schedules."""
        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-9, 9, 4000).astype(np.int32)
        shallow_waits = deep_waits = 0
        for seed in range(5):
            shallow = SimulatedPLR(rec, machine, seed=seed, max_lookback=1).run(values)
            deep = SimulatedPLR(rec, machine, seed=seed, max_lookback=32).run(values)
            shallow_waits += shallow.schedule_wait_steps
            deep_waits += deep.schedule_wait_steps
            expected = np.cumsum(values, dtype=np.int32)
            np.testing.assert_array_equal(shallow.output, expected)
            np.testing.assert_array_equal(deep.output, expected)
        assert deep_waits <= shallow_waits

    def test_scan_pass_count_is_logarithmic(self, rng):
        """Blelloch Scan runs ceil(log2 n) combine sweeps (its parallel
        step complexity), vs PLR's fixed two phases."""
        from repro.baselines import BlellochScan
        from unittest import mock

        rec = Recurrence.parse("(1: 1)")
        values = rng.integers(-5, 5, 1000).astype(np.int64)
        calls = 0
        import repro.baselines.scan_blelloch as scan_mod

        original = scan_mod.scan_operator

        def counting(*args):
            nonlocal calls
            calls += 1
            return original(*args)

        with mock.patch.object(scan_mod, "scan_operator", counting):
            BlellochScan().compute(values, rec)
        assert calls == 10  # ceil(log2(1000)) doubling sweeps
