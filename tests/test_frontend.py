"""The loop recognizer: serial Python loops -> signatures -> parallel."""

import numpy as np
import pytest

from repro.codegen.frontend import (
    LoopPatternError,
    parallelize,
    recognize_loop,
)
from repro.core.reference import serial_full
from repro.core.signature import Signature


class TestRecognition:
    def test_low_pass(self):
        def loop(x, y, n):
            for i in range(n):
                y[i] = 0.2 * x[i] + 0.8 * y[i - 1]

        rec = recognize_loop(loop)
        assert rec.signature == Signature((0.2,), (0.8,))
        assert rec.input_name == "x"
        assert rec.output_name == "y"

    def test_prefix_sum(self):
        def loop(data, acc, n):
            for i in range(n):
                acc[i] = data[i] + acc[i - 1]

        rec = recognize_loop(loop)
        assert rec.signature == Signature((1,), (1,))
        assert rec.input_name == "data"

    def test_second_order_with_subtraction(self):
        def loop(x, y, n):
            for i in range(n):
                y[i] = x[i] + 2 * y[i - 1] - y[i - 2]

        rec = recognize_loop(loop)
        assert rec.signature == Signature((1,), (2, -1))

    def test_high_pass_fir_terms(self):
        def loop(x, y, n):
            for i in range(n):
                y[i] = 0.9 * x[i] - 0.9 * x[i - 1] + 0.8 * y[i - 1]

        rec = recognize_loop(loop)
        assert rec.signature == Signature((0.9, -0.9), (0.8,))

    def test_gap_offsets_fill_zeros(self):
        def loop(x, y, n):
            for i in range(n):
                y[i] = x[i] + y[i - 3]

        rec = recognize_loop(loop)
        assert rec.signature == Signature((1,), (0, 0, 1))

    def test_constant_on_either_side(self):
        def loop(x, y, n):
            for i in range(n):
                y[i] = x[i] * 0.5 + y[i - 1] * 0.5

        rec = recognize_loop(loop)
        assert rec.signature == Signature((0.5,), (0.5,))

    def test_repeated_terms_accumulate(self):
        def loop(x, y, n):
            for i in range(n):
                y[i] = x[i] + y[i - 1] + y[i - 1]

        rec = recognize_loop(loop)
        assert rec.signature == Signature((1,), (2,))

    def test_unary_minus_coefficient(self):
        def loop(x, y, n):
            for i in range(n):
                y[i] = x[i] + -0.5 * y[i - 1]

        assert recognize_loop(loop).signature == Signature((1,), (-0.5,))

    def test_source_string_accepted(self):
        rec = recognize_loop(
            "def f(a, b, n):\n"
            "    for i in range(n):\n"
            "        b[i] = a[i] + b[i - 1]\n"
        )
        assert rec.signature == Signature.prefix_sum()


class TestRejection:
    def _expect(self, source: str, match: str):
        with pytest.raises(LoopPatternError, match=match):
            recognize_loop(source)

    def test_no_loop(self):
        self._expect("def f(x):\n    return x\n", "no for-loop")

    def test_nested_loops(self):
        self._expect(
            "def f(x, y, n):\n"
            "    for i in range(n):\n"
            "        for j in range(n):\n"
            "            y[i] = x[i]\n",
            "nested/multiple",
        )

    def test_nonlinear_body(self):
        self._expect(
            "def f(x, y, n):\n"
            "    for i in range(n):\n"
            "        y[i] = x[i] * y[i - 1]\n",
            "literal constant",
        )

    def test_self_reference_without_offset(self):
        self._expect(
            "def f(x, y, n):\n"
            "    for i in range(n):\n"
            "        y[i] = x[i] + y[i]\n",
            "not a\\s+causal",
        )

    def test_pure_map_rejected(self):
        self._expect(
            "def f(x, y, n):\n"
            "    for i in range(n):\n"
            "        y[i] = 2 * x[i] + x[i - 1]\n",
            "pure map",
        )

    def test_two_inputs_rejected(self):
        self._expect(
            "def f(x, z, y, n):\n"
            "    for i in range(n):\n"
            "        y[i] = x[i] + z[i] + y[i - 1]\n",
            "exactly one input",
        )

    def test_future_offset_rejected(self):
        self._expect(
            "def f(x, y, n):\n"
            "    for i in range(n):\n"
            "        y[i] = x[i] + y[i + 1]\n",
            "sum of constant-coefficient",
        )

    def test_while_range_step_rejected(self):
        self._expect(
            "def f(x, y, n):\n"
            "    for i in range(0, n, 2):\n"
            "        y[i] = x[i] + y[i - 1]\n",
            "range",
        )

    def test_multiple_statements_rejected(self):
        self._expect(
            "def f(x, y, n):\n"
            "    for i in range(n):\n"
            "        t = x[i]\n"
            "        y[i] = t + y[i - 1]\n",
            "single assignment",
        )


class TestParallelize:
    def test_decorator_end_to_end(self, rng):
        @parallelize
        def smooth(x, y, n):
            for i in range(n):
                y[i] = 0.2 * x[i] + 0.8 * y[i - 1]

        values = rng.standard_normal(20000).astype(np.float32)
        got = smooth(values)
        expected = serial_full(values, Signature((0.2,), (0.8,)))
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-4)

    def test_parallel_matches_running_the_original(self, rng):
        def original(x, y, n):
            for i in range(n):
                y[i] = x[i] + 2 * y[i - 1] - y[i - 2]

        values = rng.integers(-9, 9, 3000).astype(np.int32)
        serial_out = np.zeros_like(values)
        # run the genuine serial loop (with zero history semantics)
        for i in range(values.size):
            acc = values[i]
            if i >= 1:
                acc += 2 * serial_out[i - 1]
            if i >= 2:
                acc -= serial_out[i - 2]
            serial_out[i] = acc

        fast = parallelize(original)
        np.testing.assert_array_equal(fast(values), serial_out)

    def test_recognized_metadata_attached(self):
        @parallelize
        def scan(src, dst, n):
            for i in range(n):
                dst[i] = src[i] + dst[i - 1]

        assert scan.recognized.signature == Signature.prefix_sum()
        assert "signature (1: 1)" in scan.__doc__
