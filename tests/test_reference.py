"""The serial reference, cross-checked against scipy's lfilter.

scipy.signal.lfilter computes exactly the paper's recursion equation
(1) with the coefficient convention a = [1, -b1, ..., -bk]; it is an
independent implementation, so agreement here validates our oracle
before the oracle validates everything else.
"""

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.core.coefficients import table1_signatures
from repro.core.reference import fir_map, resolve_dtype, serial_full, serial_recurrence
from repro.core.signature import Signature


def lfilter_oracle(values: np.ndarray, signature: Signature) -> np.ndarray:
    b = [float(a) for a in signature.feedforward]
    a = [1.0] + [-float(c) for c in signature.feedback]
    return sp_signal.lfilter(b, a, values.astype(np.float64))


@pytest.mark.parametrize("name", list(table1_signatures()))
def test_serial_matches_scipy(name, rng):
    signature = table1_signatures()[name]
    values = rng.standard_normal(2000)
    ours = serial_full(values, signature, dtype=np.float64)
    theirs = lfilter_oracle(values, signature)
    np.testing.assert_allclose(ours, theirs, rtol=1e-9, atol=1e-9)


def test_prefix_sum_is_cumsum(rng):
    values = rng.integers(-50, 50, 1000).astype(np.int32)
    out = serial_full(values, Signature.prefix_sum())
    np.testing.assert_array_equal(out, np.cumsum(values, dtype=np.int32))


def test_double_prefix_sum(rng):
    values = rng.integers(-10, 10, 500).astype(np.int64)
    out = serial_full(values, Signature.higher_order_prefix_sum(2), dtype=np.int64)
    expected = np.cumsum(np.cumsum(values))
    np.testing.assert_array_equal(out, expected)


def test_tuple_prefix_sum_interleaves(rng):
    values = rng.integers(-10, 10, 999).astype(np.int32)
    out = serial_full(values, Signature.tuple_prefix_sum(3))
    for lane in range(3):
        np.testing.assert_array_equal(
            out[lane::3], np.cumsum(values[lane::3], dtype=np.int32)
        )


def test_paper_worked_example():
    values = np.array(
        [3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16, 17, -18, 19, -20, 21, -22],
        dtype=np.int32,
    )
    expected = np.array(
        [3, 2, 6, 4, 9, 6, 12, 8, 15, 10, 18, 12, 21, 14, 24, 16, 27, 18, 30, 20],
        dtype=np.int32,
    )
    out = serial_full(values, Signature.parse("(1: 2, -1)"))
    np.testing.assert_array_equal(out, expected)


class TestFirMap:
    def test_identity(self, rng):
        values = rng.integers(-5, 5, 100).astype(np.int32)
        np.testing.assert_array_equal(fir_map(values, [1]), values)

    def test_shifted_difference(self):
        values = np.array([1, 2, 4, 8], dtype=np.int64)
        out = fir_map(values, [1, -1])
        np.testing.assert_array_equal(out, [1, 1, 2, 4])

    def test_missing_terms_are_zero(self):
        values = np.array([5.0, 0.0, 0.0])
        out = fir_map(values, [0.0, 0.0, 2.0])
        np.testing.assert_array_equal(out, [0.0, 0.0, 10.0])

    def test_zero_coefficients_skipped(self, rng):
        values = rng.standard_normal(50).astype(np.float32)
        np.testing.assert_array_equal(
            fir_map(values, [2.0, 0.0, 0.0]), fir_map(values, [2.0])
        )

    def test_integer_arithmetic_preserved(self):
        values = np.array([1, 2], dtype=np.int32)
        out = fir_map(values, [3])
        assert out.dtype == np.int32


class TestSerialRecurrence:
    def test_empty(self):
        out = serial_recurrence(np.array([], dtype=np.int32), [1])
        assert out.size == 0

    def test_single_element(self):
        out = serial_recurrence(np.array([7], dtype=np.int32), [1, 1])
        np.testing.assert_array_equal(out, [7])

    def test_first_element_unchanged(self, rng):
        values = rng.integers(-9, 9, 64).astype(np.int32)
        out = serial_recurrence(values, [3, -2])
        assert out[0] == values[0]

    def test_does_not_mutate_input(self, rng):
        values = rng.integers(-9, 9, 64).astype(np.int32)
        snapshot = values.copy()
        serial_recurrence(values, [1])
        np.testing.assert_array_equal(values, snapshot)

    def test_int32_wraparound(self):
        # Fibonacci growth overflows int32; the reference must wrap
        # silently like the 32-bit GPU arithmetic it models.
        values = np.ones(64, dtype=np.int32)
        out = serial_recurrence(values, [1, 1])
        assert out.dtype == np.int32  # and no warning/exception


class TestResolveDtype:
    def test_int_signature_int_values(self):
        assert resolve_dtype(Signature.prefix_sum(), np.dtype(np.int32)) == np.int32

    def test_int_signature_keeps_int64(self):
        assert resolve_dtype(Signature.prefix_sum(), np.dtype(np.int64)) == np.int64

    def test_float_signature_forces_float32(self):
        sig = Signature.parse("(0.2: 0.8)")
        assert resolve_dtype(sig, np.dtype(np.int32)) == np.float32

    def test_float64_preserved(self):
        sig = Signature.parse("(0.2: 0.8)")
        assert resolve_dtype(sig, np.dtype(np.float64)) == np.float64

    def test_int_signature_float_values(self):
        assert resolve_dtype(Signature.prefix_sum(), np.dtype(np.float32)) == np.float32
