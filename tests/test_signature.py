"""The signature DSL: parsing, validation, formatting, constructors."""

from fractions import Fraction

import pytest

from repro.core.errors import SignatureError
from repro.core.signature import Signature, parse_signature


class TestParsing:
    def test_prefix_sum(self):
        sig = Signature.parse("(1: 1)")
        assert sig.feedforward == (1,)
        assert sig.feedback == (1,)

    def test_without_parentheses(self):
        assert Signature.parse("1: 1") == Signature.parse("(1: 1)")

    def test_second_order(self):
        sig = Signature.parse("(1: 2, -1)")
        assert sig.feedback == (2, -1)
        assert sig.order == 2

    def test_floats(self):
        sig = Signature.parse("(0.2: 0.8)")
        assert sig.feedforward == (0.2,)
        assert sig.feedback == (0.8,)

    def test_scientific_notation(self):
        sig = Signature.parse("(1e-2: 8e-1)")
        assert sig.feedforward == (0.01,)
        assert sig.feedback == (0.8,)

    def test_leading_plus(self):
        assert Signature.parse("(+1: +1)") == Signature.parse("(1: 1)")

    def test_rational_coefficients(self):
        sig = Signature.parse("(1/5: 4/5)")
        assert sig.feedforward == (Fraction(1, 5),)
        assert sig.feedback == (Fraction(4, 5),)

    def test_multiple_feedforward(self):
        sig = Signature.parse("(0.9, -0.9: 0.8)")
        assert sig.feedforward == (0.9, -0.9)
        assert sig.fir_order == 1

    def test_whitespace_tolerant(self):
        sig = Signature.parse("  ( 1 ,  2 :  3 , 4 )  ")
        assert sig.feedforward == (1, 2)
        assert sig.feedback == (3, 4)

    def test_integers_stay_exact(self):
        sig = Signature.parse("(1: 3, -3, 1)")
        assert all(isinstance(c, int) for c in sig.feedback)

    def test_float_marker_forces_float(self):
        sig = Signature.parse("(1.0: 1)")
        assert isinstance(sig.feedforward[0], float)
        assert not sig.is_integer

    def test_module_level_alias(self):
        assert parse_signature("(1: 1)") == Signature.parse("(1: 1)")


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(1, 1)",  # no colon
            "(1: 1: 1)",  # two colons
            "(1:",  # unbalanced
            "1: 1)",  # unbalanced
            "(: 1)",  # empty feed-forward
            "(1: )",  # empty feedback
            "(1,, 2: 1)",  # empty coefficient
            "(a: 1)",  # not a number
            "(1: 1x)",  # trailing garbage
            "(1: 1 2)",  # missing comma
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(SignatureError):
            Signature.parse(bad)

    def test_rejects_non_string(self):
        with pytest.raises(SignatureError):
            Signature.parse(123)  # type: ignore[arg-type]


class TestValidation:
    def test_last_feedforward_zero_rejected(self):
        with pytest.raises(SignatureError, match="feed-forward"):
            Signature((1, 0), (1,))

    def test_last_feedback_zero_rejected(self):
        with pytest.raises(SignatureError, match="feedback"):
            Signature((1,), (1, 0))

    def test_all_zero_feedforward_rejected(self):
        with pytest.raises(SignatureError):
            Signature.parse("(0: 1)")

    def test_pure_map_rejected(self):
        # all-b-zero means an embarrassingly parallel map: out of scope.
        with pytest.raises(SignatureError):
            Signature((1,), ())

    def test_interior_zeros_allowed(self):
        sig = Signature((1,), (0, 0, 1))  # 3-tuple prefix sum
        assert sig.order == 3

    def test_boolean_coefficient_rejected(self):
        with pytest.raises(SignatureError):
            Signature((True,), (1,))


class TestProperties:
    def test_order_is_feedback_length(self):
        assert Signature.parse("(1: 1, 0, 0, 2)").order == 4

    def test_is_integer(self):
        assert Signature.parse("(1: 2, -1)").is_integer
        assert not Signature.parse("(0.2: 0.8)").is_integer

    def test_is_pure_recursive(self):
        assert Signature.parse("(1: 5)").is_pure_recursive
        assert not Signature.parse("(2: 5)").is_pure_recursive
        assert not Signature.parse("(1, 1: 5)").is_pure_recursive

    def test_recursive_part(self):
        sig = Signature.parse("(0.9, -0.9: 0.8)")
        assert sig.recursive_part() == Signature((1,), (0.8,))

    def test_map_part(self):
        sig = Signature.parse("(0.9, -0.9: 0.8)")
        assert sig.map_part() == (0.9, -0.9)

    def test_hashable(self):
        a = Signature.parse("(1: 2, -1)")
        b = Signature.parse("(1: 2, -1)")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str_roundtrip(self):
        for text in ["(1: 1)", "(1: 2, -1)", "(0.2: 0.8)", "(0.9, -0.9: 0.8)"]:
            sig = Signature.parse(text)
            assert Signature.parse(str(sig)) == sig

    def test_fraction_roundtrip(self):
        sig = Signature.parse("(1/5: 4/5)")
        assert Signature.parse(str(sig)) == sig


class TestConstructors:
    def test_prefix_sum(self):
        assert Signature.prefix_sum() == Signature.parse("(1: 1)")

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 8])
    def test_tuple_prefix_sum(self, size):
        sig = Signature.tuple_prefix_sum(size)
        assert sig.order == size
        assert sig.feedback[-1] == 1
        assert all(b == 0 for b in sig.feedback[:-1])

    def test_tuple_size_one_is_prefix_sum(self):
        assert Signature.tuple_prefix_sum(1) == Signature.prefix_sum()

    @pytest.mark.parametrize(
        "order,expected",
        [(1, (1,)), (2, (2, -1)), (3, (3, -3, 1)), (4, (4, -6, 4, -1))],
    )
    def test_higher_order_binomials(self, order, expected):
        assert Signature.higher_order_prefix_sum(order).feedback == expected

    def test_invalid_tuple_size(self):
        with pytest.raises(SignatureError):
            Signature.tuple_prefix_sum(0)

    def test_invalid_order(self):
        with pytest.raises(SignatureError):
            Signature.higher_order_prefix_sum(0)

    def test_with_feedback(self):
        sig = Signature.parse("(1: 1)").with_feedback((2, -1))
        assert sig == Signature.parse("(1: 2, -1)")

    def test_with_feedforward(self):
        sig = Signature.parse("(1: 1)").with_feedforward((0.5,))
        assert sig.feedforward == (0.5,)
