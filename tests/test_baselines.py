"""The comparison codes: executable correctness and domain limits."""

import numpy as np
import pytest

from repro.baselines import (
    BlellochScan,
    CubScan,
    MemcpyBound,
    PLRCode,
    RecFilter,
    SamScan,
    SerialReference,
    Workload,
    all_code_names,
    companion_matrix,
    decoupled_lookback_scan,
    encode_elements,
    make_code,
    scan_operator,
)
from repro.baselines.alg3 import Alg3Filter
from repro.core.errors import ReproError, UnsupportedRecurrenceError
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.validation import assert_valid
from repro.gpusim.spec import MachineSpec
from tests.conftest import make_values

TITAN = MachineSpec.titan_x()


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in all_code_names():
            assert make_code(name).name in (name, "PLR")  # PLR-noopt reports PLR

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            make_code("tensorflow")

    def test_expected_lineup(self):
        assert set(all_code_names()) >= {
            "memcpy", "serial", "Scan", "CUB", "SAM", "Alg3", "Rec", "PLR",
        }


class TestComputeCorrectness:
    """Every code, on every supported Table 1 recurrence, vs serial."""

    @pytest.mark.parametrize("code_name", ["Scan", "CUB", "SAM", "Alg3", "Rec", "PLR", "PLR-noopt", "serial"])
    def test_supported_recurrences(self, code_name, table1_recurrence):
        code = make_code(code_name)
        workload = Workload(table1_recurrence, 6000)
        if not code.supports(workload, TITAN):
            pytest.skip(f"{code_name} does not support {table1_recurrence}")
        values = make_values(table1_recurrence, 6000)
        got = code.compute(values, table1_recurrence)
        expected = serial_full(values, table1_recurrence.signature)
        assert_valid(got, expected, context=f"{code_name}/{table1_recurrence}")


class TestDomainRestrictions:
    def test_cub_rejects_filters(self):
        code = CubScan()
        workload = Workload(Recurrence.parse("(0.2: 0.8)"), 1000)
        with pytest.raises(UnsupportedRecurrenceError):
            code.check_supported(workload, TITAN)

    def test_sam_rejects_general_integer(self):
        code = SamScan()
        workload = Workload(Recurrence.parse("(1: 1, 1)"), 1000)
        assert not code.supports(workload, TITAN)

    def test_alg3_rejects_multiple_feedforward(self):
        # "Neither Alg3 nor Rec currently support recursive filters
        # with more than one non-recursive coefficient" — the Table 1
        # high-pass filters are out.
        code = Alg3Filter()
        workload = Workload(Recurrence.parse("(0.9, -0.9: 0.8)"), 1000)
        with pytest.raises(UnsupportedRecurrenceError, match="non-recursive"):
            code.check_supported(workload, TITAN)

    def test_rec_rejects_integers(self):
        code = RecFilter()
        workload = Workload(Recurrence.parse("(1: 1)"), 1000)
        assert not code.supports(workload, TITAN)

    def test_size_caps(self):
        lp = Recurrence.parse("(0.2: 0.8)")
        assert not Alg3Filter().supports(Workload(lp, 2**29 + 1), TITAN)
        assert not RecFilter().supports(Workload(lp, 2**28 + 1), TITAN)
        ps = Recurrence.parse("(1: 1)")
        assert not BlellochScan().supports(Workload(ps, 2**29 + 1), TITAN)
        assert not PLRCode().supports(Workload(ps, 2**30 + 1), TITAN)

    def test_scan_memory_cap_shrinks_with_order(self):
        # "its maximum supported problem size decreases quickly with
        # increasing order."
        scan = BlellochScan()
        order3 = Recurrence.parse("(1: 0, 0, 1)")
        assert scan.supports(Workload(order3, 2**26), TITAN)
        assert not scan.supports(Workload(order3, 2**28), TITAN)


class TestScanConstruction:
    def test_companion_matrix(self):
        m = companion_matrix((2, -1), np.dtype(np.int64))
        np.testing.assert_array_equal(m, [[2, -1], [1, 0]])

    def test_operator_associative(self, rng):
        ms = rng.integers(-3, 4, (3, 2, 2)).astype(np.int64)
        vs = rng.integers(-3, 4, (3, 2)).astype(np.int64)
        # ((c . b) . a) == (c . (b . a))
        m_cb, v_cb = scan_operator(ms[2], vs[2], ms[1], vs[1])
        left = scan_operator(m_cb, v_cb, ms[0], vs[0])
        m_ba, v_ba = scan_operator(ms[1], vs[1], ms[0], vs[0])
        right = scan_operator(ms[2], vs[2], m_ba, v_ba)
        np.testing.assert_array_equal(left[0], right[0])
        np.testing.assert_array_equal(left[1], right[1])

    def test_encoding_shape(self, rng):
        values = rng.integers(0, 5, 10).astype(np.int64)
        matrices, vectors = encode_elements(values, (1, 1))
        assert matrices.shape == (10, 2, 2)
        assert vectors.shape == (10, 2)
        np.testing.assert_array_equal(vectors[:, 0], values)

    def test_scan_general_recurrence(self, rng):
        # Scan supports what CUB/SAM cannot: arbitrary coefficients.
        rec = Recurrence.parse("(1: 1, 1)")
        values = rng.integers(-5, 5, 500).astype(np.int64)
        got = BlellochScan().compute(values, rec)
        np.testing.assert_array_equal(got, serial_full(values, rec.signature, dtype=np.int64))


class TestCubSamStructure:
    def test_decoupled_lookback_scan_equals_cumsum(self, rng):
        values = rng.integers(-50, 50, 10_000).astype(np.int32)
        np.testing.assert_array_equal(
            decoupled_lookback_scan(values), np.cumsum(values, dtype=np.int32)
        )

    def test_cub_tuple_matches_interleaved(self, rng):
        values = rng.integers(-9, 9, 4001).astype(np.int32)
        rec = Recurrence.parse("(1: 0, 1)")
        got = CubScan().compute(values, rec)
        for lane in range(2):
            np.testing.assert_array_equal(
                got[lane::2], np.cumsum(values[lane::2], dtype=np.int32)
            )

    def test_sam_tuned_grain_monotone(self):
        sam = SamScan()
        grains = [sam.tuned_elements_per_thread(n) for n in (2**14, 2**18, 2**22, 2**28)]
        assert grains == sorted(grains)
        assert grains[0] < grains[-1]


class TestMemcpyAndSerial:
    def test_memcpy_copies(self, rng):
        values = rng.integers(0, 9, 100).astype(np.int32)
        out = MemcpyBound().compute(values, Recurrence.parse("(1: 1)"))
        np.testing.assert_array_equal(out, values)
        assert out is not values

    def test_serial_is_reference(self, rng):
        values = rng.integers(-9, 9, 100).astype(np.int32)
        rec = Recurrence.parse("(1: 2, -1)")
        np.testing.assert_array_equal(
            SerialReference().compute(values, rec), serial_full(values, rec.signature)
        )
