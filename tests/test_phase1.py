"""Phase 1: iterative pairwise merging and its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import serial_recurrence
from repro.core.signature import Signature
from repro.plr.factors import CorrectionFactorTable
from repro.plr.phase1 import doubling_widths, merge_level, phase1, thread_local_solve

PAPER_INPUT = np.array(
    [3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16, 17, -18, 19, -20, 21, -22],
    dtype=np.int32,
)


def run_phase1(text: str, values: np.ndarray, m: int, x: int = 1) -> np.ndarray:
    sig = Signature.parse(text)
    table = CorrectionFactorTable.build(sig, m, values.dtype)
    chunks = -(-values.size // m)
    padded = np.zeros(chunks * m, dtype=values.dtype)
    padded[:values.size] = values
    return phase1(padded, table, x)


class TestPaperWorkedExample:
    """Section 2.3's intermediate sequences, byte for byte."""

    def test_final_phase1_state(self):
        out = run_phase1("(1: 2, -1)", PAPER_INPUT, 8).reshape(-1)[:20]
        expected = [3, 2, 6, 4, 9, 6, 12, 8, 11, 10, 22, 20, 33, 30, 44, 40, 19, 18, 38, 36]
        np.testing.assert_array_equal(out, expected)

    def test_iteration_one(self):
        # "3 2 5 4 7 6 9 8 ..." after the first merge (chunk size 2).
        out = run_phase1("(1: 2, -1)", PAPER_INPUT[:8], 2).reshape(-1)
        np.testing.assert_array_equal(out, [3, 2, 5, 4, 7, 6, 9, 8])

    def test_iteration_two(self):
        # "3 2 6 4 7 6 14 12 ..." after the second merge (chunk size 4).
        out = run_phase1("(1: 2, -1)", PAPER_INPUT[:8], 4).reshape(-1)
        np.testing.assert_array_equal(out, [3, 2, 6, 4, 7, 6, 14, 12])


class TestInvariants:
    @pytest.mark.parametrize("text", ["(1: 1)", "(1: 2, -1)", "(1: 0, 1)", "(1: 1, 1)"])
    def test_first_chunk_is_globally_correct(self, text, rng):
        values = rng.integers(-50, 50, 64).astype(np.int32)
        out = run_phase1(text, values, 16)
        sig = Signature.parse(text)
        expected = serial_recurrence(values[:16], list(sig.feedback))
        np.testing.assert_array_equal(out[0], expected)

    @pytest.mark.parametrize("m", [1, 2, 4, 8, 16, 32])
    def test_each_chunk_locally_correct(self, m, rng):
        # Every chunk equals the serial solution of its own slice —
        # the definition of Phase 1's output.
        values = rng.integers(-20, 20, m * 4).astype(np.int32)
        out = run_phase1("(1: 2, -1)", values, m)
        for c in range(4):
            piece = values[c * m : (c + 1) * m]
            np.testing.assert_array_equal(
                out[c], serial_recurrence(piece, [2, -1]), err_msg=f"chunk {c}"
            )

    def test_doubling_invariant_prefix_correct(self, rng):
        # "after iteration s, the first 2^s elements are correct."
        values = rng.integers(-9, 9, 64).astype(np.int64)
        sig = Signature.parse("(1: 1, 1)")
        for m in (2, 4, 8, 16, 32, 64):
            out = run_phase1("(1: 1, 1)", values, m).reshape(-1)
            expected = serial_recurrence(values, [1, 1])
            np.testing.assert_array_equal(out[:m], expected[:m], err_msg=f"m={m}")

    def test_phase1_does_not_modify_input(self, rng):
        values = rng.integers(-9, 9, 32).astype(np.int32)
        sig = Signature.parse("(1: 1)")
        table = CorrectionFactorTable.build(sig, 8, np.int32)
        snapshot = values.copy()
        phase1(values, table, 1)
        np.testing.assert_array_equal(values, snapshot)


class TestThreadLocalStep:
    @pytest.mark.parametrize("x", [2, 3, 4, 9, 11])
    def test_equals_serial_per_cell(self, x, rng):
        values = rng.integers(-9, 9, x * 6).astype(np.int32)
        cells = values.reshape(6, x).copy()
        thread_local_solve(cells, [2, -1], x)
        for row in range(6):
            np.testing.assert_array_equal(
                cells[row], serial_recurrence(values.reshape(6, x)[row], [2, -1])
            )

    def test_x_equal_one_with_phase1(self, rng):
        # x = 1 must behave as if there were no thread-local step.
        values = rng.integers(-9, 9, 32).astype(np.int32)
        a = run_phase1("(1: 2, -1)", values, 8, x=1)
        b = run_phase1("(1: 2, -1)", values, 8, x=2)
        np.testing.assert_array_equal(a, b)


class TestDoublingWidths:
    def test_power_of_two(self):
        assert doubling_widths(1, 8) == [1, 2, 4]

    def test_with_thread_grain(self):
        assert doubling_widths(3, 24) == [3, 6, 12]

    def test_paper_plan_shape(self):
        # m = 1024 * 11 from x=11: widths 11, 22, ..., 5632.
        widths = doubling_widths(11, 11 * 1024)
        assert len(widths) == 10
        assert widths[0] == 11
        assert widths[-1] == 11 * 512

    def test_m_equals_x(self):
        assert doubling_widths(4, 4) == []

    def test_invalid_combination(self):
        with pytest.raises(ValueError):
            doubling_widths(3, 10)


class TestMergeLevel:
    def test_term_suppression_small_widths(self):
        # At width 1 an order-3 recurrence has only one available carry;
        # the other two terms refer before the chunk and are suppressed.
        sig = Signature.parse("(1: 1, 1, 1)")
        table = CorrectionFactorTable.build(sig, 8, np.int64)
        pairs = np.array([[5, 7]], dtype=np.int64)
        merge_level(pairs, table, 1)
        # correction: only carry 0 exists: 7 + F0[0]*5 = 7 + 1*5
        np.testing.assert_array_equal(pairs, [[5, 12]])

    def test_float_merge(self, rng):
        values = rng.standard_normal(32).astype(np.float32)
        out = run_phase1("(1: 0.5)", values, 8).reshape(-1)
        expected = np.concatenate(
            [serial_recurrence(values[i : i + 8], [0.5]) for i in range(0, 32, 8)]
        )
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 200),
    order=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
def test_phase1_property_locally_correct(n, order, seed):
    """Random recurrences, sizes, and data: chunks stay locally correct."""
    gen = np.random.default_rng(seed)
    feedback = tuple(int(v) for v in gen.integers(-3, 4, order))
    if feedback[-1] == 0:
        feedback = feedback[:-1] + (1,)
    sig = Signature((1,), feedback)
    values = gen.integers(-10, 10, n).astype(np.int64)
    m = 16
    table = CorrectionFactorTable.build(sig, m, np.int64)
    chunks = -(-n // m)
    padded = np.zeros(chunks * m, dtype=np.int64)
    padded[:n] = values
    out = phase1(padded, table, 1)
    for c in range(chunks):
        piece = padded[c * m : (c + 1) * m]
        np.testing.assert_array_equal(out[c], serial_recurrence(piece, list(feedback)))


class TestIntegerCoefficientGuard:
    """Regression: fractional coefficients silently truncated to 0 when
    the working dtype was integer, computing a *different* recurrence
    (``(1: 0.5)`` on int32 input returned the input unchanged)."""

    def test_fractional_feedback_on_int_dtype_raises(self):
        from repro.core.errors import NumericalError

        values = np.arange(1, 33, dtype=np.int32)
        with pytest.raises(NumericalError, match="fractional"):
            run_phase1("(1: 0.5)", values, 8)

    def test_solver_path_raises_not_truncates(self):
        from repro.core.errors import NumericalError
        from repro.plr.solver import PLRSolver

        values = np.arange(1, 9, dtype=np.int32)
        with pytest.raises(NumericalError, match="int32"):
            PLRSolver("(1: 0.5)").solve(values, dtype=np.int32)

    def test_integral_valued_floats_are_fine(self):
        # 2.0 is representable exactly in int32; only truly fractional
        # coefficients must be rejected.
        values = np.arange(1, 17, dtype=np.int32)
        out = run_phase1("(1: 2.0, -1.0)", values, 8)
        ref = run_phase1("(1: 2, -1)", values, 8)
        np.testing.assert_array_equal(out, ref)

    def test_float_dtype_unaffected(self):
        from repro.plr.phase1 import check_integer_coefficients

        check_integer_coefficients((0.5, -0.25), np.dtype(np.float32))
        check_integer_coefficients((0.5,), np.dtype(np.float64))


class TestBatchedPhase1:
    """phase1 accepts (B, padded_n) input and treats every (row, chunk)
    pair as an independent chunk."""

    def test_batched_rows_match_single_rows(self, rng):
        sig = Signature.parse("(1: 2, -1)")
        m = 16
        table = CorrectionFactorTable.build(sig, m, np.dtype(np.int32))
        batch = rng.integers(-9, 9, size=(5, 4 * m)).astype(np.int32)
        out = phase1(batch, table, 1)
        assert out.shape == (5, 4, m)
        for row in range(5):
            np.testing.assert_array_equal(out[row], phase1(batch[row], table, 1))

    def test_rejects_3d(self, rng):
        sig = Signature.parse("(1: 1)")
        table = CorrectionFactorTable.build(sig, 8, np.dtype(np.int32))
        with pytest.raises(ValueError):
            phase1(np.zeros((2, 2, 8), dtype=np.int32), table, 1)
