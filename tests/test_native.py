"""The native (JIT-compiled C) backend: cache correctness + equivalence.

Covers the compile-cache hardening (atomic publication, corrupt-``.so``
recovery, digest over compiler identity and flags), the typed kernel
contract, the NumPy-equivalence sweep through ``PLRSolver`` and the
sharded path, and graceful degradation when no compiler exists.

Everything here carries the ``native`` marker; the whole module skips
cleanly on machines without a C compiler (the degradation *behaviour*
is still exercised on machines with one, by monkeypatching the
compiler probe away).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen import cbackend, jit
from repro.codegen.cbackend import (
    compile_c_kernel,
    kernel_digest,
    load_kernel_library,
)
from repro.codegen.ir import build_ir
from repro.codegen.jit import clear_native_cache, native_available
from repro.core.coefficients import table1_signatures
from repro.core.errors import BackendError
from repro.core.recurrence import Recurrence
from repro.core.validation import assert_valid
from repro.parallel.sharding import ShardOptions
from repro.plr.solver import PLRSolver
from tests.conftest import TABLE1_NAMES, make_values

pytestmark = [
    pytest.mark.native,
    pytest.mark.skipif(
        not native_available(), reason="no C compiler on this machine"
    ),
]


def _ir(text: str = "(1: 1)", n: int = 4096):
    return build_ir(Recurrence.parse(text), n)


class TestCacheHardening:
    def test_corrupt_so_recompiled(self, tmp_path):
        """A truncated/garbage ``.so`` under the digest path must not be
        trusted — the loader failure triggers an in-place recompile.

        The first compile runs in a child process: a crashed writer
        leaves its corrupt artifact behind for a *fresh* process, and
        overwriting a ``.so`` this process has dlopen'ed would be
        undefined behaviour, not a cache test.
        """
        script = (
            "from repro.codegen.cbackend import compile_c_kernel\n"
            "from repro.codegen.ir import build_ir\n"
            "from repro.core.recurrence import Recurrence\n"
            f"k = compile_c_kernel(build_ir(Recurrence.parse('(1: 1)'), 4096), workdir={str(tmp_path)!r})\n"
            "print(k.library_path)\n"
        )
        probe = subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            capture_output=True,
            text=True,
        )
        so_path = Path(probe.stdout.strip())
        assert so_path.exists()
        so_path.write_bytes(b"not an ELF object")  # simulate a torn write
        kernel = compile_c_kernel(_ir(), workdir=tmp_path)
        assert kernel.library_path == so_path
        values = np.arange(1, 9, dtype=np.int32)
        np.testing.assert_array_equal(
            kernel(values), np.cumsum(values, dtype=np.int32)
        )

    def test_flag_change_misses_cache(self, tmp_path):
        plain = compile_c_kernel(_ir(), workdir=tmp_path)
        flagged = compile_c_kernel(
            _ir(), workdir=tmp_path, extra_flags=("-DPLR_CACHE_PROBE",)
        )
        assert plain.library_path != flagged.library_path
        assert plain.digest != flagged.digest

    def test_compiler_version_in_digest(self, tmp_path, monkeypatch):
        before = compile_c_kernel(_ir(), workdir=tmp_path)
        monkeypatch.setattr(
            cbackend, "_compiler_version", lambda compiler: "phantom 99.9.9"
        )
        after = compile_c_kernel(_ir(), workdir=tmp_path)
        assert before.digest != after.digest
        assert before.library_path != after.library_path

    def test_digest_is_deterministic(self):
        parts = ("int x;", "/usr/bin/cc", ("-O2",), np.dtype(np.int32), 64)
        assert kernel_digest(*parts) == kernel_digest(*parts)
        assert kernel_digest("int y;", *parts[1:]) != kernel_digest(*parts)

    def test_no_leftover_temp_files(self, tmp_path):
        compile_c_kernel(_ir(), workdir=tmp_path)
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []

    def test_compile_failure_is_typed_and_uncached(self, tmp_path):
        with pytest.raises(BackendError, match="compil"):
            compile_c_kernel(_ir(), workdir=tmp_path, extra_flags=("-Wl,--no-such-flag-ever",))
        # Nothing was published under the failing digest.
        assert list(tmp_path.glob("*.so")) == []


class TestKernelContract:
    def test_missing_symbol_is_typed(self, tmp_path):
        source = tmp_path / "empty.c"
        source.write_text("int plr_unrelated(void) { return 0; }\n")
        so_path = tmp_path / "empty.so"
        compiler = cbackend._find_compiler()
        subprocess.run(
            [compiler, "-shared", "-fPIC", str(source), "-o", str(so_path)],
            check=True,
            capture_output=True,
        )
        with pytest.raises(BackendError, match="plr_compute"):
            load_kernel_library(so_path)

    def test_unloadable_library_is_typed(self, tmp_path):
        bogus = tmp_path / "bogus.so"
        bogus.write_bytes(b"\x7fELF-but-not-really")
        with pytest.raises(BackendError, match="failed to load"):
            load_kernel_library(bogus)

    def test_rejects_2d_and_empty(self, tmp_path):
        kernel = compile_c_kernel(_ir(), workdir=tmp_path)
        with pytest.raises(BackendError, match="1-D"):
            kernel(np.zeros((2, 3), dtype=np.int32))
        with pytest.raises(BackendError, match="non-empty"):
            kernel(np.array([], dtype=np.int32))


class TestNativeEquivalence:
    """backend="native" must be indistinguishable from the numpy path:
    bit-identical for integer dtypes, tolerance-equal for floats."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        name=st.sampled_from(TABLE1_NAMES),
        n=st.one_of(
            st.integers(min_value=1, max_value=8),  # n < k tails
            st.integers(min_value=9, max_value=20000),
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_table1_sweep(self, name, n, seed):
        recurrence = Recurrence(table1_signatures()[name])
        values = make_values(recurrence, n, seed=seed)
        native = PLRSolver(recurrence, backend="native", native_fallback=False)
        single = PLRSolver(recurrence, backend="single")
        got, artifacts = native.solve_with_artifacts(values)
        expected = single.solve(values)
        assert artifacts.native is not None and artifacts.native.used
        # Integer dtypes compare bit for bit; floats use the paper's
        # Section 5 tolerance (the serial-per-chunk kernel and the
        # doubling-merge numpy path round differently).
        assert_valid(got, expected, context=f"native/{name}/n={n}")

    @pytest.mark.parametrize(
        "text,dtype",
        [
            ("(1: 2, -1)", np.int32),  # wraps around the int32 ring
            ("(1: 2, -1)", np.int64),
            ("(0.04: 1.6, -0.64)", np.float64),
        ],
    )
    def test_wraparound_and_wide_dtypes(self, text, dtype, rng):
        recurrence = Recurrence.parse(text)
        if np.issubdtype(dtype, np.integer):
            values = rng.integers(-100, 100, 20000).astype(dtype)
        else:
            values = rng.standard_normal(20000).astype(dtype)
        native = PLRSolver(recurrence, backend="native", native_fallback=False)
        got = native.solve(values, dtype=dtype)
        expected = PLRSolver(recurrence).solve(values, dtype=dtype)
        if np.issubdtype(dtype, np.integer):
            np.testing.assert_array_equal(got, expected)
        else:
            np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    @pytest.mark.parametrize("text", ["(1: 1)", "(1: 2, -1)", "(0.2: 0.8)"])
    def test_sharded_native_matches_single(self, text):
        """Sharded native: every worker slab runs through the kernel,
        the carry scan corrects across slabs, result is unchanged."""
        recurrence = Recurrence.parse(text)
        values = make_values(recurrence, 30000)
        native = PLRSolver(
            recurrence,
            backend="native",
            native_fallback=False,
            shard_options=ShardOptions(workers=2),
        )
        got, artifacts = native.solve_with_artifacts(values)
        expected = PLRSolver(recurrence).solve(values)
        assert artifacts.native is not None
        assert artifacts.native.used and artifacts.native.sharded
        assert_valid(got, expected, context=f"native-sharded/{text}")

    def test_batch_solver_native_matches(self, rng):
        from repro.batch.solver import BatchSolver

        values = rng.integers(-50, 50, size=(6, 4000)).astype(np.int32)
        native = BatchSolver("(1: 2, -1)", backend="native")
        single = BatchSolver("(1: 2, -1)")
        np.testing.assert_array_equal(native.solve(values), single.solve(values))


class TestDegradation:
    """No compiler must never kill a solve — typed record, numpy result."""

    def _hide_compiler(self, monkeypatch):
        def _missing() -> str:
            raise BackendError("no C compiler found (tried: cc, gcc, clang)")

        monkeypatch.setattr(cbackend, "_find_compiler", _missing)
        clear_native_cache()

    def test_solver_degrades_with_attempt_record(self, monkeypatch, rng):
        self._hide_compiler(monkeypatch)
        # A non-Table-1 signature so no previously cached kernel can hit.
        recurrence = Recurrence.parse("(3: 1, 1, 1)")
        values = rng.integers(-9, 9, 5000).astype(np.int32)
        solver = PLRSolver(recurrence, backend="native")
        got, artifacts = solver.solve_with_artifacts(values)
        assert artifacts.native is not None
        assert not artifacts.native.used
        assert "BackendError" in artifacts.native.error
        np.testing.assert_array_equal(got, PLRSolver(recurrence).solve(values))

    def test_strict_mode_raises(self, monkeypatch, rng):
        self._hide_compiler(monkeypatch)
        solver = PLRSolver(
            "(3: 1, 1, 1)", backend="native", native_fallback=False
        )
        with pytest.raises(BackendError):
            solver.solve(rng.integers(-9, 9, 5000).astype(np.int32))

    def test_resilient_chain_records_backend_fault(self, monkeypatch, rng):
        self._hide_compiler(monkeypatch)
        from repro.resilience.solver import ResilientSolver

        solver = ResilientSolver("(3: 1, 1, 1)", backend="native")
        values = rng.integers(-9, 9, 5000).astype(np.int32)
        report = solver.solve_with_report(values)
        assert report.ok
        assert [attempt.outcome for attempt in report.attempts] == ["backend", "ok"]
        assert report.degraded
        np.testing.assert_array_equal(
            report.output, PLRSolver("(3: 1, 1, 1)").solve(values)
        )

    def test_native_available_reflects_probe(self, monkeypatch):
        assert native_available()
        self._hide_compiler(monkeypatch)
        assert not native_available()

    def test_clear_native_cache_counts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PLR_NATIVE_CACHE_DIR", str(tmp_path))
        clear_native_cache()
        kernel = jit.native_kernel(_ir("(1: 0, 1)", 4096))
        assert kernel.library_path.exists()
        removed = clear_native_cache(disk=True)
        assert removed >= 1
        assert not kernel.library_path.exists()
