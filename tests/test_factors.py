"""Correction-factor tables: construction and structural analysis."""

import numpy as np
import pytest

from repro.core.coefficients import low_pass, table1_signatures
from repro.core.signature import Signature
from repro.core.ztransform import impulse_response
from repro.plr.factors import FLOAT32_SMALLEST_NORMAL, CorrectionFactorTable


def build(text: str, m: int, dtype=np.int64, **kwargs) -> CorrectionFactorTable:
    return CorrectionFactorTable.build(Signature.parse(text), m, dtype, **kwargs)


class TestConstruction:
    def test_paper_example_rows(self):
        table = build("(1: 2, -1)", 8, np.int32)
        np.testing.assert_array_equal(table.row(0), [2, 3, 4, 5, 6, 7, 8, 9])
        np.testing.assert_array_equal(table.row(1), [-1, -2, -3, -4, -5, -6, -7, -8])

    def test_shape_and_dtype(self):
        table = build("(1: 1, 1, 1)", 16, np.float32)
        assert table.factors.shape == (3, 16)
        assert table.dtype == np.float32
        assert table.order == 3

    def test_read_only(self):
        table = build("(1: 1)", 4)
        with pytest.raises(ValueError):
            table.factors[0, 0] = 99

    def test_non_recursive_part_stripped(self):
        # The table is always built from the (1: b...) part; a full
        # signature with a FIR stage yields the same factors.
        a = CorrectionFactorTable.build(Signature.parse("(0.9, -0.9: 0.8)"), 8, np.float64)
        b = CorrectionFactorTable.build(Signature.parse("(1: 0.8)"), 8, np.float64)
        np.testing.assert_array_equal(a.factors, b.factors)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            build("(1: 1)", 0)

    def test_factor_row_is_shifted_impulse_response(self):
        # Carry 0's factors are the impulse response of (1: b...) from
        # index 1 on — an independent oracle via the z-transform.
        sig = Signature.parse("(1: 0.6, 0.3)")
        table = CorrectionFactorTable.build(sig, 12, np.float64)
        h = impulse_response(sig, 13)
        np.testing.assert_allclose(table.row(0), h[1:], rtol=1e-12)

    def test_int32_wraps(self):
        table = build("(1: 1, 1)", 64, np.int32)  # Fibonacci overflows
        assert table.dtype == np.int32  # construction must not raise


class TestConstantDetection:
    def test_prefix_sum_all_ones(self):
        table = build("(1: 1)", 32)
        assert table.constant_value(0) == 1

    def test_scaled_prefix(self):
        table = build("(1: 2, -1)", 8, np.int32)
        assert table.constant_value(0) is None

    def test_constant_negative(self):
        # (1: -1): factors alternate -1, 1, -1 ... not constant.
        table = build("(1: -1)", 8)
        assert table.constant_value(0) is None


class TestZeroOneDetection:
    def test_tuple_rows(self):
        table = build("(1: 0, 1)", 16)
        assert table.is_zero_one(0)
        assert table.is_zero_one(1)

    def test_higher_order_not_zero_one(self):
        table = build("(1: 2, -1)", 16)
        assert not table.is_zero_one(0)

    def test_prefix_sum_is_zero_one(self):
        assert build("(1: 1)", 8).is_zero_one(0)


class TestPeriodDetection:
    def test_tuple2_period(self):
        table = build("(1: 0, 1)", 16)
        assert table.period(0) == 2
        assert table.period(1) == 2

    def test_tuple3_period(self):
        table = build("(1: 0, 0, 1)", 16)
        assert table.period(0) == 3

    def test_period_without_divisibility(self):
        # m = 16 is not a multiple of 3; the period must still be found.
        table = build("(1: 0, 0, 1)", 16)
        assert table.period(2) == 3

    def test_alternating_sign_period(self):
        table = build("(1: -1)", 16)
        assert table.period(0) == 2

    def test_constant_has_period_one(self):
        assert build("(1: 1)", 16).period(0) == 1

    def test_growing_rows_have_no_period(self):
        table = build("(1: 2, -1)", 64, np.int64)
        assert table.period(0) is None

    def test_period_bound_respected(self):
        table = build("(1: 2, -1)", 512, np.int64)
        assert CorrectionFactorTable.MAX_PERIOD < 512
        assert table.period(0) is None


class TestDecayDetection:
    def test_low_pass_decays(self):
        sig = low_pass(1)
        table = CorrectionFactorTable.build(sig.recursive_part(), 2048, np.float32)
        cutoff = table.decay_index(0)
        assert cutoff is not None
        # 0.8^i falls below the float32 denormal threshold near i=391.
        assert 350 < cutoff < 450
        assert table.flushed_denormals
        assert np.all(table.row(0)[cutoff:] == 0.0)

    def test_flush_can_be_disabled(self):
        sig = low_pass(1)
        table = CorrectionFactorTable.build(
            sig.recursive_part(), 2048, np.float32, flush_denormals=False
        )
        assert not table.flushed_denormals

    def test_prefix_sum_never_decays(self):
        assert build("(1: 1)", 64).decay_index(0) is None

    def test_max_decay_index(self):
        sig = low_pass(2)
        table = CorrectionFactorTable.build(sig.recursive_part(), 2048, np.float32)
        m = table.max_decay_index
        assert m is not None
        assert m == max(table.decay_index(0), table.decay_index(1))

    def test_max_decay_none_when_any_row_survives(self):
        assert build("(1: 2, -1)", 64).max_decay_index is None

    def test_denormal_threshold_is_float32_tiny(self):
        assert FLOAT32_SMALLEST_NORMAL == float(np.finfo(np.float32).tiny)


class TestShiftedDuplicate:
    def test_fibonacci_pure_shift(self):
        table = build("(1: 1, 1)", 16)
        assert table.shifted_duplicate_rows() == (0, 1)
        np.testing.assert_array_equal(table.row(1)[1:], table.row(0)[:-1])

    def test_scaled_shift(self):
        # (1: 2, -1): last row = -1 * (first row shifted), also detected.
        table = build("(1: 2, -1)", 16)
        assert table.shifted_duplicate_rows() == (0, 1)

    def test_first_order_has_none(self):
        assert build("(1: 1)", 8).shifted_duplicate_rows() is None

    def test_relation_holds_for_table1(self):
        # The structural identity behind the optimization, checked on
        # every order >= 2 recurrence in Table 1.
        for name, sig in table1_signatures().items():
            if sig.order < 2:
                continue
            table = CorrectionFactorTable.build(
                sig.recursive_part(),
                32,
                np.int64 if sig.is_integer else np.float64,
            )
            pair = table.shifted_duplicate_rows()
            assert pair == (0, sig.order - 1), name


def test_describe_mentions_properties():
    text = build("(1: 1)", 16).describe()
    assert "constant=1" in text
    text = build("(1: 0, 1)", 16).describe()
    assert "zero/one" in text
