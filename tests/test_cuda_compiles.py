"""Host-compiler validation of the emitted CUDA.

Without nvcc, the strongest syntax/type check available is to compile
the generated translation unit with the system C++ compiler against a
CUDA-runtime shim (tests/cuda_shim/).  The only construct a host
compiler cannot parse is the triple-chevron launch, which the harness
rewrites to an ordinary call before compiling; everything else —
declarations, templates, the factor tables, the kernel bodies, the
host driver — is type-checked for real.
"""

import re
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.codegen.compiler import PLRCompiler
from repro.core.coefficients import table1_signatures
from repro.core.recurrence import Recurrence
from repro.plr.optimizer import OptimizationConfig

SHIM_DIR = Path(__file__).resolve().parent / "cuda_shim"

_LAUNCH_RE = re.compile(r"<<<[^>]*>>>")

pytestmark = pytest.mark.skipif(
    shutil.which("g++") is None and shutil.which("c++") is None,
    reason="no host C++ compiler available",
)


def _compiler() -> str:
    return shutil.which("g++") or shutil.which("c++")


def rewrite_launches(source: str) -> str:
    """Replace every triple-chevron launch with a plain call."""
    return _LAUNCH_RE.sub("", source)


def compile_check(source: str, tmp_path: Path, tag: str) -> None:
    path = tmp_path / f"{tag}.cu.cpp"
    path.write_text(rewrite_launches(source))
    result = subprocess.run(
        [
            _compiler(),
            "-fsyntax-only",
            "-std=c++14",
            "-I",
            str(SHIM_DIR),
            "-Wall",
            "-Werror=return-type",
            str(path),
        ],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"{tag} failed to type-check:\n{result.stderr}"


@pytest.mark.parametrize("name", list(table1_signatures()))
def test_table1_cuda_type_checks(name, tmp_path):
    recurrence = Recurrence(table1_signatures()[name])
    source = PLRCompiler().compile(recurrence, n=1 << 20, backend="cuda").source
    compile_check(source, tmp_path, name)


def test_unoptimized_cuda_type_checks(tmp_path):
    compiler = PLRCompiler(optimization=OptimizationConfig.disabled())
    source = compiler.compile("(1: 2, -1)", n=1 << 20, backend="cuda").source
    compile_check(source, tmp_path, "unoptimized")


def test_extended_optimizations_cuda_type_checks(tmp_path):
    compiler = PLRCompiler(optimization=OptimizationConfig.extended())
    source = compiler.compile("(1: 1, 1)", n=1 << 20, backend="cuda").source
    compile_check(source, tmp_path, "extended")


def test_multikernel_program_type_checks(tmp_path):
    source = PLRCompiler().compile_program("(1: 2, -1)", n=1 << 24).source
    compile_check(source, tmp_path, "multikernel")


def test_launch_rewriter_only_touches_chevrons():
    source = "a <<< 1, 2 >>>(x); if (a < b && c > d) {}"
    rewritten = rewrite_launches(source)
    assert "<<<" not in rewritten
    assert "a < b && c > d" in rewritten


@pytest.mark.parametrize(
    "toggle",
    [
        "buffer_in_shared",
        "fold_constants",
        "zero_one_conditional",
        "fold_repeats",
        "truncate_decayed",
    ],
)
def test_each_pass_disabled_individually_type_checks(toggle, tmp_path):
    """Every single-pass-off configuration still emits valid CUDA."""
    config = OptimizationConfig(**{toggle: False})
    compiler = PLRCompiler(optimization=config)
    for text in ("(1: 1)", "(1: 0, 1)", "(0.2: 0.8)"):
        source = compiler.compile(text, n=1 << 18, backend="cuda").source
        compile_check(source, tmp_path, f"{toggle}_{abs(hash(text))}")


def test_int64_cuda_type_checks(tmp_path):
    import numpy as np

    source = PLRCompiler().compile(
        "(1: 2, -1)", n=1 << 18, backend="cuda", dtype=np.int64
    ).source
    assert "long long plr_factors_0" in source.replace("const ", "")
    compile_check(source, tmp_path, "int64")
