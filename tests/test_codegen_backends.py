"""The executable backends: generated C and Python vs the oracle."""

import numpy as np
import pytest

from repro.codegen.cbackend import compile_c_kernel, emit_c
from repro.codegen.compiler import PLRCompiler
from repro.codegen.ir import build_ir
from repro.codegen.pybackend import compile_python_kernel, emit_python
from repro.core.coefficients import table1_signatures
from repro.core.errors import BackendError
from repro.core.recurrence import Recurrence
from repro.core.reference import serial_full
from repro.core.validation import assert_valid
from repro.plr.optimizer import OptimizationConfig
from tests.conftest import make_values


@pytest.fixture(scope="module")
def compiler() -> PLRCompiler:
    return PLRCompiler()


class TestCBackend:
    @pytest.mark.parametrize("name", list(table1_signatures()))
    def test_table1_parity(self, name, compiler):
        recurrence = Recurrence(table1_signatures()[name])
        values = make_values(recurrence, 20000)
        kernel = compiler.compile(recurrence, n=20000, backend="c").kernel
        expected = serial_full(values, recurrence.signature)
        assert_valid(kernel(values), expected, context=f"c/{name}")

    @pytest.mark.parametrize("n", [1, 7, 1024, 4097])
    def test_odd_sizes(self, n, rng, compiler):
        values = rng.integers(-9, 9, n).astype(np.int32)
        kernel = compiler.compile("(1: 2, -1)", n=max(n, 2), backend="c").kernel
        expected = serial_full(values, Recurrence.parse("(1: 2, -1)").signature)
        np.testing.assert_array_equal(kernel(values), expected)

    def test_kernel_reusable_across_sizes(self, rng, compiler):
        # The planned n only shapes m; the kernel takes any length.
        kernel = compiler.compile("(1: 1)", n=100_000, backend="c").kernel
        for n in (10, 5000, 60000):
            values = rng.integers(-9, 9, n).astype(np.int32)
            np.testing.assert_array_equal(
                kernel(values), np.cumsum(values, dtype=np.int32)
            )

    def test_unoptimized_kernel_agrees(self, rng):
        plain = PLRCompiler(optimization=OptimizationConfig.disabled())
        values = rng.standard_normal(30000).astype(np.float32)
        a = PLRCompiler().compile("(0.04: 1.6, -0.64)", n=30000, backend="c").kernel
        b = plain.compile("(0.04: 1.6, -0.64)", n=30000, backend="c").kernel
        np.testing.assert_allclose(a(values), b(values), rtol=2e-3, atol=1e-4)

    def test_source_reflects_realizations(self):
        ir = build_ir(Recurrence.parse("(1: 1)"), 1 << 16)
        source = emit_c(ir)
        assert "plr_factor_0" in source
        assert "return 1;" in source  # constant folded
        ir_f = build_ir(Recurrence.parse("(0.2: 0.8)"), 1 << 16)
        source_f = emit_c(ir_f)
        assert "tail" not in source_f or True
        assert "plr_compute" in source_f

    def test_compilation_cached(self, compiler, tmp_path):
        first = compile_c_kernel(
            build_ir(Recurrence.parse("(1: 1)"), 4096), workdir=tmp_path
        )
        second = compile_c_kernel(
            build_ir(Recurrence.parse("(1: 1)"), 4096), workdir=tmp_path
        )
        assert first.library_path == second.library_path

    def test_empty_input_rejected(self, compiler):
        # The native kernel contract is 1-D and non-empty; zero-length
        # inputs never reach it (the planner refuses n = 0 first), so a
        # direct call is a typed caller error, not a silent size-0 pass.
        kernel = compiler.compile("(1: 1)", n=1024, backend="c").kernel
        with pytest.raises(BackendError, match="non-empty"):
            kernel(np.array([], dtype=np.int32))

    def test_non_1d_input_rejected(self, compiler):
        kernel = compiler.compile("(1: 1)", n=1024, backend="c").kernel
        with pytest.raises(BackendError, match="1-D"):
            kernel(np.zeros((4, 4), dtype=np.int32))


class TestPythonBackend:
    @pytest.mark.parametrize("name", list(table1_signatures()))
    def test_table1_parity(self, name, compiler):
        recurrence = Recurrence(table1_signatures()[name])
        values = make_values(recurrence, 15000)
        kernel = compiler.compile(recurrence, n=15000, backend="python").kernel
        expected = serial_full(values, recurrence.signature)
        assert_valid(kernel(values), expected, context=f"python/{name}")

    def test_generated_module_is_self_contained(self):
        ir = build_ir(Recurrence.parse("(1: 2, -1)"), 8192)
        source = emit_python(ir)
        assert "import numpy" in source
        # No dependency on this library: numpy is the only import.
        assert "import repro" not in source
        assert "from repro" not in source

    def test_generated_source_executes_standalone(self, rng, tmp_path):
        ir = build_ir(Recurrence.parse("(1: 0, 1)"), 8192)
        path = tmp_path / "generated.py"
        path.write_text(emit_python(ir))
        namespace: dict = {}
        exec(compile(path.read_text(), str(path), "exec"), namespace)
        values = rng.integers(-9, 9, 5000).astype(np.int32)
        expected = serial_full(values, Recurrence.parse("(1: 0, 1)").signature)
        np.testing.assert_array_equal(namespace["compute"](values), expected)

    def test_factor_realizations_visible(self):
        ir = build_ir(Recurrence.parse("(0.2: 0.8)"), 1 << 16)
        source = emit_python(ir)
        assert "tail suppressed" in source
        ir2 = build_ir(Recurrence.parse("(1: 0, 1)"), 1 << 16)
        assert "periodic" in emit_python(ir2) or "period" in emit_python(ir2)

    def test_empty_input(self, compiler):
        kernel = compiler.compile("(1: 1)", n=1024, backend="python").kernel
        assert kernel(np.array([], dtype=np.int32)).size == 0

    def test_module_object_exposed(self):
        kernel = compile_python_kernel(build_ir(Recurrence.parse("(1: 1)"), 4096))
        assert kernel.module.M == kernel.ir.chunk_size
        assert kernel.module.K == 1


class TestCrossBackendAgreement:
    @pytest.mark.parametrize("text", ["(1: 1)", "(1: 2, -1)", "(0.2: 0.8)"])
    def test_c_equals_python_equals_solver(self, text, rng, compiler):
        recurrence = Recurrence.parse(text)
        values = make_values(recurrence, 12000)
        c_out = compiler.compile(recurrence, n=12000, backend="c").kernel(values)
        py_out = compiler.compile(recurrence, n=12000, backend="python").kernel(values)
        from repro.plr.solver import PLRSolver

        solver_out = PLRSolver(recurrence).solve(values)
        if recurrence.is_integer:
            np.testing.assert_array_equal(c_out, py_out)
            np.testing.assert_array_equal(py_out, solver_out)
        else:
            np.testing.assert_allclose(c_out, py_out, rtol=1e-4, atol=1e-5)
            np.testing.assert_allclose(py_out, solver_out, rtol=1e-4, atol=1e-5)
