"""Data export and the calibration audit."""

import csv
import json

import pytest

from repro.core.recurrence import Recurrence
from repro.eval.calibration import Anchor, calibration_report, render_calibration
from repro.eval.export import (
    export_csv,
    export_everything,
    export_json,
    figure_to_rows,
    table_to_rows,
)
from repro.eval.harness import ExperimentDef, run_experiment
from repro.eval.tables import table2_memory_usage


class TestCalibration:
    @pytest.fixture(scope="class")
    def anchors(self):
        return calibration_report()

    def test_every_anchor_within_tolerance(self, anchors):
        failing = [a.name for a in anchors if not a.ok]
        assert not failing, f"calibration drifted: {failing}"

    def test_anchor_coverage(self, anchors):
        names = " ".join(a.name for a in anchors)
        for topic in ("memcpy", "Scan", "tuple", "order", "Rec", "high-pass", "fig10"):
            assert topic in names, topic

    def test_report_renders(self, anchors):
        text = render_calibration(anchors)
        assert "paper" in text and "model" in text
        assert text.count("yes") == len(anchors)

    def test_anchor_error_sign(self):
        anchor = Anchor("x", paper=1.0, model=1.2, tolerance=0.1)
        assert not anchor.ok
        assert anchor.error == pytest.approx(0.2)


class TestExportRows:
    @pytest.fixture(scope="class")
    def mini_result(self):
        definition = ExperimentDef(
            "mini",
            "mini",
            Recurrence.parse("(1: 1)"),
            ("memcpy", "PLR"),
            sizes=(2**14, 2**16),
            validate_at=0,
        )
        return run_experiment(definition, validate=False)

    def test_figure_rows_shape(self, mini_result):
        rows = figure_to_rows(mini_result)
        assert len(rows) == 4  # 2 codes x 2 sizes
        assert {r["code"] for r in rows} == {"memcpy", "PLR"}
        assert all(r["words_per_second"] > 0 for r in rows)

    def test_table_rows(self):
        rows = table_to_rows(table2_memory_usage(), "table2")
        assert len(rows) == 21
        assert all(r["megabytes"] > 0 for r in rows)

    def test_csv_roundtrip(self, mini_result, tmp_path):
        rows = figure_to_rows(mini_result)
        path = tmp_path / "mini.csv"
        export_csv(rows, path)
        with open(path) as handle:
            back = list(csv.DictReader(handle))
        assert len(back) == len(rows)
        assert back[0]["code"] in ("memcpy", "PLR")

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_csv([], tmp_path / "empty.csv")

    def test_json_writer(self, tmp_path):
        path = tmp_path / "x.json"
        export_json({"a": [1, 2]}, path)
        assert json.loads(path.read_text()) == {"a": [1, 2]}


class TestExportEverything:
    @pytest.fixture(scope="class")
    def outdir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("export")
        export_everything(out)
        return out

    def test_all_figures_written(self, outdir):
        for fid in ("fig1", "fig5", "fig9_1", "fig10"):
            assert (outdir / f"{fid}.csv").exists(), fid

    def test_tables_written(self, outdir):
        assert (outdir / "table2_memory.csv").exists()
        assert (outdir / "table3_l2.csv").exists()

    def test_manifest_provenance(self, outdir):
        manifest = json.loads((outdir / "manifest.json").read_text())
        assert "3173162" in manifest["paper"]
        assert manifest["machine"]["num_sms"] == 24
        assert 0 < manifest["cost_model"]["bandwidth_efficiency"] < 1
        assert "fig10" in manifest["figures"]

    def test_combined_json(self, outdir):
        rows = json.loads((outdir / "all_figures.json").read_text())
        figures = {r["figure"] for r in rows}
        assert {"fig1", "fig6", "fig10"} <= figures

    def test_unsupported_points_are_null(self, outdir):
        with open(outdir / "fig1.csv") as handle:
            rows = list(csv.DictReader(handle))
        scan_at_max = [
            r for r in rows if r["code"] == "Scan" and r["n_words"] == str(2**30)
        ]
        assert scan_at_max and scan_at_max[0]["words_per_second"] == ""


class TestSvgRendering:
    @pytest.fixture(scope="class")
    def fig_result(self):
        from repro.eval.figures import figure_definitions

        return run_experiment(figure_definitions()["fig1"], validate=False)

    def test_figure_svg_is_valid_xml(self, fig_result):
        import xml.dom.minidom

        from repro.eval.svgplot import render_figure_svg

        svg = render_figure_svg(fig_result)
        doc = xml.dom.minidom.parseString(svg)
        assert doc.documentElement.tagName == "svg"

    def test_every_code_has_a_series_and_legend(self, fig_result):
        from repro.eval.svgplot import render_figure_svg

        svg = render_figure_svg(fig_result)
        for code in fig_result.definition.codes:
            assert f">{code}</text>" in svg
        assert svg.count("<polyline") == len(fig_result.definition.codes)

    def test_unsupported_points_absent(self):
        # Scan stops at 2^29; its polyline must have fewer markers
        # than memcpy's.
        from repro.eval.figures import figure_definitions
        from repro.eval.svgplot import render_figure_svg

        result = run_experiment(figure_definitions()["fig1"], validate=False)
        svg = render_figure_svg(result)
        scan_points = sum(1 for ok in result.series["Scan"].supported if ok)
        memcpy_points = sum(1 for ok in result.series["memcpy"].supported if ok)
        assert scan_points < memcpy_points
        assert svg.count("<circle") == sum(
            sum(1 for ok in result.series[c].supported if ok)
            for c in result.definition.codes
        )

    def test_figure10_svg(self):
        import xml.dom.minidom

        from repro.eval.figures import figure10_throughputs
        from repro.eval.svgplot import render_figure10_svg

        svg = render_figure10_svg(figure10_throughputs())
        xml.dom.minidom.parseString(svg)
        assert svg.count("<rect") >= 23  # 11 pairs + background

    def test_export_with_svg_flag(self, tmp_path):
        export_everything(tmp_path, svg=True)
        assert (tmp_path / "fig1.svg").exists()
        assert (tmp_path / "fig10.svg").exists()
        assert (tmp_path / "fig9_1.svg").exists()
