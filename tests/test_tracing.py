"""Request-scoped tracing: context, sampling, SLO math, Prometheus.

The cross-process propagation contract — every span of one request
carries its trace_id and a resolvable parent_id, even spans shipped
back from pool workers — is exercised here at the solver level; the
full client-to-worker path through a live server is in
``test_serve_tracing.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.batch.engine import BatchEngine
from repro.batch.planner import BatchRequest
from repro.obs.context import (
    TraceContext,
    is_valid_id,
    new_span_id,
    new_trace_id,
)
from repro.obs.exporters import chrome_trace, prometheus_text
from repro.obs.metrics import MetricsRegistry, exponential_buckets
from repro.obs.sampling import SamplingPolicy, TraceLog
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.tracer import TracePid, Tracer, merge_worker_events
from repro.parallel.backend import ShardOptions
from repro.plr.solver import PLRSolver

pytestmark = pytest.mark.tier1


def walk_links(events, trace_id):
    """All linked events of one trace + the orphaned parent references.

    An event is *orphaned* when its parent_id names a span no event in
    the buffer carries — a broken edge in the request tree.
    """
    linked = [
        e for e in events if e.link is not None and e.link.trace_id == trace_id
    ]
    span_ids = {e.link.span_id for e in linked}
    orphans = [
        e
        for e in linked
        if e.link.parent_id is not None and e.link.parent_id not in span_ids
    ]
    return linked, orphans


class TestTraceContext:
    def test_new_mints_well_formed_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32 and is_valid_id(ctx.trace_id)
        assert len(ctx.span_id) == 16 and is_valid_id(ctx.span_id)
        assert ctx.parent_id is None and ctx.sampled

    def test_ids_are_collision_resistant(self):
        assert len({new_trace_id() for _ in range(256)}) == 256
        assert len({new_span_id() for _ in range(256)}) == 256

    def test_child_keeps_trace_and_parents_to_self(self):
        root = TraceContext.new(sampled=False)
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert child.sampled is False  # head decision is inherited

    def test_wire_round_trip(self):
        ctx = TraceContext.new().child().with_sampled(False)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        # Wire form is minimal: defaults are omitted.
        root = TraceContext.new()
        assert set(root.to_wire()) == {"trace_id", "span_id"}

    @pytest.mark.parametrize(
        "wire",
        [
            "not a dict",
            {},
            {"trace_id": "XYZ", "span_id": "ab"},  # uppercase
            {"trace_id": "ab", "span_id": "g" * 16},  # non-hex
            {"trace_id": "a" * 65, "span_id": "ab"},  # too long
            {"trace_id": "ab", "span_id": "cd", "parent_id": ""},
            {"trace_id": "ab", "span_id": "cd", "sampled": "yes"},
        ],
    )
    def test_from_wire_rejects_malformed(self, wire):
        with pytest.raises(ValueError):
            TraceContext.from_wire(wire)


class TestSampling:
    def test_head_decision_is_deterministic_across_instances(self):
        # blake2b of the trace id, not Python's salted hash(): every
        # process and every restart must agree per trace.
        ids = [new_trace_id() for _ in range(200)]
        a = SamplingPolicy(head_rate=0.5)
        b = SamplingPolicy(head_rate=0.5)
        assert [a.sample_head(i) for i in ids] == [b.sample_head(i) for i in ids]

    def test_head_rate_extremes(self):
        keep_all = SamplingPolicy(head_rate=1.0)
        keep_none = SamplingPolicy(head_rate=0.0)
        for _ in range(32):
            tid = new_trace_id()
            assert keep_all.sample_head(tid)
            assert not keep_none.sample_head(tid)

    def test_head_rate_is_roughly_proportional(self):
        policy = SamplingPolicy(head_rate=0.25)
        kept = sum(policy.sample_head(new_trace_id()) for _ in range(4000))
        assert 700 < kept < 1300  # ~1000 expected; generous bounds

    def test_decision_reasons(self):
        policy = SamplingPolicy(head_rate=0.0, tail_slow_ms=100.0)
        assert (
            policy.decision(head_sampled=True, ok=True, latency_ms=1) == "head"
        )
        assert (
            policy.decision(head_sampled=False, ok=False, latency_ms=1)
            == "error"
        )
        assert (
            policy.decision(head_sampled=False, ok=True, latency_ms=500)
            == "slow"
        )
        assert policy.decision(head_sampled=False, ok=True, latency_ms=1) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SamplingPolicy(head_rate=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(tail_slow_ms=-1)

    def test_trace_log_tail_rescues_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = TraceLog(path, SamplingPolicy(head_rate=0.0, tail_slow_ms=50.0))
        with log:
            assert log.record(trace_id="aa", ok=True, latency_ms=1.0) is None
            assert (
                log.record(
                    trace_id="bb", ok=False, latency_ms=1.0, error="X"
                )
                == "error"
            )
            assert log.record(trace_id="cc", ok=True, latency_ms=80.0) == "slow"
        entries = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["trace_id"] for e in entries] == ["bb", "cc"]
        assert entries[0]["sampled"] == "error" and entries[0]["error"] == "X"
        assert log.stats() == {
            "path": str(path),
            "written": 2,
            "suppressed": 1,
        }

    def test_trace_log_never_opens_file_when_all_suppressed(self, tmp_path):
        path = tmp_path / "never.jsonl"
        log = TraceLog(
            path, SamplingPolicy(head_rate=0.0, tail_errors=False)
        )
        log.record(trace_id="aa", ok=False, latency_ms=1.0)
        assert not path.exists()


class TestSLOTracker:
    def make(self, **config):
        clock = {"t": 1000.0}
        config.setdefault("latency_objective_ms", 50.0)
        config.setdefault("target", 0.9)
        config.setdefault("windows_s", (60.0, 600.0))
        tracker = SLOTracker(SLOConfig(**config), clock=lambda: clock["t"])
        return tracker, clock

    def test_good_requires_ok_and_fast(self):
        tracker, _ = self.make()
        tracker.record(ok=True, latency_ms=10)  # good
        tracker.record(ok=True, latency_ms=200)  # slow -> bad
        tracker.record(ok=False, latency_ms=10)  # error -> bad
        report = tracker.report()
        assert report["total"] == 3 and report["good"] == 1
        assert report["attainment"] == pytest.approx(1 / 3)

    def test_error_budget_consumption(self):
        tracker, _ = self.make(target=0.9)
        for _ in range(9):
            tracker.record(ok=True, latency_ms=1)
        tracker.record(ok=False, latency_ms=1)
        budget = tracker.report()["error_budget"]
        # 1 bad in 10 at a 10% allowance: exactly the whole budget.
        assert budget["allowed_fraction"] == pytest.approx(0.1)
        assert budget["consumed_fraction"] == pytest.approx(1.0)
        assert budget["remaining_fraction"] == pytest.approx(0.0)

    def test_burn_rate_per_window(self):
        tracker, clock = self.make(target=0.9, windows_s=(60.0, 600.0))
        # 20% bad in the last minute = 2x the allowed 10% rate.
        for i in range(10):
            tracker.record(ok=i >= 2, latency_ms=1)
        short, long_ = tracker.report()["windows"]
        assert short["window_s"] == 60.0
        assert short["burn_rate"] == pytest.approx(2.0)
        assert long_["burn_rate"] == pytest.approx(2.0)
        # Advance past the short window: its burn drops to 0, the long
        # window still remembers.
        clock["t"] += 120.0
        tracker.record(ok=True, latency_ms=1)
        short, long_ = tracker.report()["windows"]
        assert short["total"] == 1 and short["burn_rate"] == 0.0
        assert long_["total"] == 11

    def test_eviction_beyond_horizon(self):
        tracker, clock = self.make(windows_s=(10.0,))
        tracker.record(ok=False, latency_ms=1)
        clock["t"] += 1_000.0
        tracker.record(ok=True, latency_ms=1)
        report = tracker.report()
        # Lifetime totals survive eviction; the window forgets.
        assert report["total"] == 2
        assert report["windows"][0]["total"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(target=1.0)
        with pytest.raises(ValueError):
            SLOConfig(latency_objective_ms=0)
        with pytest.raises(ValueError):
            SLOConfig(windows_s=())


class TestPrometheusExposition:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("serve.admitted").inc(3)
        registry.gauge("serve.queue_depth").set(2)
        hist = registry.histogram("serve.latency_ms", (1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "# TYPE serve_admitted_total counter" in lines
        assert "serve_admitted_total 3" in lines
        assert "serve_queue_depth 2" in lines
        # Cumulative le buckets with +Inf, sum and count.
        assert 'serve_latency_ms_bucket{le="1"} 1' in lines
        assert 'serve_latency_ms_bucket{le="10"} 2' in lines
        assert 'serve_latency_ms_bucket{le="+Inf"} 3' in lines
        assert "serve_latency_ms_count 3" in lines
        assert "serve_latency_ms_sum 55.5" in lines
        assert text.endswith("\n")

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("batch.padded-values/total").inc()
        text = prometheus_text(registry)
        assert "batch_padded_values_total_total 1" in text

    def test_empty_registry_is_empty_exposition(self):
        assert prometheus_text(MetricsRegistry()) == "\n"


class TestExponentialBuckets:
    def test_geometric_growth(self):
        bounds = exponential_buckets(0.05, 2.0, 6)
        assert bounds == (0.05, 0.1, 0.2, 0.4, 0.8, 1.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(0, 2, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1, 2, 0)

    def test_submillisecond_p99_is_resolved(self):
        # The point of the exponential preset: a sub-ms latency regime
        # must not collapse into the first bucket of a linear preset.
        registry = MetricsRegistry()
        hist = registry.histogram(
            "serve.latency_ms", exponential_buckets(0.05, 2.0, 20)
        )
        for _ in range(98):
            hist.observe(0.07)
        hist.observe(0.9)
        hist.observe(0.9)
        assert hist.percentile(50) < 0.11
        assert 0.8 < hist.percentile(99) <= 1.6


class TestRingBufferDrops:
    def test_dropped_counter_and_exporter_annotation(self):
        tracer = Tracer(max_events=4)
        for i in range(6):
            tracer.instant(f"e{i}")
        # Crossing the bound discards the oldest half, exactly counted.
        assert tracer.dropped == 2
        assert len(tracer.events) == 4
        assert tracer.events[0].name == "e2"
        doc = chrome_trace(tracer)
        assert doc["otherData"]["dropped_events"] == 2
        tracer.clear()
        assert tracer.dropped == 0

    def test_merge_worker_events_preserves_links(self):
        host = Tracer()
        worker = Tracer()
        ctx = TraceContext.new().child()
        worker.instant("slab_done", link=ctx)
        merge_worker_events(host, 3, worker.events)
        (event,) = host.events
        assert event.pid == TracePid.worker(3)
        assert event.link == ctx


class TestEngineGroupContext:
    """The span-parenting rule at the batch boundary: spans for exactly
    one traced request stay in that request's trace; spans covering
    several requests get their own trace with member ids as links."""

    def make_requests(self, tags_and_traces):
        return [
            BatchRequest(
                "(1: 1)",
                np.arange(1, 9, dtype=np.int32),
                tag=tag,
                trace=trace,
            )
            for tag, trace in tags_and_traces
        ]

    def test_single_traced_request_owns_the_group_span(self):
        root = TraceContext.new()
        flush = TraceContext.new()
        tracer = Tracer()
        engine = BatchEngine(tracer=tracer)
        requests = self.make_requests([("a", root)])
        outcomes = engine.execute(requests, context=flush)
        assert outcomes[0].ok
        groups = [e for e in tracer.events if e.name == "batch_group"]
        (group,) = groups
        assert group.link is not None
        assert group.link.trace_id == root.trace_id
        assert group.link.parent_id == flush.span_id

    def test_multi_request_group_links_member_traces(self):
        roots = [TraceContext.new(), TraceContext.new()]
        flush = TraceContext.new()
        tracer = Tracer()
        engine = BatchEngine(tracer=tracer)
        requests = self.make_requests([("a", roots[0]), ("b", roots[1])])
        engine.execute(requests, context=flush)
        (group,) = [e for e in tracer.events if e.name == "batch_group"]
        # Shared span: lives in the flush's trace, not either member's.
        assert group.link.trace_id == flush.trace_id
        assert sorted(group.args["linked_traces"]) == sorted(
            r.trace_id for r in roots
        )

    def test_untraced_requests_still_solve(self):
        engine = BatchEngine(tracer=Tracer())
        outcomes = engine.execute(self.make_requests([("a", None)]))
        assert outcomes[0].ok


class TestSolverPropagation:
    def test_process_backend_emits_one_connected_trace(self):
        """Host stage spans and worker slab spans all reach the root by
        parent links, under one trace id, across the process boundary."""
        tracer = Tracer()
        root = TraceContext.new()
        solver = PLRSolver(
            "(1: 2, -1)",
            backend="process",
            workers=2,
            shard_options=ShardOptions(workers=2),
            tracer=tracer,
        )
        values = (np.arange(1, 4097, dtype=np.int64) % 7).astype(np.int32)
        out = solver.solve(values, context=root)
        assert out.shape == values.shape

        linked, orphans = walk_links(tracer.events, root.trace_id)
        names = {e.name for e in linked}
        # Host-side stages and worker-side slabs are all present...
        assert {"phase1_shards", "carry_scan", "phase2_shards"} <= names
        assert {"phase1_slab", "phase2_slab"} <= names
        # ...and every parent link resolves within the buffer (plus the
        # root span id itself, which belongs to the caller).
        broken = [
            e.name for e in orphans if e.link.parent_id != root.span_id
        ]
        assert broken == []
        # Worker spans really crossed a process boundary.
        worker_spans = [
            e
            for e in linked
            if e.pid >= TracePid.WORKER_BASE and e.name == "phase1_slab"
        ]
        assert len(worker_spans) >= 2

    def test_context_without_tracer_is_harmless(self):
        solver = PLRSolver("(1: 1)")
        out = solver.solve(
            np.arange(1, 65, dtype=np.int32), context=TraceContext.new()
        )
        assert out[-1] == np.arange(1, 65).sum()


class TestServePathOverhead:
    """The per-reply bookkeeping (sampling decision + SLO record) must
    stay far inside the <5% tracing-overhead budget; it runs on every
    reply, so it is measured directly against a representative solve."""

    def test_bookkeeping_under_5_percent_of_a_small_solve(self):
        solver = PLRSolver("(1: 0.9)")
        values = np.random.default_rng(0).standard_normal(4096).astype(
            np.float32
        )
        solver.solve(values)  # warm tables

        policy = SamplingPolicy(head_rate=0.1, tail_slow_ms=100.0)
        tracker = SLOTracker(
            SLOConfig(latency_objective_ms=50.0, target=0.99)
        )

        def plain():
            solver.solve(values)

        def with_bookkeeping():
            solver.solve(values)
            trace_id = new_trace_id()
            head = policy.sample_head(trace_id)
            policy.decision(head_sampled=head, ok=True, latency_ms=1.0)
            tracker.record(ok=True, latency_ms=1.0)

        def best_of(fn, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        for _ in range(3):
            baseline = best_of(plain)
            instrumented = best_of(with_bookkeeping)
            if instrumented <= baseline * 1.05:
                return
        pytest.fail(
            f"serve-path bookkeeping cost {instrumented / baseline - 1:.1%} "
            "of a 4k-element solve (must be < 5%)"
        )
