"""The analytical cost model: units, composition, and anchors."""

import pytest

from repro.gpusim.cost import CostModel, Traffic
from repro.gpusim.spec import MachineSpec


@pytest.fixture(scope="module")
def model() -> CostModel:
    return CostModel.titan_x()


class TestTraffic:
    def test_addition(self):
        a = Traffic(hbm_read_bytes=10, fma_ops=5, kernel_launches=1)
        b = Traffic(hbm_write_bytes=20, aux_ops=3, kernel_launches=2)
        c = a + b
        assert c.hbm_read_bytes == 10
        assert c.hbm_write_bytes == 20
        assert c.fma_ops == 5
        assert c.aux_ops == 3
        assert c.kernel_launches == 3

    def test_scaling(self):
        t = Traffic(hbm_read_bytes=10, serial_hops=4, kernel_launches=2)
        s = t.scaled(3)
        assert s.hbm_read_bytes == 30
        assert s.serial_hops == 12
        assert s.kernel_launches == 2  # launches are not volume

    def test_min_time_floor(self, model):
        t = Traffic(hbm_read_bytes=8, min_time_s=1.0)
        assert model.time(t) == 1.0

    def test_min_time_merges_as_max(self):
        a = Traffic(min_time_s=0.5)
        b = Traffic(min_time_s=2.0)
        assert (a + b).min_time_s == 2.0


class TestCostModel:
    def test_memcpy_anchor(self, model):
        """The memcpy plateau must land near the paper's ~35 G words/s."""
        n = 2**26
        traffic = Traffic(
            hbm_read_bytes=4.0 * n, hbm_write_bytes=4.0 * n, kernel_launches=1
        )
        throughput = model.throughput(n, traffic)
        assert 33e9 < throughput < 37e9

    def test_memory_vs_compute_bound(self, model):
        memory_heavy = Traffic(hbm_read_bytes=1e9)
        compute_heavy = Traffic(aux_ops=1e12)
        assert model.bound_kind(memory_heavy) == "memory"
        assert model.bound_kind(compute_heavy) == "compute"

    def test_launch_latency_dominates_tiny_inputs(self, model):
        tiny = Traffic(hbm_read_bytes=64, kernel_launches=1)
        assert model.time(tiny) >= model.machine.kernel_launch_latency_s

    def test_serial_hops_add_latency(self, model):
        base = Traffic(hbm_read_bytes=1e6)
        chained = Traffic(hbm_read_bytes=1e6, serial_hops=100)
        assert model.time(chained) == pytest.approx(
            model.time(base) + 100 * model.hop_latency_s
        )

    def test_l2_cheaper_than_hbm(self, model):
        via_hbm = Traffic(hbm_read_bytes=1e9)
        via_l2 = Traffic(l2_read_bytes=1e9)
        assert model.memory_time(via_l2) < model.memory_time(via_hbm)

    def test_throughput_monotone_in_traffic(self, model):
        n = 1 << 20
        light = Traffic(hbm_read_bytes=4.0 * n, hbm_write_bytes=4.0 * n)
        heavy = light + Traffic(hbm_read_bytes=8.0 * n)
        assert model.throughput(n, light) > model.throughput(n, heavy)

    def test_effective_bandwidth_below_peak(self, model):
        assert model.effective_bandwidth < model.machine.peak_bandwidth_bytes

    def test_custom_machine(self):
        model = CostModel(MachineSpec.small_test_gpu())
        t = Traffic(hbm_read_bytes=1e6)
        assert model.time(t) > 0
